//! Porting an existing class to OBIWAN (paper §3.2).
//!
//! The paper's `obicomp` turned a plain Java class into a replicable one by
//! deriving its interface and augmenting it with the platform interfaces.
//! Here the `obi_class!` macro plays that role: we take a "legacy"
//! inventory-item type written with no distribution in mind, wrap it, and
//! immediately use it across sites — RMI, incremental replication,
//! disconnected edits and write-back included.
//!
//! ```text
//! cargo run --example porting_legacy
//! ```

use obiwan::core::{obi_class, ObiValue, ObiWorld, ObjRef, ReplicationMode};

// ---------------------------------------------------------------------------
// The "legacy" code: a plain Rust type, no OBIWAN anywhere.
// ---------------------------------------------------------------------------

mod legacy {
    /// A warehouse inventory line, as it existed before distribution.
    #[derive(Debug, Clone, PartialEq)]
    pub struct InventoryLine {
        pub sku: String,
        pub on_hand: i64,
        pub reserved: i64,
    }

    impl InventoryLine {
        pub fn available(&self) -> i64 {
            self.on_hand - self.reserved
        }

        pub fn reserve(&mut self, quantity: i64) -> Result<i64, String> {
            if quantity > self.available() {
                return Err(format!(
                    "only {} of {} available",
                    self.available(),
                    self.sku
                ));
            }
            self.reserved += quantity;
            Ok(self.available())
        }
    }
}

// ---------------------------------------------------------------------------
// The port: obi_class! is our obicomp. Fields mirror the legacy struct;
// methods delegate to the legacy logic ("the programmer only has to worry
// about the business logic").
// ---------------------------------------------------------------------------

obi_class! {
    /// A replicable wrapper over `legacy::InventoryLine`.
    pub class Inventory {
        fields {
            sku: String,
            on_hand: i64,
            reserved: i64,
        }
        methods {
            fn available(this, _ctx, _args) {
                Ok(ObiValue::I64(this.as_legacy().available()))
            }
            fn sku(this, _ctx, _args) {
                Ok(ObiValue::Str(this.sku.clone()))
            }
        }
        mutating {
            fn reserve(this, _ctx, args) {
                let quantity = args.as_i64().ok_or_else(|| {
                    obiwan::util::ObiError::BadArguments("reserve expects i64".into())
                })?;
                let mut line = this.as_legacy();
                let left = line
                    .reserve(quantity)
                    .map_err(obiwan::util::ObiError::Application)?;
                this.reserved = line.reserved;
                Ok(ObiValue::I64(left))
            }
            fn restock(this, _ctx, args) {
                let quantity = args.as_i64().unwrap_or(0);
                this.on_hand += quantity;
                Ok(ObiValue::I64(this.on_hand))
            }
        }
    }
}

impl Inventory {
    /// Wraps a legacy value.
    fn from_legacy(line: legacy::InventoryLine) -> Self {
        Inventory {
            sku: line.sku,
            on_hand: line.on_hand,
            reserved: line.reserved,
        }
    }

    /// Views the OBIWAN state as the legacy type so existing business
    /// logic keeps running unchanged.
    fn as_legacy(&self) -> legacy::InventoryLine {
        legacy::InventoryLine {
            sku: self.sku.clone(),
            on_hand: self.on_hand,
            reserved: self.reserved,
        }
    }
}

fn main() -> obiwan::util::Result<()> {
    let mut world = ObiWorld::paper_testbed();
    let warehouse = world.add_site("warehouse");
    let shop = world.add_site("web-shop");

    // The ported class must be registered on every site that will
    // materialize replicas of it — the "classpath" step.
    Inventory::register(world.registry());

    let line = world.site(warehouse).create(Inventory::from_legacy(
        legacy::InventoryLine {
            sku: "OBI-1138".into(),
            on_hand: 10,
            reserved: 0,
        },
    ));
    world.site(warehouse).export(line, "inventory/OBI-1138")?;
    println!("warehouse exported legacy inventory line OBI-1138 (10 on hand)");

    // The shop can use it via RMI immediately…
    let remote = world.site(shop).lookup("inventory/OBI-1138")?;
    let left = world.site(shop).invoke_rmi(&remote, "reserve", ObiValue::I64(3))?;
    println!("shop reserved 3 via RMI; {left} available");

    // …or replicate it and keep selling through an outage.
    let replica: ObjRef = world.site(shop).get(&remote, ReplicationMode::incremental(1))?;
    world.disconnect(shop);
    let left = world.site(shop).invoke(replica, "reserve", ObiValue::I64(2))?;
    println!("offline: shop reserved 2 more on the replica; {left} available locally");

    // Business rules still hold on the replica: overselling is refused.
    let err = world
        .site(shop)
        .invoke(replica, "reserve", ObiValue::I64(100))
        .unwrap_err();
    println!("offline: overselling refused by legacy logic: {err}");

    world.reconnect(shop);
    world.site(shop).put(replica)?;
    let left = world.site(warehouse).invoke(line, "available", ObiValue::Null)?;
    println!("reconnected and put back; warehouse now sees {left} available");
    assert_eq!(left, ObiValue::I64(5));
    Ok(())
}

//! Mobile agent roaming a degraded network.
//!
//! The introduction's scenario: a user reads mail and edits an itinerary
//! from a PC in the office, a laptop at the airport (Wi-Fi) and a PDA in a
//! taxi (GPRS, eventually no coverage). A [`MobileAgent`] carries the data
//! as luggage; a [`ConnectivityMonitor`] decides between RMI and LMI at
//! each stop.
//!
//! ```text
//! cargo run --example mobile_agent
//! ```

use obiwan::core::demo::Counter;
use obiwan::core::{ObiValue, ObiWorld, ReplicationMode};
use obiwan::mobility::{ConnectivityMonitor, HoardProfile, LinkHealth, MobileAgent};
use obiwan::net::conditions;
use std::time::Duration;

fn main() -> obiwan::util::Result<()> {
    let mut world = ObiWorld::paper_testbed();
    let office = world.add_site("office-pc");
    let laptop = world.add_site("airport-laptop");
    let pda = world.add_site("taxi-pda");

    // Degrade the mobile links: Wi-Fi to the laptop, GPRS to the PDA.
    world.transport().with_topology_mut(|t| {
        t.set_link_symmetric(office, laptop, conditions::wifi());
        t.set_link_symmetric(office, pda, conditions::gprs());
    });

    // The office publishes a trip log.
    let log = world.site(office).create(Counter::new(0));
    world.site(office).export(log, "trip-log")?;
    println!("office published `trip-log`");

    // The agent carries the log as luggage.
    let mut agent = MobileAgent::new(
        "itinerary-agent",
        HoardProfile::new().with("trip-log", ReplicationMode::transitive()),
    );
    let mut monitor = ConnectivityMonitor::new(Duration::from_millis(50));

    // Stop 1: airport laptop over Wi-Fi — usable, slightly degraded.
    let health = monitor.probe(world.site(laptop), office);
    println!("laptop -> office link: {health:?}");
    let stop = agent.visit(world.site(laptop), |process, report| {
        let log = report.root_of("trip-log").expect("luggage");
        process.invoke(log, "incr", ObiValue::Null)?;
        Ok(())
    })?;
    println!(
        "airport stop: hoarded {} item(s), pushed {} update(s)",
        stop.hoarded, stop.pushed
    );

    // Stop 2: taxi PDA over GPRS; coverage dies mid-ride.
    let health = monitor.probe(world.site(pda), office);
    println!("pda -> office link: {health:?}");
    assert_eq!(health, LinkHealth::Degraded, "GPRS should look degraded");
    let stop = agent.visit(world.site(pda), |process, report| {
        let log = report.root_of("trip-log").expect("luggage");
        // Coverage drops right after hoarding…
        world.disconnect(pda);
        // …but the agent keeps working on co-located replicas.
        for _ in 0..3 {
            process.invoke(log, "incr", ObiValue::Null)?;
        }
        Ok(())
    })?;
    println!(
        "taxi stop: hoarded {} item(s); departing push managed {} update(s) (offline)",
        stop.hoarded, stop.pushed
    );
    assert_eq!(stop.pushed, 0, "push must fail while disconnected");

    // Back in coverage: reintegrate the PDA's work.
    world.reconnect(pda);
    assert_eq!(monitor.probe(world.site(pda), office), LinkHealth::Degraded);
    let pushed = world.site(pda).put_all_dirty()?;
    println!("coverage restored: reintegrated {pushed} dirty replica(s)");

    let total = world.site(office).invoke(log, "read", ObiValue::Null)?;
    println!("\ntrip-log at the office: {total} (1 airport + 3 taxi entries)");
    assert_eq!(total, ObiValue::I64(4));
    println!(
        "agent trail: {:?}",
        agent
            .trail()
            .iter()
            .map(|s| s.site.to_string())
            .collect::<Vec<_>>()
    );
    Ok(())
}

//! Virtual enterprise: the introduction's co-operative work scenario.
//!
//! A virtual organization shares a product catalog and a design document.
//! An engineer hoards both onto a laptop, boards a plane (disconnects),
//! keeps editing, and reintegrates at the hotel — while a colleague edited
//! the same document in the meantime. Conflict detection and resolution
//! run through the consistency hooks.
//!
//! ```text
//! cargo run --example virtual_enterprise
//! ```

use obiwan::consistency::{OptimisticDetect, StaleTracker};
use obiwan::core::demo::{Document, LinkedItem};
use obiwan::core::{ObiValue, ObiWorld, ReplicationMode};
use obiwan::mobility::{DisconnectedSession, HoardProfile, Hoarder, ReintegrationOutcome};

fn main() -> obiwan::util::Result<()> {
    let mut world = ObiWorld::paper_testbed();
    let hq = world.add_site("headquarters");
    let laptop = world.add_site("engineer-laptop");
    let colleague = world.add_site("colleague-pc");

    // Headquarters publishes a 3-part catalog and a spec document, with
    // first-writer-wins conflict detection on write-backs.
    let p3 = world.site(hq).create(LinkedItem::new(300, "gearbox"));
    let p2 = world.site(hq).create(LinkedItem::with_next(200, "axle", p3));
    let p1 = world.site(hq).create(LinkedItem::with_next(100, "motor", p2));
    world.site(hq).export(p1, "catalog")?;
    let spec = world.site(hq).create(Document::new("spec-v1"));
    world.site(hq).export(spec, "spec")?;
    world.site(hq).set_policy(Box::new(OptimisticDetect::new()));
    println!("HQ published `catalog` (3 parts) and `spec` with optimistic conflict detection");

    // The engineer hoards everything before the flight.
    let profile = HoardProfile::new()
        .with("catalog", ReplicationMode::transitive())
        .with("spec", ReplicationMode::incremental(1));
    let hoarder = Hoarder::new(profile);
    let report = hoarder.hoard(world.site(laptop));
    assert!(report.is_complete());
    println!(
        "laptop hoarded {} graphs ({} replicas) before disconnecting",
        report.hoarded.len(),
        report.replicas_created
    );
    let spec_replica = report.root_of("spec").unwrap();
    let catalog_replica = report.root_of("catalog").unwrap();

    // A stale-tracker keeps the catalog fresh while still connected.
    let mut tracker = StaleTracker::new();
    tracker.track(world.site(laptop), catalog_replica)?;

    // ✈ Disconnect. Work continues locally.
    world.disconnect(laptop);
    let mut session = DisconnectedSession::new();
    session.invoke(
        world.site(laptop),
        spec_replica,
        "append",
        ObiValue::from("§3 torque budget revised on the plane"),
    )?;
    let total = session.invoke(
        world.site(laptop),
        catalog_replica,
        "sum_rest",
        ObiValue::Null,
    )?;
    println!("offline: engineer edited the spec; catalog cost roll-up = {total}");

    // Meanwhile the colleague edits the same spec at HQ.
    let spec_remote = world.site(colleague).lookup("spec")?;
    world.site(colleague).invoke_rmi(
        &spec_remote,
        "append",
        ObiValue::from("§2 materials updated by colleague"),
    )?;
    println!("meanwhile: colleague appended to the master spec via RMI");

    // 🏨 Reconnect and reintegrate.
    world.reconnect(laptop);
    let report = session.reintegrate(world.site(laptop));
    for (id, outcome) in &report.outcomes {
        match outcome {
            ReintegrationOutcome::Pushed(v) => println!("reintegrated {id} at master v{v}"),
            ReintegrationOutcome::Conflict(reason) => {
                println!("conflict on {id}: {reason}");
            }
            ReintegrationOutcome::Unreachable => println!("{id} unreachable"),
        }
    }
    // The spec conflicted (colleague won the race): replay our edit on top.
    for id in report.conflicts() {
        let v = session.resolve_replay_local(world.site(laptop), id)?;
        println!("replayed local edits over fresh state; accepted at v{v}");
    }

    let final_spec = world.site(hq).invoke(spec, "content", ObiValue::Null)?;
    println!("\nfinal spec at HQ:\n{}", final_spec.as_str().unwrap());
    assert!(final_spec.as_str().unwrap().contains("torque"));
    assert!(final_spec.as_str().unwrap().contains("materials"));
    println!("\nboth edits survived; no work was lost across the disconnection");
    Ok(())
}

//! An info-appliance with almost no memory.
//!
//! §2.1: "situations in which an application does not need to invoke all
//! objects of a graph, or when the info-appliance where the application is
//! running has limited memory are those in which incremental replication is
//! useful." This example walks a catalog far larger than the device's
//! replica budget: cold replicas are evicted back to proxy-outs as the walk
//! advances, and prefetch keeps the next step warm so the user never waits.
//!
//! ```text
//! cargo run --example info_appliance
//! ```

use obiwan::core::demo::PayloadNode;
use obiwan::core::{ObiValue, ObiWorld, ObjRef, ReplicationMode};

const CATALOG: usize = 200;
const ITEM_BYTES: usize = 2048;
const BUDGET: usize = 16 * 1024; // the PDA can hold ~8 items

fn main() -> obiwan::util::Result<()> {
    let mut world = ObiWorld::paper_testbed();
    let server = world.add_site("catalog-server");
    let pda = world.add_site("pda");

    // A 200-item catalog (≈ 400 KB) on the server.
    let mut next = None;
    let mut head = None;
    for i in (0..CATALOG).rev() {
        let mut node = PayloadNode::sized(i as i64, ITEM_BYTES);
        node.set_next(next);
        let r = world.site(server).create(node);
        next = Some(r);
        head = Some(r);
    }
    let head = head.unwrap();
    world.site(server).export(head, "catalog")?;
    println!(
        "server published a {CATALOG}-item catalog (~{} KB total)",
        CATALOG * ITEM_BYTES / 1024
    );

    // The PDA can only afford ~16 KB of replicas.
    world.site(pda).set_replica_budget(Some(BUDGET));
    let remote = world.site(pda).lookup("catalog")?;
    let root = world.site(pda).get(&remote, ReplicationMode::incremental(4))?;
    println!("pda budget: {} KB of replica state", BUDGET / 1024);

    // Browse the whole catalog, prefetching one step ahead.
    let mut cur: ObjRef = root;
    let mut seen = 0usize;
    let mut peak = 0usize;
    loop {
        let _ = world.site(pda).prefetch(cur, 4);
        let out = world.site(pda).invoke(cur, "touch", ObiValue::Null)?;
        seen += 1;
        peak = peak.max(world.site(pda).replica_bytes());
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
    let m = world.site(pda).metrics().snapshot();
    println!(
        "browsed {seen} items; peak replica footprint {} KB (catalog is {} KB)",
        peak / 1024,
        CATALOG * ITEM_BYTES / 1024
    );
    println!(
        "{} replica materializations, {} evictions back to proxies (re-fetches \
         of evicted items are the price of the tight budget)",
        m.replicas_created, m.replicas_evicted
    );
    assert_eq!(seen, CATALOG);
    assert!(peak <= BUDGET + 6 * ITEM_BYTES, "footprint stayed near budget");
    assert!(m.replicas_evicted > (CATALOG as u64) / 2);

    // Evicted items transparently fault back when revisited.
    let first_again = world.site(pda).invoke(root, "index", ObiValue::Null)?;
    println!("revisiting the first item re-faults it: index = {first_again}");
    assert_eq!(first_again, ObiValue::I64(0));
    println!("\na device with {} KB of memory browsed a {} KB catalog",
        BUDGET / 1024,
        CATALOG * ITEM_BYTES / 1024
    );
    Ok(())
}

//! Quickstart: the paper's running example (§2, Figure 1).
//!
//! Site S2 holds a graph of objects A → B → C; S1 obtains a remote
//! reference to A from the name server, replicates incrementally, and
//! watches object faults resolve as it reaches deeper into the graph.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use obiwan::core::demo::LinkedItem;
use obiwan::core::space::Resolution;
use obiwan::core::{ObiValue, ObiWorld, ReplicationMode};

fn main() -> obiwan::util::Result<()> {
    // A two-site world on the paper's 10 Mb/s LAN testbed.
    let mut world = ObiWorld::paper_testbed();
    let s1 = world.add_site("S1");
    let s2 = world.add_site("S2");

    // S2: build A -> B -> C and register A in the name server
    // ("only object AProxyIn is registered in a name server").
    let c = world.site(s2).create(LinkedItem::new(3, "C"));
    let b = world.site(s2).create(LinkedItem::with_next(2, "B", c));
    let a = world.site(s2).create(LinkedItem::with_next(1, "A", b));
    world.site(s2).export(a, "A")?;
    println!("S2 exported A -> B -> C under the name \"A\"");

    // S1: obtain the remote reference. Both invocation styles are open:
    let remote_a = world.site(s1).lookup("A")?;
    let via_rmi = world.site(s1).invoke_rmi(&remote_a, "value", ObiValue::Null)?;
    println!("S1 invoked A.value via RMI            -> {via_rmi}");

    // Situation (b): replicate A alone; B stays behind a proxy-out.
    let a_replica = world.site(s1).get(&remote_a, ReplicationMode::incremental(1))?;
    println!(
        "S1 replicated A (incremental, batch=1); B resolves to {:?}",
        kind(&world, s1, b)
    );

    // Situation (c): invoking through A' to B raises an object fault that
    // resolves transparently — then B' is a normal local object.
    let v = world.site(s1).invoke(a_replica, "next_value", ObiValue::Null)?;
    println!("S1 invoked A'.next_value (faults B in) -> {v}");
    println!(
        "after the fault, B resolves to {:?} and C to {:?}",
        kind(&world, s1, b),
        kind(&world, s1, c)
    );

    // Work on the replica, then update the master ("put").
    world.site(s1).invoke(a_replica, "set_value", ObiValue::I64(42))?;
    world.site(s1).put(a_replica)?;
    let master_v = world.site(s2).invoke(a, "value", ObiValue::Null)?;
    println!("after S1's put, the master A.value     -> {master_v}");

    let m = world.site(s1).metrics().snapshot();
    println!(
        "\nS1 platform metrics: {} LMI, {} RMI, {} object faults, {} replicas, {} proxy pairs",
        m.lmi_count, m.rmi_count, m.object_faults, m.replicas_created, m.proxy_pairs_created
    );
    println!(
        "virtual time elapsed on the paper testbed: {:.2} ms",
        world.clock().elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn kind(world: &ObiWorld, site: obiwan::util::SiteId, r: obiwan::core::ObjRef) -> &'static str {
    match world.site(site).resolution(r) {
        Resolution::Object(_) => "a local replica",
        Resolution::Proxy(_) => "a proxy-out",
        Resolution::Busy => "busy",
        Resolution::Absent => "absent",
    }
}

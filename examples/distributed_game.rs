//! A distributed game — the introduction's "distributed game involving
//! people anywhere in the world".
//!
//! A game server hosts the shared score board; players on WAN links hold
//! replicas kept fresh by push subscriptions (update dissemination). One
//! player rides a train: a *scheduled* connectivity script cuts their link
//! mid-game, they keep reading their (stale) replica, and their buffered
//! moves reintegrate on reconnection.
//!
//! ```text
//! cargo run --example distributed_game
//! ```

use obiwan::core::demo::Counter;
use obiwan::core::{ObiValue, ObiWorld, ReplicationMode};
use obiwan::mobility::{AdaptiveInvoker, DisconnectedSession, InvocationPath};
use obiwan::net::{conditions, ScheduledChange};
use std::time::Duration;

fn main() -> obiwan::util::Result<()> {
    let mut world = ObiWorld::paper_testbed();
    let server = world.add_site("game-server");
    let alice = world.add_site("alice");
    let bob = world.add_site("bob-on-a-train");
    world.transport().with_topology_mut(|t| {
        t.set_link_symmetric(server, alice, conditions::wan());
        t.set_link_symmetric(server, bob, conditions::wifi());
    });

    // The shared board: one score counter per player.
    let alice_score = world.site(server).create(Counter::new(0));
    let bob_score = world.site(server).create(Counter::new(0));
    world.site(server).export(alice_score, "score/alice")?;
    world.site(server).export(bob_score, "score/bob")?;
    println!("server published the score board");

    // Players replicate both scores and subscribe to pushed updates,
    // so they always see each other's progress without polling.
    let mut replicas = Vec::new();
    for (site, name) in [(alice, "alice"), (bob, "bob")] {
        for score in ["score/alice", "score/bob"] {
            let remote = world.site(site).lookup(score)?;
            let r = world.site(site).get(&remote, ReplicationMode::incremental(1))?;
            world.site(site).subscribe(r, true)?;
            replicas.push((site, score, r));
        }
        println!("{name} replicated the board and subscribed to pushes");
    }
    let bob_view_of_alice = replicas
        .iter()
        .find(|(s, n, _)| *s == bob && *n == "score/alice")
        .unwrap()
        .2;
    let bob_own_score = replicas
        .iter()
        .find(|(s, n, _)| *s == bob && *n == "score/bob")
        .unwrap()
        .2;

    // Alice scores twice; pushes propagate to Bob.
    let alice_remote = world.site(alice).lookup("score/alice")?;
    world.site(alice).invoke_rmi(&alice_remote, "incr", ObiValue::Null)?;
    world.site(alice).invoke_rmi(&alice_remote, "incr", ObiValue::Null)?;
    world.pump();
    let seen = world.site(bob).invoke(bob_view_of_alice, "read", ObiValue::Null)?;
    println!("bob's pushed view of alice's score: {seen}");
    assert_eq!(seen, ObiValue::I64(2));

    // Bob's train enters a tunnel at +50 ms of virtual time.
    let now = world.clock().virtual_nanos();
    world
        .transport()
        .schedule_change(now + 50_000_000, ScheduledChange::Disconnect(bob));
    println!("tunnel ahead: bob disconnects at t+50 ms (scripted)");

    // Bob keeps playing through the tunnel: the adaptive invoker serves his
    // replicas, flagging stale reads, while a session journals his moves.
    let mut invoker = AdaptiveInvoker::new(
        Duration::from_millis(200),
        ReplicationMode::incremental(1),
    );
    let mut session = DisconnectedSession::new();
    for turn in 0..30 {
        // A move: bump own score locally.
        session.invoke(world.site(bob), bob_own_score, "incr", ObiValue::Null)?;
        // A look at the opponent: adaptive read, always served locally.
        let remote = obiwan::rmi::RemoteRef::new(bob_view_of_alice.id(), server);
        let (_, path) = invoker.invoke(world.site(bob), &remote, "read", ObiValue::Null)?;
        assert_eq!(path, InvocationPath::Lmi);
        // Alice keeps scoring server-side; her pushes stop reaching Bob
        // the moment the tunnel cuts his link.
        if turn % 10 == 5 {
            world
                .site(server)
                .invoke(alice_score, "incr", ObiValue::Null)?;
            world.pump();
        }
    }
    println!(
        "bob played 30 turns through the tunnel ({} local moves journaled)",
        session.len()
    );

    // In the tunnel Bob's view of Alice silently lags: pushes sent while he
    // was unreachable were lost to him (that is what staleness *means* for
    // a disconnected replica — it cannot even know).
    let lagging = world.site(bob).invoke(bob_view_of_alice, "read", ObiValue::Null)?;
    let actual = world.site(server).invoke(alice_score, "read", ObiValue::Null)?;
    println!("bob's view of alice: {lagging}; server truth: {actual}");
    assert!(lagging.as_i64() < actual.as_i64());

    // Out of the tunnel: reconnect, reintegrate Bob's moves, refresh views.
    world.reconnect(bob);
    let report = session.reintegrate(world.site(bob));
    println!("reintegrated: {} object(s) pushed", report.pushed());
    world.site(bob).refresh(bob_view_of_alice)?;
    let caught_up = world.site(bob).invoke(bob_view_of_alice, "read", ObiValue::Null)?;
    assert_eq!(caught_up, actual);
    println!("bob refreshed; views agree again at {caught_up}");

    let final_bob = world.site(server).invoke(bob_score, "read", ObiValue::Null)?;
    println!("server's final board: bob = {final_bob}");
    assert_eq!(final_bob, ObiValue::I64(30));

    let stats = invoker.stats();
    println!(
        "adaptive invoker: {} lmi, {} rmi, {} refreshes",
        stats.lmi, stats.rmi, stats.refreshes
    );
    Ok(())
}

//! Two real OS processes, one object graph — OBIWAN over TCP.
//!
//! Everything else in this repository runs multiple sites inside one
//! process. This example forks a *real* second process (re-executing
//! itself with the `provider` argument): the child hosts the name server
//! and a counter master behind a `TcpTransport`; the parent connects over
//! loopback TCP, replicates, works disconnected and writes back. Genuine
//! inter-process RMI, faulting and `put`, with every frame on a socket.
//!
//! ```text
//! cargo run --example two_processes
//! ```

use obiwan::core::demo::{register_all, Counter, LinkedItem};
use obiwan::core::{ClassRegistry, ObiProcess, ObiValue, ReplicationMode};
use obiwan::net::{TcpTransport, Transport};
use obiwan::rmi::{NameServer, NameServerService, RmiServer};
use obiwan::util::{Clock, ClockMode, CostModel, SiteId};
use std::io::Write as _;
use std::sync::Arc;

const NS: SiteId = SiteId::new(0);
const PROVIDER: SiteId = SiteId::new(2);
const CONSUMER: SiteId = SiteId::new(1);

fn registry() -> ClassRegistry {
    let registry = ClassRegistry::new();
    register_all(&registry);
    registry
}

fn process_on(
    site: SiteId,
    transport: &Arc<TcpTransport>,
    registry: &ClassRegistry,
) -> ObiProcess {
    let p = ObiProcess::new(
        site,
        transport.clone() as Arc<dyn Transport>,
        Clock::new(ClockMode::Hybrid),
        CostModel::free(),
        registry.clone(),
        NS,
    );
    transport.register(site, p.message_handler());
    p
}

/// Child role: host the name server and the provider site, print the two
/// listening addresses on stdout, then serve until stdin closes (i.e.
/// until the parent exits or drops the pipe).
fn run_provider() -> obiwan::util::Result<()> {
    let transport = Arc::new(TcpTransport::new());
    let registry = registry();
    transport.register(
        NS,
        Arc::new(RmiServer::new(Arc::new(NameServerService::new(
            NameServer::new(),
        )))),
    );
    let provider = process_on(PROVIDER, &transport, &registry);

    // Publish a tiny graph and a counter.
    let tail = provider.create(LinkedItem::new(2, "tail"));
    let head = provider.create(LinkedItem::with_next(1, "head", tail));
    provider.export(head, "list")?;
    let counter = provider.create(Counter::new(0));
    provider.export(counter, "visits")?;

    // Hand our addresses to the parent (stdout protocol: two lines).
    let ns_addr = transport.address_of(NS).expect("ns bound");
    let prov_addr = transport.address_of(PROVIDER).expect("provider bound");
    println!("{ns_addr}");
    println!("{prov_addr}");
    std::io::stdout().flush().ok();

    // Serve until the parent closes our stdin.
    let mut sink = String::new();
    let _ = std::io::stdin().read_line(&mut sink);
    transport.shutdown();
    Ok(())
}

/// Parent role: spawn the provider process, connect, and exercise the
/// protocol across the process boundary.
fn run_consumer() -> obiwan::util::Result<()> {
    let exe = std::env::current_exe().expect("own path");
    #[allow(clippy::zombie_processes)] // reaped via wait() below; on panic the OS cleans up
    let mut child = std::process::Command::new(exe)
        .arg("provider")
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn provider process");
    println!("spawned provider process (pid {})", child.id());

    // Read the two addresses the child printed.
    let mut addrs = String::new();
    {
        use std::io::BufRead;
        let stdout = child.stdout.take().expect("child stdout");
        let mut reader = std::io::BufReader::new(stdout);
        for _ in 0..2 {
            reader.read_line(&mut addrs).expect("child address line");
        }
    }
    let mut lines = addrs.lines();
    let ns_addr = lines.next().unwrap().parse().expect("ns addr");
    let prov_addr = lines.next().unwrap().parse().expect("provider addr");
    println!("provider listens at {prov_addr}, name server at {ns_addr}");

    let transport = Arc::new(TcpTransport::new());
    transport.add_peer(NS, ns_addr);
    transport.add_peer(PROVIDER, prov_addr);
    let consumer = process_on(CONSUMER, &transport, &registry());

    // Cross-process RMI.
    let visits = consumer.lookup("visits")?;
    consumer.invoke_rmi(&visits, "incr", ObiValue::Null)?;
    let v = consumer.invoke_rmi(&visits, "read", ObiValue::Null)?;
    println!("cross-process RMI: visits = {v}");
    assert_eq!(v, ObiValue::I64(1));

    // Cross-process incremental replication with a fault.
    let list = consumer.lookup("list")?;
    let head = consumer.get(&list, ReplicationMode::incremental(1))?;
    let next_value = consumer.invoke(head, "next_value", ObiValue::Null)?;
    println!(
        "replicated head over TCP; faulted tail in; tail value = {next_value}"
    );
    assert_eq!(next_value, ObiValue::I64(2));
    assert_eq!(consumer.metrics().snapshot().object_faults, 1);

    // Local edit + write-back across the process boundary.
    consumer.invoke(head, "set_value", ObiValue::I64(41))?;
    consumer.put(head)?;
    let confirmed = consumer.invoke_rmi(&list, "value", ObiValue::Null)?;
    println!("put over TCP; provider confirms head value = {confirmed}");
    assert_eq!(confirmed, ObiValue::I64(41));

    // Shut the child down by closing its stdin, then reap it.
    drop(child.stdin.take());
    let status = child.wait().expect("child exit");
    println!("provider process exited ({status})");
    transport.shutdown();
    println!("\ntwo OS processes shared one object graph over real sockets");
    Ok(())
}

fn main() -> obiwan::util::Result<()> {
    match std::env::args().nth(1).as_deref() {
        Some("provider") => run_provider(),
        _ => run_consumer(),
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API this workspace uses: a cheaply
//! cloneable, immutable [`Bytes`] buffer and a growable [`BytesMut`] that
//! freezes into one. Cloning `Bytes` is an `Arc` bump, matching the real
//! crate's cost model (though not its vtable machinery or slicing games).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    inner: Inner,
}

#[derive(Clone)]
enum Inner {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Default for Inner {
    fn default() -> Self {
        Inner::Static(&[])
    }
}

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Bytes { inner: Inner::Static(&[]) }
    }

    /// Wraps a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes { inner: Inner::Static(bytes) }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { inner: Inner::Shared(Arc::new(data.to_vec())) }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// The contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Static(s) => s,
            Inner::Shared(v) => v.as_slice(),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a copy of the sub-range `[begin, end)` of this buffer.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::copy_from_slice(&self.as_slice()[range])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: Inner::Shared(Arc::new(v)) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes::from(v.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(v: BytesMut) -> Self {
        v.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Ensures room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Clears the buffer, retaining the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.buf).fmt(f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.buf.extend(iter);
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_and_eq() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, Bytes::copy_from_slice(&[1, 2, 3]));
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn static_bytes_do_not_allocate() {
        let b = Bytes::from_static(b"hi");
        assert_eq!(&b[..], b"hi");
        assert!(!b.is_empty());
    }

    #[test]
    fn bytes_mut_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.extend_from_slice(b"ab");
        m.put_u8(b'c');
        assert_eq!(m.len(), 3);
        assert_eq!(&m.freeze()[..], b"abc");
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::from_static(b"\x00a");
        assert_eq!(format!("{b:?}"), "b\"\\x00a\"");
    }
}

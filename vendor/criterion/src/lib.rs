//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion API this workspace's benches use:
//! `criterion_group!`/`criterion_main!`, benchmark groups with
//! `bench_function`/`bench_with_input`, `Bencher::iter`/`iter_batched`, and
//! the `--test` smoke mode (`cargo bench -- --test` runs every routine once
//! and reports nothing). Timing mode measures wall-clock means over a small
//! adaptive iteration count — good enough for relative comparisons, with
//! none of criterion's statistics.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; accepted for compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Small batches (treated as per-iteration here).
    SmallInput,
    /// Large batches (treated as per-iteration here).
    LargeInput,
}

/// Throughput annotation; accepted and echoed, not used in math.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, like `encode/64`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to bench closures; runs and times the routine.
pub struct Bencher<'a> {
    test_mode: bool,
    report: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    /// Times `routine` over an adaptive number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            *self.report = Some(Duration::ZERO);
            return;
        }
        // Warm-up + calibration: find an iteration count that fills a
        // modest measurement window.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        *self.report = Some(t1.elapsed() / iters as u32);
    }

    /// Times `routine` with a fresh `setup()` value per invocation; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            *self.report = Some(Duration::ZERO);
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
        }
        *self.report = Some(total / iters as u32);
    }

    /// Like `iter_batched`, taking the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, |mut input| routine(&mut input), size);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; this harness sizes itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; this harness ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; recorded nowhere.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut report = None;
        let mut b = Bencher { test_mode: self.criterion.test_mode, report: &mut report };
        f(&mut b);
        self.criterion.report(&full, report);
        self
    }

    /// Runs one benchmark routine with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (formatting only).
    pub fn finish(self) {}
}

/// Benchmark driver: parses CLI flags and runs groups.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion::from_args()
    }
}

impl Criterion {
    /// Builds a driver from `std::env::args`: honors `--test` (run each
    /// routine once) and a bare-word substring filter; other flags that
    /// cargo/libtest pass are ignored.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--save-baseline" | "--baseline" | "--load-baseline" | "--sample-size"
                | "--measurement-time" | "--warm-up-time" | "--profile-time" => {
                    let _ = args.next();
                }
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(id) {
            let mut report = None;
            let mut b = Bencher { test_mode: self.test_mode, report: &mut report };
            f(&mut b);
            self.report(id, report);
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn report(&self, id: &str, measured: Option<Duration>) {
        match measured {
            Some(d) if !self.test_mode => println!("{id:<50} time: {d:>12.2?}/iter"),
            Some(_) => println!("{id}: ok (test mode)"),
            None => {}
        }
    }
}

/// Bundles bench functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format() {
        assert_eq!(BenchmarkId::new("encode", 64).to_string(), "encode/64");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("once", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion { filter: Some("zzz".into()), test_mode: true };
        let mut runs = 0;
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("skipped", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 0);
    }
}

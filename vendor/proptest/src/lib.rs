//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, tuple and range
//! strategies, `any::<T>()`, `Just`, `prop_oneof!`, `collection::vec`, a
//! small regex-subset string strategy, and the `proptest!` test macro.
//!
//! Differences from the real crate, on purpose:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in
//!   scope, it is not minimized;
//! * generation is driven by a SplitMix64 RNG seeded deterministically from
//!   the test's module path and name, so failures reproduce across runs;
//! * `prop_assert!`/`prop_assert_eq!` are plain panicking asserts.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::{Arc, OnceLock};

/// Depth budget handed to top-level generation; only recursive strategies
/// pay attention to it (they substitute their own configured depth).
pub const DEFAULT_DEPTH: u32 = 4;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator (SplitMix64) used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (test name) so every test gets a
    /// stable, distinct stream.
    pub fn for_test(label: &str) -> Self {
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in label.bytes() {
            seed = (seed ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value. `depth` is the remaining recursion budget for
    /// [`Strategy::prop_recursive`] strategies; others pass it through.
    fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type behind an `Arc`d closure (cheap to clone).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Arc::new(move |rng, depth| s.generate(rng, depth)))
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// receives a handle producing sub-values one level deeper. `depth`
    /// bounds nesting; the other two parameters (desired size, branch
    /// factor) are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let branch_slot: Arc<OnceLock<BoxedStrategy<Self::Value>>> = Arc::new(OnceLock::new());
        let handle = {
            let leaf = leaf.clone();
            let slot = branch_slot.clone();
            BoxedStrategy(Arc::new(move |rng: &mut TestRng, d: u32| {
                // Chance of branching decays with remaining depth.
                if d == 0 || rng.below(u64::from(d) + 1) == 0 {
                    (leaf.0)(rng, 0)
                } else {
                    (slot.get().expect("recursive strategy initialized").0)(rng, d - 1)
                }
            }))
        };
        let branch = recurse(handle).boxed();
        let _ = branch_slot.set(branch);
        let leaf_entry = leaf;
        let slot = branch_slot;
        BoxedStrategy(Arc::new(move |rng: &mut TestRng, _d: u32| {
            if depth == 0 || rng.below(3) == 0 {
                (leaf_entry.0)(rng, 0)
            } else {
                (slot.get().expect("recursive strategy initialized").0)(rng, depth - 1)
            }
        }))
    }
}

/// The generator function backing a [`BoxedStrategy`].
type BoxedGen<T> = Arc<dyn Fn(&mut TestRng, u32) -> T>;

/// Type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T>(BoxedGen<T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        (self.0)(rng, depth)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> U {
        (self.f)(self.inner.generate(rng, depth))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng, _depth: u32) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Builds a choice over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> T {
        let i = rng.below_usize(self.options.len());
        self.options[i].generate(rng, depth)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, bool::ANY
// ---------------------------------------------------------------------------

/// Types with a full-domain uniform strategy (see [`any`]).
pub trait ArbitraryValue {
    /// Samples one value covering the whole domain.
    fn sample(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.coin()
    }
}

impl ArbitraryValue for f64 {
    fn sample(rng: &mut TestRng) -> f64 {
        // Finite full-range doubles; NaN/inf intentionally excluded.
        (rng.unit_f64() - 0.5) * 2e300
    }
}

impl ArbitraryValue for f32 {
    fn sample(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e38) as f32
    }
}

impl ArbitraryValue for char {
    fn sample(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}

/// Strategy for a whole primitive domain; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng, _depth: u32) -> T {
        T::sample(rng)
    }
}

/// Uniform strategy over all values of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

/// Boolean strategies.
pub mod bool {
    /// Fair coin strategy, mirroring `proptest::bool::ANY`.
    pub const ANY: super::Any<core::primitive::bool> = super::Any(core::marker::PhantomData);
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                let span = self.end.wrapping_sub(self.start);
                if span == 0 {
                    self.start
                } else {
                    self.start + (rng.below(span as u64) as $t)
                }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng, _depth: u32) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                if lo >= hi {
                    lo
                } else {
                    let span = (hi - lo) as u64;
                    lo + (rng.below(span.saturating_add(1)) as $t)
                }
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng, _depth: u32) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng, _depth: u32) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng, depth: u32) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng, depth),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// String strategies: regex subset
// ---------------------------------------------------------------------------

/// One unit of a parsed pattern: an alphabet plus a repetition range.
struct PatternUnit {
    alphabet: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..=0x7E).map(|b| b as char).collect()
}

/// Parses the regex subset used in strategies: sequences of `.`,
/// `[class]` (with `a-z` ranges and literal members), or literal
/// characters, each optionally followed by `{n}` or `{m,n}`.
fn parse_pattern(pattern: &str) -> Vec<PatternUnit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet = match chars[i] {
            '.' => {
                i += 1;
                printable_ascii()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (mut min, mut max) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or(chars.len());
            let body: String = chars[i + 1..close].iter().collect();
            if let Some((lo, hi)) = body.split_once(',') {
                min = lo.trim().parse().unwrap_or(0);
                max = hi.trim().parse().unwrap_or(min);
            } else {
                min = body.trim().parse().unwrap_or(1);
                max = min;
            }
            i = close + 1;
        }
        units.push(PatternUnit { alphabet, min, max });
    }
    units
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng, _depth: u32) -> String {
        let mut out = String::new();
        for unit in parse_pattern(self) {
            if unit.alphabet.is_empty() {
                continue;
            }
            let n = unit.min + rng.below_usize(unit.max.saturating_sub(unit.min) + 1);
            for _ in 0..n {
                out.push(unit.alphabet[rng.below_usize(unit.alphabet.len())]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng, depth: u32) -> String {
        self.as_str().generate(rng, depth)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng, depth: u32) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let n = self.size.lo + rng.below_usize(span);
            (0..n).map(|_| self.element.generate(rng, depth)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__config.cases {
                $(
                    let $arg =
                        $crate::Strategy::generate(&($strat), &mut __rng, $crate::DEFAULT_DEPTH);
                )+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

/// The usual imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any,
        ArbitraryValue, BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(3u32..17), &mut rng, 0);
            assert!((3..17).contains(&v));
            let f = crate::Strategy::generate(&(0.0f64..1.0), &mut rng, 0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = crate::TestRng::for_test("strings");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z_]{1,12}", &mut rng, 0);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
            let t = crate::Strategy::generate(&"[A-Z][a-z]{0,10}", &mut rng, 0);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!(t.len() <= 11);
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)] // payloads exist to exercise generation, not to be read
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = any::<u8>().prop_map(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::for_test("trees");
        for _ in 0..100 {
            let _ = crate::Strategy::generate(&strat, &mut rng, crate::DEFAULT_DEPTH);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_cases(x in 0u8..10, flip in crate::bool::ANY) {
            prop_assert!(x < 10);
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1usize), Just(2), 5usize..7]) {
            prop_assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }
}

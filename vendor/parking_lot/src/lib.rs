//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API: `lock()`
//! returns a guard directly, and a panic while holding a lock does not poison
//! it for later users (the poison flag is swallowed via `into_inner`).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion primitive whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(inner) => Some(MutexGuard { inner }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock whose acquisition methods never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(RwLockReadGuard { inner: e.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(sync::TryLockError::Poisoned(e)) => {
                Some(RwLockWriteGuard { inner: e.into_inner() })
            }
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still usable.
        *m.lock() = 3;
        assert_eq!(*m.lock(), 3);
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s `bounded`/`unbounded` constructors with a
//! unified [`channel::Sender`] type (crossbeam hands out the same sender type
//! for both flavours; std's `mpsc` does not, so we wrap the two behind one
//! enum). Only the surface this workspace uses is implemented.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub use mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub use mpsc::RecvTimeoutError;
    /// Error returned by [`Receiver::try_recv`].
    pub use mpsc::TryRecvError;

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel; the same type for bounded and
    /// unbounded flavours, as in crossbeam.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let kind = match &self.kind {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            };
            Sender { kind }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    ///
    /// Cloneable, as in crossbeam: clones share one queue (MPMC), each
    /// value is delivered to exactly one receiver. Implemented by guarding
    /// the underlying `mpsc` receiver with a mutex; a blocked `recv` holds
    /// the guard, so sibling clones queue behind it — acceptable for
    /// worker-pool draining, where every receiver wants the next value
    /// anyway.
    pub struct Receiver<T> {
        rx: std::sync::Arc<std::sync::Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver { rx: self.rx.clone() }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.rx.lock() {
                Ok(g) => g,
                // A sender panicking mid-send cannot poison this mutex (it
                // is only held here); recover rather than propagate.
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv()
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout)
        }

        /// Returns a pending value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv()
        }
    }

    fn wrap_rx<T>(rx: mpsc::Receiver<T>) -> Receiver<T> {
        Receiver { rx: std::sync::Arc::new(std::sync::Mutex::new(rx)) }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { kind: SenderKind::Unbounded(tx) }, wrap_rx(rx))
    }

    /// Creates a channel holding at most `cap` in-flight values
    /// (`cap == 0` gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { kind: SenderKind::Bounded(tx) }, wrap_rx(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn bounded_capacity_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send("a").unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), "a");
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            ));
        }

        #[test]
        fn disconnect_is_an_error() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded::<u32>();
            let rx2 = rx.clone();
            for v in 0..4 {
                tx.send(v).unwrap();
            }
            // Each value arrives exactly once across the two clones.
            let mut got = vec![
                rx.recv().unwrap(),
                rx2.recv().unwrap(),
                rx.recv().unwrap(),
                rx2.recv().unwrap(),
            ];
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`'s `bounded`/`unbounded` constructors with a
//! unified [`channel::Sender`] type (crossbeam hands out the same sender type
//! for both flavours; std's `mpsc` does not, so we wrap the two behind one
//! enum). Only the surface this workspace uses is implemented.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub use mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub use mpsc::RecvTimeoutError;
    /// Error returned by [`Receiver::try_recv`].
    pub use mpsc::TryRecvError;

    enum SenderKind<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel; the same type for bounded and
    /// unbounded flavours, as in crossbeam.
    pub struct Sender<T> {
        kind: SenderKind<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let kind = match &self.kind {
                SenderKind::Unbounded(tx) => SenderKind::Unbounded(tx.clone()),
                SenderKind::Bounded(tx) => SenderKind::Bounded(tx.clone()),
            };
            Sender { kind }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.kind {
                SenderKind::Unbounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
                SenderKind::Bounded(tx) => tx.send(value).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout)
        }

        /// Returns a pending value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        /// Iterates over received values until all senders disconnect.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.rx.iter()
        }
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { kind: SenderKind::Unbounded(tx) }, Receiver { rx })
    }

    /// Creates a channel holding at most `cap` in-flight values
    /// (`cap == 0` gives a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { kind: SenderKind::Bounded(tx) }, Receiver { rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn bounded_capacity_and_timeout() {
            let (tx, rx) = bounded(1);
            tx.send("a").unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), "a");
            assert!(matches!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            ));
        }

        #[test]
        fn disconnect_is_an_error() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}

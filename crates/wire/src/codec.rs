//! Compact binary encoder/decoder.
//!
//! Layout rules:
//!
//! * scalars are little-endian, lengths and unsigned integers are LEB128
//!   varints, signed integers are zig-zag varints;
//! * every [`ObiValue`] is prefixed by a one-byte tag, making the stream
//!   self-describing;
//! * decoding is total: malformed input yields [`ObiError::Decode`], never a
//!   panic.

use crate::value::ObiValue;
use bytes::{Bytes, BytesMut};
use obiwan_util::{ClusterId, ObiError, ObjId, RequestId, Result, SiteId};

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_F64: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_BYTES: u8 = 6;
const TAG_LIST: u8 = 7;
const TAG_MAP: u8 = 8;
const TAG_REF: u8 = 9;

/// Maximum collection length accepted by the decoder; guards against
/// adversarial or corrupt length prefixes allocating unbounded memory.
const MAX_LEN: u64 = 1 << 28;

/// A growable buffer that serializes OBIWAN primitives.
///
/// # Examples
///
/// ```
/// use obiwan_wire::{Encoder, Decoder};
///
/// # fn main() -> obiwan_util::Result<()> {
/// let mut enc = Encoder::new();
/// enc.put_varint(300);
/// enc.put_str("abc");
/// let bytes = enc.finish();
/// let mut dec = Decoder::new(&bytes);
/// assert_eq!(dec.take_varint()?, 300);
/// assert_eq!(dec.take_str()?, "abc");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder { buf: BytesMut::new() }
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: BytesMut::with_capacity(cap) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Writes a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.extend_from_slice(&[v]);
    }

    /// Writes an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.put_u8(byte);
                return;
            }
            self.put_u8(byte | 0x80);
        }
    }

    /// Writes a zig-zag-encoded signed varint.
    pub fn put_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Writes an IEEE-754 double, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_varint(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a site identifier.
    pub fn put_site(&mut self, s: SiteId) {
        self.put_varint(s.as_u32() as u64);
    }

    /// Writes an object identifier.
    pub fn put_obj_id(&mut self, id: ObjId) {
        self.put_site(id.site());
        self.put_varint(id.local());
    }

    /// Writes a request identifier.
    pub fn put_request_id(&mut self, id: RequestId) {
        self.put_site(id.origin());
        self.put_varint(id.seq());
    }

    /// Writes a cluster identifier.
    pub fn put_cluster_id(&mut self, id: ClusterId) {
        self.put_site(id.provider());
        self.put_varint(id.seq());
    }

    /// Writes a tagged [`ObiValue`], recursively.
    pub fn put_value(&mut self, v: &ObiValue) {
        match v {
            ObiValue::Null => self.put_u8(TAG_NULL),
            ObiValue::Bool(false) => self.put_u8(TAG_BOOL_FALSE),
            ObiValue::Bool(true) => self.put_u8(TAG_BOOL_TRUE),
            ObiValue::I64(x) => {
                self.put_u8(TAG_I64);
                self.put_i64(*x);
            }
            ObiValue::F64(x) => {
                self.put_u8(TAG_F64);
                self.put_f64(*x);
            }
            ObiValue::Str(s) => {
                self.put_u8(TAG_STR);
                self.put_str(s);
            }
            ObiValue::Bytes(b) => {
                self.put_u8(TAG_BYTES);
                self.put_bytes(b);
            }
            ObiValue::List(items) => {
                self.put_u8(TAG_LIST);
                self.put_varint(items.len() as u64);
                for item in items {
                    self.put_value(item);
                }
            }
            ObiValue::Map(entries) => {
                self.put_u8(TAG_MAP);
                self.put_varint(entries.len() as u64);
                for (k, item) in entries {
                    self.put_str(k);
                    self.put_value(item);
                }
            }
            ObiValue::Ref(id) => {
                self.put_u8(TAG_REF);
                self.put_obj_id(*id);
            }
        }
    }

    /// Writes a platform error (see [`Decoder::take_error`]).
    pub fn put_error(&mut self, e: &ObiError) {
        match e {
            ObiError::SiteUnreachable(s) => {
                self.put_u8(0);
                self.put_site(*s);
            }
            ObiError::Disconnected { from, to } => {
                self.put_u8(1);
                self.put_site(*from);
                self.put_site(*to);
            }
            ObiError::MessageLost { from, to } => {
                self.put_u8(2);
                self.put_site(*from);
                self.put_site(*to);
            }
            ObiError::Timeout { to } => {
                self.put_u8(16);
                self.put_site(*to);
            }
            ObiError::NoSuchObject(o) => {
                self.put_u8(3);
                self.put_obj_id(*o);
            }
            ObiError::NoSuchMethod { object, method } => {
                self.put_u8(4);
                self.put_obj_id(*object);
                self.put_str(method);
            }
            ObiError::NameNotBound(n) => {
                self.put_u8(5);
                self.put_str(n);
            }
            ObiError::NameAlreadyBound(n) => {
                self.put_u8(6);
                self.put_str(n);
            }
            ObiError::ReentrantInvocation(o) => {
                self.put_u8(7);
                self.put_obj_id(*o);
            }
            ObiError::Decode(m) => {
                self.put_u8(8);
                self.put_str(m);
            }
            ObiError::BadArguments(m) => {
                self.put_u8(9);
                self.put_str(m);
            }
            ObiError::UpdateRejected { object, reason } => {
                self.put_u8(10);
                self.put_obj_id(*object);
                self.put_str(reason);
            }
            ObiError::ClusterMember(o) => {
                self.put_u8(11);
                self.put_obj_id(*o);
            }
            ObiError::NotReplicated(o) => {
                self.put_u8(12);
                self.put_obj_id(*o);
            }
            ObiError::StaleProvider(o) => {
                self.put_u8(13);
                self.put_obj_id(*o);
            }
            ObiError::Application(m) => {
                self.put_u8(14);
                self.put_str(m);
            }
            ObiError::Internal(m) => {
                self.put_u8(15);
                self.put_str(m);
            }
            ObiError::Storage(m) => {
                self.put_u8(17);
                self.put_str(m);
            }
            ObiError::MovedMaster { object, to } => {
                self.put_u8(18);
                self.put_obj_id(*object);
                self.put_site(*to);
            }
            other => {
                // `ObiError` is non_exhaustive; future variants degrade to an
                // internal error carrying their rendering.
                self.put_u8(15);
                self.put_str(&other.to_string());
            }
        }
    }
}

/// A cursor that deserializes OBIWAN primitives.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn err(msg: impl Into<String>) -> ObiError {
        ObiError::Decode(msg.into())
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        let b = *self
            .data
            .get(self.pos)
            .ok_or_else(|| Self::err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn take_varint(&mut self) -> Result<u64> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take_u8()?;
            if shift >= 64 {
                return Err(Self::err("varint overflows u64"));
            }
            result |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    /// Reads a zig-zag-encoded signed varint.
    pub fn take_i64(&mut self) -> Result<i64> {
        let v = self.take_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads an IEEE-754 double.
    pub fn take_f64(&mut self) -> Result<f64> {
        let slice = self.take_slice(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(slice);
        Ok(f64::from_le_bytes(arr))
    }

    fn take_slice(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Self::err(format!(
                "need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn take_len(&mut self) -> Result<usize> {
        let len = self.take_varint()?;
        if len > MAX_LEN {
            return Err(Self::err(format!("length {len} exceeds limit")));
        }
        Ok(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed slice of the
    /// input buffer — no allocation. Prefer this on decode paths that only
    /// inspect or immediately re-encode the string.
    pub fn take_str_ref(&mut self) -> Result<&'a str> {
        let len = self.take_len()?;
        let slice = self.take_slice(len)?;
        std::str::from_utf8(slice).map_err(|e| Self::err(format!("invalid utf-8: {e}")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        self.take_str_ref().map(str::to_owned)
    }

    /// Reads length-prefixed raw bytes as a borrowed slice of the input
    /// buffer — no allocation or copy.
    pub fn take_bytes_ref(&mut self) -> Result<&'a [u8]> {
        let len = self.take_len()?;
        self.take_slice(len)
    }

    /// Reads length-prefixed raw bytes.
    pub fn take_bytes(&mut self) -> Result<Bytes> {
        self.take_bytes_ref().map(Bytes::copy_from_slice)
    }

    /// Reads a site identifier.
    pub fn take_site(&mut self) -> Result<SiteId> {
        let raw = self.take_varint()?;
        u32::try_from(raw)
            .map(SiteId::new)
            .map_err(|_| Self::err("site id out of range"))
    }

    /// Reads an object identifier.
    pub fn take_obj_id(&mut self) -> Result<ObjId> {
        let site = self.take_site()?;
        let local = self.take_varint()?;
        Ok(ObjId::new(site, local))
    }

    /// Reads a request identifier.
    pub fn take_request_id(&mut self) -> Result<RequestId> {
        let origin = self.take_site()?;
        let seq = self.take_varint()?;
        Ok(RequestId::new(origin, seq))
    }

    /// Reads a cluster identifier.
    pub fn take_cluster_id(&mut self) -> Result<ClusterId> {
        let provider = self.take_site()?;
        let seq = self.take_varint()?;
        Ok(ClusterId::new(provider, seq))
    }

    /// Reads a tagged [`ObiValue`], recursively.
    pub fn take_value(&mut self) -> Result<ObiValue> {
        match self.take_u8()? {
            TAG_NULL => Ok(ObiValue::Null),
            TAG_BOOL_FALSE => Ok(ObiValue::Bool(false)),
            TAG_BOOL_TRUE => Ok(ObiValue::Bool(true)),
            TAG_I64 => Ok(ObiValue::I64(self.take_i64()?)),
            TAG_F64 => Ok(ObiValue::F64(self.take_f64()?)),
            TAG_STR => Ok(ObiValue::Str(self.take_str()?)),
            TAG_BYTES => Ok(ObiValue::Bytes(self.take_bytes()?)),
            TAG_LIST => {
                let len = self.take_len()?;
                let mut items = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    items.push(self.take_value()?);
                }
                Ok(ObiValue::List(items))
            }
            TAG_MAP => {
                let len = self.take_len()?;
                let mut entries = Vec::with_capacity(len.min(1024));
                for _ in 0..len {
                    let k = self.take_str()?;
                    let v = self.take_value()?;
                    entries.push((k, v));
                }
                Ok(ObiValue::Map(entries))
            }
            TAG_REF => Ok(ObiValue::Ref(self.take_obj_id()?)),
            tag => Err(Self::err(format!("unknown value tag {tag}"))),
        }
    }

    /// Reads a platform error written by [`Encoder::put_error`].
    pub fn take_error(&mut self) -> Result<ObiError> {
        Ok(match self.take_u8()? {
            0 => ObiError::SiteUnreachable(self.take_site()?),
            1 => ObiError::Disconnected {
                from: self.take_site()?,
                to: self.take_site()?,
            },
            2 => ObiError::MessageLost {
                from: self.take_site()?,
                to: self.take_site()?,
            },
            3 => ObiError::NoSuchObject(self.take_obj_id()?),
            4 => ObiError::NoSuchMethod {
                object: self.take_obj_id()?,
                method: self.take_str()?,
            },
            5 => ObiError::NameNotBound(self.take_str()?),
            6 => ObiError::NameAlreadyBound(self.take_str()?),
            7 => ObiError::ReentrantInvocation(self.take_obj_id()?),
            8 => ObiError::Decode(self.take_str()?),
            9 => ObiError::BadArguments(self.take_str()?),
            10 => ObiError::UpdateRejected {
                object: self.take_obj_id()?,
                reason: self.take_str()?,
            },
            11 => ObiError::ClusterMember(self.take_obj_id()?),
            12 => ObiError::NotReplicated(self.take_obj_id()?),
            13 => ObiError::StaleProvider(self.take_obj_id()?),
            14 => ObiError::Application(self.take_str()?),
            15 => ObiError::Internal(self.take_str()?),
            16 => ObiError::Timeout {
                to: self.take_site()?,
            },
            17 => ObiError::Storage(self.take_str()?),
            18 => ObiError::MovedMaster {
                object: self.take_obj_id()?,
                to: self.take_site()?,
            },
            tag => return Err(Self::err(format!("unknown error tag {tag}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &ObiValue) -> ObiValue {
        let mut enc = Encoder::new();
        enc.put_value(v);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let out = dec.take_value().expect("decode");
        assert!(dec.is_exhausted(), "trailing bytes after {v:?}");
        out
    }

    #[test]
    fn varint_edge_values_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_varint(v);
            let b = enc.finish();
            assert_eq!(Decoder::new(&b).take_varint().unwrap(), v);
        }
    }

    #[test]
    fn signed_varint_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut enc = Encoder::new();
            enc.put_i64(v);
            let b = enc.finish();
            assert_eq!(Decoder::new(&b).take_i64().unwrap(), v);
        }
    }

    #[test]
    fn small_varints_are_one_byte() {
        let mut enc = Encoder::new();
        enc.put_varint(5);
        assert_eq!(enc.len(), 1);
    }

    #[test]
    fn scalar_values_roundtrip() {
        for v in [
            ObiValue::Null,
            ObiValue::Bool(true),
            ObiValue::Bool(false),
            ObiValue::I64(-123456789),
            ObiValue::F64(3.5),
            ObiValue::F64(f64::NEG_INFINITY),
            ObiValue::Str("héllo".into()),
            ObiValue::Bytes(Bytes::from_static(b"\x00\x01\x02")),
        ] {
            assert_eq!(roundtrip_value(&v), v);
        }
    }

    #[test]
    fn nested_structures_roundtrip() {
        let id = ObjId::new(SiteId::new(3), 14);
        let v = ObiValue::Map(vec![
            ("list".into(), ObiValue::List(vec![1i64.into(), "x".into()])),
            ("ref".into(), ObiValue::Ref(id)),
            ("empty".into(), ObiValue::List(vec![])),
        ]);
        assert_eq!(roundtrip_value(&v), v);
    }

    #[test]
    fn ids_roundtrip() {
        let mut enc = Encoder::new();
        let oid = ObjId::new(SiteId::new(7), 99);
        let rid = RequestId::new(SiteId::new(1), 5);
        let cid = ClusterId::new(SiteId::new(2), 8);
        enc.put_obj_id(oid);
        enc.put_request_id(rid);
        enc.put_cluster_id(cid);
        let b = enc.finish();
        let mut dec = Decoder::new(&b);
        assert_eq!(dec.take_obj_id().unwrap(), oid);
        assert_eq!(dec.take_request_id().unwrap(), rid);
        assert_eq!(dec.take_cluster_id().unwrap(), cid);
    }

    #[test]
    fn all_errors_roundtrip() {
        let s1 = SiteId::new(1);
        let s2 = SiteId::new(2);
        let o = ObjId::new(s2, 4);
        let errors = vec![
            ObiError::SiteUnreachable(s1),
            ObiError::Disconnected { from: s1, to: s2 },
            ObiError::MessageLost { from: s1, to: s2 },
            ObiError::NoSuchObject(o),
            ObiError::NoSuchMethod { object: o, method: "m".into() },
            ObiError::NameNotBound("n".into()),
            ObiError::NameAlreadyBound("n".into()),
            ObiError::ReentrantInvocation(o),
            ObiError::Decode("d".into()),
            ObiError::BadArguments("b".into()),
            ObiError::UpdateRejected { object: o, reason: "r".into() },
            ObiError::ClusterMember(o),
            ObiError::NotReplicated(o),
            ObiError::StaleProvider(o),
            ObiError::Application("a".into()),
            ObiError::Internal("i".into()),
            ObiError::Timeout { to: s2 },
            ObiError::Storage("wal append failed".into()),
            ObiError::MovedMaster { object: o, to: s2 },
        ];
        for e in errors {
            let mut enc = Encoder::new();
            enc.put_error(&e);
            let b = enc.finish();
            assert_eq!(Decoder::new(&b).take_error().unwrap(), e);
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let mut enc = Encoder::new();
        enc.put_value(&ObiValue::Str("hello world".into()));
        let b = enc.finish();
        for cut in 0..b.len() {
            let mut dec = Decoder::new(&b[..cut]);
            assert!(dec.take_value().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut dec = Decoder::new(&[200]);
        assert!(matches!(dec.take_value(), Err(ObiError::Decode(_))));
        let mut dec = Decoder::new(&[200]);
        assert!(matches!(dec.take_error(), Err(ObiError::Decode(_))));
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        // Claim a list of 2^40 elements with no payload.
        let mut enc = Encoder::new();
        enc.put_u8(7); // TAG_LIST
        enc.put_varint(1 << 40);
        let b = enc.finish();
        assert!(Decoder::new(&b).take_value().is_err());
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let b = [0xFFu8; 11];
        assert!(Decoder::new(&b).take_varint().is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut enc = Encoder::new();
        enc.put_varint(2);
        enc.put_u8(0xFF);
        enc.put_u8(0xFE);
        let b = enc.finish();
        assert!(Decoder::new(&b).take_str().is_err());
        assert!(Decoder::new(&b).take_str_ref().is_err());
    }

    #[test]
    fn borrowed_reads_point_into_the_frame() {
        let mut enc = Encoder::new();
        enc.put_str("frontier");
        enc.put_bytes(b"\x01\x02\x03");
        let b = enc.finish();
        let mut dec = Decoder::new(&b);
        let s = dec.take_str_ref().unwrap();
        let raw = dec.take_bytes_ref().unwrap();
        assert_eq!(s, "frontier");
        assert_eq!(raw, b"\x01\x02\x03");
        // Both are true borrows of the encoded frame, not copies.
        let frame = b.as_ptr() as usize;
        let end = frame + b.len();
        assert!((frame..end).contains(&(s.as_ptr() as usize)));
        assert!((frame..end).contains(&(raw.as_ptr() as usize)));
    }

    #[test]
    fn borrowed_reads_truncate_cleanly() {
        let mut enc = Encoder::new();
        enc.put_varint(10); // claims 10 bytes, provides 2
        enc.put_u8(b'a');
        enc.put_u8(b'b');
        let b = enc.finish();
        assert!(Decoder::new(&b).take_str_ref().is_err());
        assert!(Decoder::new(&b).take_bytes_ref().is_err());
    }
}

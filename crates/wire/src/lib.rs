//! The OBIWAN wire format.
//!
//! The original OBIWAN rode on Java serialization: replicas and proxy
//! descriptors were "automatically serialized by the underlying virtual
//! machine and sent" between sites. Rust has no ambient serialization, so
//! this crate is the substitute substrate:
//!
//! * [`value`] — [`ObiValue`], the dynamic value model used for method
//!   arguments, results and object field state.
//! * [`codec`] — a compact, self-describing binary [`Encoder`]/[`Decoder`]
//!   (varint lengths, little-endian scalars).
//! * [`message`] — every protocol message exchanged between sites:
//!   invocations, replica batches (`get`), updates (`put`), name-server
//!   operations, invalidations and update pushes.
//!
//! All message types round-trip exactly (`encode` then `decode` is the
//! identity); this invariant is enforced by unit tests and property tests.
//!
//! # Examples
//!
//! ```
//! use obiwan_wire::{Encoder, Decoder, ObiValue};
//!
//! # fn main() -> obiwan_util::Result<()> {
//! let v = ObiValue::List(vec![ObiValue::I64(1), ObiValue::Str("two".into())]);
//! let mut enc = Encoder::new();
//! enc.put_value(&v);
//! let bytes = enc.finish();
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.take_value()?, v);
//! # Ok(())
//! # }
//! ```

pub mod codec;
pub mod crc;
pub mod message;
pub mod value;

pub use codec::{Decoder, Encoder};
pub use crc::crc32;
pub use message::{
    FrontierEdge, JoinInfo, Message, NameOp, ReplicaBatch, ReplicaState, WireMode,
};
pub use value::ObiValue;

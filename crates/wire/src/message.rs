//! Protocol messages exchanged between OBIWAN sites.
//!
//! Every cross-site interaction in the platform is one of these messages:
//! remote method invocation (the RMI path), incremental/cluster replication
//! (`get`), replica write-back (`put`), name-server operations, and the
//! one-way consistency traffic (invalidations and update pushes).
//!
//! Messages encode to a tagged binary frame via [`Message::encode`] and are
//! restored with [`Message::decode`]; the pair is the identity on all valid
//! messages.

use crate::codec::{Decoder, Encoder};
use crate::value::ObiValue;
use bytes::Bytes;
use obiwan_util::{ClusterId, ObiError, ObjId, RequestId, Result, SiteId};

/// The replication mode requested by a `get`, as it crosses the wire.
///
/// This mirrors the `mode` argument of the paper's
/// `IProvideRemote::get(mode)`: the application chooses, at run time, between
/// incremental replication, run-time-sized clusters, and full transitive
/// closure (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireMode {
    /// Replicate `batch` objects per fault, each with its own proxy pair.
    Incremental {
        /// Objects materialized per object fault (≥ 1).
        batch: u32,
    },
    /// Replicate clusters of `size` objects sharing a single proxy pair.
    Cluster {
        /// Objects per cluster (≥ 1).
        size: u32,
    },
    /// Replicate the whole reachability graph in one step.
    Transitive,
}

impl WireMode {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            WireMode::Incremental { batch } => {
                enc.put_u8(0);
                enc.put_varint(u64::from(*batch));
            }
            WireMode::Cluster { size } => {
                enc.put_u8(1);
                enc.put_varint(u64::from(*size));
            }
            WireMode::Transitive => enc.put_u8(2),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.take_u8()? {
            0 => WireMode::Incremental {
                batch: dec.take_varint()? as u32,
            },
            1 => WireMode::Cluster {
                size: dec.take_varint()? as u32,
            },
            2 => WireMode::Transitive,
            tag => return Err(ObiError::Decode(format!("unknown mode tag {tag}"))),
        })
    }
}

/// The serialized state of one object replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaState {
    /// The master object's identity.
    pub id: ObjId,
    /// Class name, resolved against the receiving site's class registry.
    pub class: String,
    /// Master version at serialization time (monotonic per object).
    pub version: u64,
    /// Field state as produced by the object's own `encode`.
    pub state: Bytes,
}

impl ReplicaState {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_obj_id(self.id);
        enc.put_str(&self.class);
        enc.put_varint(self.version);
        enc.put_bytes(&self.state);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let id = dec.take_obj_id()?;
        // Borrow class and state from the frame: UTF-8 is validated in
        // place and only the final owned copies are allocated.
        let class = dec.take_str_ref()?.to_owned();
        let version = dec.take_varint()?;
        let state = Bytes::copy_from_slice(dec.take_bytes_ref()?);
        Ok(ReplicaState {
            id,
            class,
            version,
            state,
        })
    }
}

/// An out-edge of a replica batch pointing at an object that was *not*
/// included: the receiver must create a proxy-out for it (paper §2.2 step 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierEdge {
    /// The not-yet-replicated object the proxy-out will stand in for.
    pub target: ObjId,
    /// Its class name (so faulting can be validated early).
    pub class: String,
}

impl FrontierEdge {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_obj_id(self.target);
        enc.put_str(&self.class);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let target = dec.take_obj_id()?;
        let class = dec.take_str_ref()?.to_owned();
        Ok(FrontierEdge { target, class })
    }
}

/// The payload of a successful `get`: replicas plus the frontier of
/// references left as proxy-outs.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaBatch {
    /// The object the `get` was addressed to.
    pub root: ObjId,
    /// Materialized replicas, in traversal order (root first).
    pub replicas: Vec<ReplicaState>,
    /// Out-edges to objects not in the batch.
    pub frontier: Vec<FrontierEdge>,
    /// When set, the whole batch is one cluster sharing a single proxy pair;
    /// members cannot be individually updated (paper §4.3).
    pub cluster: Option<ClusterId>,
}

impl ReplicaBatch {
    /// Total serialized object-state bytes in the batch (excluding framing).
    pub fn state_bytes(&self) -> usize {
        self.replicas.iter().map(|r| r.state.len()).sum()
    }

    fn encode(&self, enc: &mut Encoder) {
        enc.put_obj_id(self.root);
        enc.put_varint(self.replicas.len() as u64);
        for r in &self.replicas {
            r.encode(enc);
        }
        enc.put_varint(self.frontier.len() as u64);
        for f in &self.frontier {
            f.encode(enc);
        }
        match self.cluster {
            None => enc.put_u8(0),
            Some(c) => {
                enc.put_u8(1);
                enc.put_cluster_id(c);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let root = dec.take_obj_id()?;
        let n = dec.take_varint()? as usize;
        let mut replicas = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            replicas.push(ReplicaState::decode(dec)?);
        }
        let m = dec.take_varint()? as usize;
        let mut frontier = Vec::with_capacity(m.min(4096));
        for _ in 0..m {
            frontier.push(FrontierEdge::decode(dec)?);
        }
        let cluster = match dec.take_u8()? {
            0 => None,
            1 => Some(dec.take_cluster_id()?),
            tag => return Err(ObiError::Decode(format!("bad cluster flag {tag}"))),
        };
        Ok(ReplicaBatch {
            root,
            replicas,
            frontier,
            cluster,
        })
    }
}

/// What a joiner learns from the name-server site when it enters a live
/// world: the current peer roster and every bound name, so it can bootstrap
/// replicas through the ordinary incremental/cluster demand pipeline while
/// the masters keep serving.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct JoinInfo {
    /// Sites already in the world (excluding the joiner), sorted.
    pub peers: Vec<SiteId>,
    /// Current name bindings (`name -> exported root`), in name order.
    pub names: Vec<(String, ObjId)>,
}

impl JoinInfo {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.peers.len() as u64);
        for p in &self.peers {
            enc.put_site(*p);
        }
        enc.put_varint(self.names.len() as u64);
        for (name, target) in &self.names {
            enc.put_str(name);
            enc.put_obj_id(*target);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.take_varint()? as usize;
        let mut peers = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            peers.push(dec.take_site()?);
        }
        let m = dec.take_varint()? as usize;
        let mut names = Vec::with_capacity(m.min(4096));
        for _ in 0..m {
            let name = dec.take_str()?;
            let target = dec.take_obj_id()?;
            names.push((name, target));
        }
        Ok(JoinInfo { peers, names })
    }
}

/// A name-server operation (the paper's registration of `AProxyIn` in a name
/// server, §2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameOp {
    /// Bind `name` to an exported object.
    Bind { name: String, target: ObjId },
    /// Resolve `name` to an object id.
    Lookup { name: String },
    /// Remove a binding.
    Unbind { name: String },
    /// Enumerate all bound names.
    List,
}

impl NameOp {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            NameOp::Bind { name, target } => {
                enc.put_u8(0);
                enc.put_str(name);
                enc.put_obj_id(*target);
            }
            NameOp::Lookup { name } => {
                enc.put_u8(1);
                enc.put_str(name);
            }
            NameOp::Unbind { name } => {
                enc.put_u8(2);
                enc.put_str(name);
            }
            NameOp::List => enc.put_u8(3),
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.take_u8()? {
            0 => NameOp::Bind {
                name: dec.take_str()?,
                target: dec.take_obj_id()?,
            },
            1 => NameOp::Lookup {
                name: dec.take_str()?,
            },
            2 => NameOp::Unbind {
                name: dec.take_str()?,
            },
            3 => NameOp::List,
            tag => return Err(ObiError::Decode(format!("unknown name op {tag}"))),
        })
    }
}

fn encode_result_value(enc: &mut Encoder, r: &std::result::Result<ObiValue, ObiError>) {
    match r {
        Ok(v) => {
            enc.put_u8(0);
            enc.put_value(v);
        }
        Err(e) => {
            enc.put_u8(1);
            enc.put_error(e);
        }
    }
}

fn decode_result_value(dec: &mut Decoder<'_>) -> Result<std::result::Result<ObiValue, ObiError>> {
    Ok(match dec.take_u8()? {
        0 => Ok(dec.take_value()?),
        1 => Err(dec.take_error()?),
        tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
    })
}

/// A protocol message.
///
/// Request/reply pairs correlate through their [`RequestId`];
/// [`Message::Invalidate`] and [`Message::UpdatePush`] are one-way.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Remote method invocation (the RMI path through a proxy-in).
    InvokeRequest {
        request: RequestId,
        target: ObjId,
        method: String,
        args: ObiValue,
    },
    /// Result of a remote invocation.
    InvokeReply {
        request: RequestId,
        result: std::result::Result<ObiValue, ObiError>,
    },
    /// `IProvideRemote::get(mode)` — demand a replica batch.
    GetRequest {
        request: RequestId,
        target: ObjId,
        mode: WireMode,
    },
    /// Replica batch (or failure) answering a [`Message::GetRequest`].
    GetReply {
        request: RequestId,
        result: std::result::Result<ReplicaBatch, ObiError>,
    },
    /// Batched demand: materialize several frontier proxies in a single
    /// round-trip. The provider answers with one merged batch rooted at the
    /// first live target, so N faults cost one network exchange.
    GetManyRequest {
        request: RequestId,
        targets: Vec<ObjId>,
        mode: WireMode,
    },
    /// Merged replica batch (or failure) answering a
    /// [`Message::GetManyRequest`].
    GetManyReply {
        request: RequestId,
        result: std::result::Result<ReplicaBatch, ObiError>,
    },
    /// Streaming variant of [`Message::GetManyRequest`]: the provider
    /// answers with a sequence of [`Message::GetManyChunk`] frames (each a
    /// slice of the merged batch, `chunk` objects per frame) closed by one
    /// [`Message::GetManyDone`]. A retry of the same request sets
    /// `resume_from` to the first chunk index the client has not yet
    /// materialized, so a resumed stream re-sends only the missing suffix.
    GetManyStreamRequest {
        request: RequestId,
        targets: Vec<ObjId>,
        mode: WireMode,
        /// Objects per chunk frame (≥ 1).
        chunk: u32,
        /// First chunk index the provider should send (0 on first attempt).
        resume_from: u32,
    },
    /// One slice of a streamed batch. The batch carried here holds the
    /// chunk's replicas; the frontier rides on the final chunk only.
    GetManyChunk {
        request: RequestId,
        /// Zero-based position of this slice in the stream.
        chunk_index: u32,
        /// Total number of chunks the provider intends to send (fixed for
        /// the lifetime of one stream attempt).
        total_hint: u32,
        batch: ReplicaBatch,
    },
    /// Terminal frame of a streamed batch: carries the authoritative chunk
    /// count so the client can detect holes, or the error that aborted the
    /// stream.
    GetManyDone {
        request: RequestId,
        total_chunks: u32,
        result: std::result::Result<(), ObiError>,
    },
    /// `IProvideRemote::put` — write replica state back to the master site.
    PutRequest {
        request: RequestId,
        entries: Vec<ReplicaState>,
    },
    /// Per-object accepted versions (or a failure) answering a put.
    PutReply {
        request: RequestId,
        result: std::result::Result<Vec<(ObjId, u64)>, ObiError>,
    },
    /// Name-server operation.
    NameRequest { request: RequestId, op: NameOp },
    /// Name-server response (`Lookup` yields `Ref`, `List` yields a list of
    /// strings, `Bind`/`Unbind` yield `Null`).
    NameReply {
        request: RequestId,
        result: std::result::Result<ObiValue, ObiError>,
    },
    /// Subscribe to consistency traffic for an object (`push = false` means
    /// invalidations only, `true` means full update pushes).
    Subscribe {
        request: RequestId,
        object: ObjId,
        push: bool,
    },
    /// Generic acknowledgement for fire-and-confirm requests.
    Ack {
        request: RequestId,
        result: std::result::Result<ObiValue, ObiError>,
    },
    /// One-way: the listed master objects changed; local replicas are stale.
    Invalidate { objects: Vec<ObjId> },
    /// One-way: pushed replica updates (update dissemination hook).
    UpdatePush { entries: Vec<ReplicaState> },
    /// Connectivity probe.
    Ping { request: RequestId },
    /// Probe response.
    Pong { request: RequestId },
    /// One-way: the sender has settled every request it issued with
    /// sequence number `<= up_to`, so the receiver's reply cache may
    /// discard the corresponding cached replies (the client-driven
    /// acknowledgement horizon of the exactly-once retry protocol).
    AckHorizon { up_to: u64 },
    /// Membership: the sender asks to join the live world. Served by the
    /// name-server site, which adds the sender to its roster and answers
    /// with a [`Message::JoinAck`].
    JoinRequest { request: RequestId },
    /// Roster and name bindings (or failure) answering a
    /// [`Message::JoinRequest`].
    JoinAck {
        request: RequestId,
        result: std::result::Result<JoinInfo, ObiError>,
    },
    /// Membership: the sender transfers mastership of `root` (and every
    /// reachable master listed in `entries`) to the receiver, which
    /// installs them as masters and becomes the new proxy-in host.
    HandoffRequest {
        request: RequestId,
        root: ObjId,
        entries: Vec<ReplicaState>,
    },
    /// Number of masters installed (or failure) answering a
    /// [`Message::HandoffRequest`].
    HandoffAck {
        request: RequestId,
        result: std::result::Result<u64, ObiError>,
    },
    /// One-way: `site` has left the world gracefully; receivers retire its
    /// breaker/monitor state and stop expecting it to answer.
    Leave { site: SiteId },
}

const MSG_INVOKE_REQ: u8 = 1;
const MSG_INVOKE_REP: u8 = 2;
const MSG_GET_REQ: u8 = 3;
const MSG_GET_REP: u8 = 4;
const MSG_PUT_REQ: u8 = 5;
const MSG_PUT_REP: u8 = 6;
const MSG_NAME_REQ: u8 = 7;
const MSG_NAME_REP: u8 = 8;
const MSG_SUBSCRIBE: u8 = 9;
const MSG_ACK: u8 = 10;
const MSG_INVALIDATE: u8 = 11;
const MSG_UPDATE_PUSH: u8 = 12;
const MSG_PING: u8 = 13;
const MSG_PONG: u8 = 14;
const MSG_GET_MANY_REQ: u8 = 15;
const MSG_GET_MANY_REP: u8 = 16;
const MSG_ACK_HORIZON: u8 = 17;
const MSG_GET_MANY_STREAM_REQ: u8 = 18;
const MSG_GET_MANY_CHUNK: u8 = 19;
const MSG_GET_MANY_DONE: u8 = 20;
const MSG_JOIN_REQ: u8 = 21;
const MSG_JOIN_ACK: u8 = 22;
const MSG_HANDOFF_REQ: u8 = 23;
const MSG_HANDOFF_ACK: u8 = 24;
const MSG_LEAVE: u8 = 25;

/// Approximate frame size of a batch, used to pre-size encoders so hot
/// replies do not grow their buffer repeatedly.
fn batch_size_hint(batch: &ReplicaBatch) -> usize {
    let replicas: usize = batch
        .replicas
        .iter()
        .map(|r| r.state.len() + r.class.len() + 24)
        .sum();
    let frontier: usize = batch.frontier.iter().map(|f| f.class.len() + 12).sum();
    32 + replicas + frontier
}

fn entries_size_hint(entries: &[ReplicaState]) -> usize {
    16 + entries
        .iter()
        .map(|e| e.state.len() + e.class.len() + 24)
        .sum::<usize>()
}

impl Message {
    /// Approximate encoded size, used to pre-allocate the frame buffer.
    /// Exact for fixed-width parts, slightly generous for varints.
    pub fn encoded_size_hint(&self) -> usize {
        match self {
            Message::GetReply { result: Ok(batch), .. }
            | Message::GetManyReply { result: Ok(batch), .. } => 16 + batch_size_hint(batch),
            Message::GetManyChunk { batch, .. } => 32 + batch_size_hint(batch),
            Message::PutRequest { entries, .. } | Message::UpdatePush { entries } => {
                entries_size_hint(entries)
            }
            Message::GetManyRequest { targets, .. }
            | Message::GetManyStreamRequest { targets, .. } => 24 + targets.len() * 12,
            Message::HandoffRequest { entries, .. } => 24 + entries_size_hint(entries),
            Message::JoinAck { result: Ok(info), .. } => {
                32 + info.peers.len() * 8
                    + info
                        .names
                        .iter()
                        .map(|(n, _)| n.len() + 16)
                        .sum::<usize>()
            }
            _ => 64,
        }
    }

    /// Serializes the message to a self-contained frame.
    pub fn encode(&self) -> Bytes {
        let mut enc = Encoder::with_capacity(self.encoded_size_hint());
        match self {
            Message::InvokeRequest {
                request,
                target,
                method,
                args,
            } => {
                enc.put_u8(MSG_INVOKE_REQ);
                enc.put_request_id(*request);
                enc.put_obj_id(*target);
                enc.put_str(method);
                enc.put_value(args);
            }
            Message::InvokeReply { request, result } => {
                enc.put_u8(MSG_INVOKE_REP);
                enc.put_request_id(*request);
                encode_result_value(&mut enc, result);
            }
            Message::GetRequest {
                request,
                target,
                mode,
            } => {
                enc.put_u8(MSG_GET_REQ);
                enc.put_request_id(*request);
                enc.put_obj_id(*target);
                mode.encode(&mut enc);
            }
            Message::GetReply { request, result } => {
                enc.put_u8(MSG_GET_REP);
                enc.put_request_id(*request);
                match result {
                    Ok(batch) => {
                        enc.put_u8(0);
                        batch.encode(&mut enc);
                    }
                    Err(e) => {
                        enc.put_u8(1);
                        enc.put_error(e);
                    }
                }
            }
            Message::GetManyRequest {
                request,
                targets,
                mode,
            } => {
                enc.put_u8(MSG_GET_MANY_REQ);
                enc.put_request_id(*request);
                enc.put_varint(targets.len() as u64);
                for t in targets {
                    enc.put_obj_id(*t);
                }
                mode.encode(&mut enc);
            }
            Message::GetManyReply { request, result } => {
                enc.put_u8(MSG_GET_MANY_REP);
                enc.put_request_id(*request);
                match result {
                    Ok(batch) => {
                        enc.put_u8(0);
                        batch.encode(&mut enc);
                    }
                    Err(e) => {
                        enc.put_u8(1);
                        enc.put_error(e);
                    }
                }
            }
            Message::GetManyStreamRequest {
                request,
                targets,
                mode,
                chunk,
                resume_from,
            } => {
                enc.put_u8(MSG_GET_MANY_STREAM_REQ);
                enc.put_request_id(*request);
                enc.put_varint(targets.len() as u64);
                for t in targets {
                    enc.put_obj_id(*t);
                }
                mode.encode(&mut enc);
                enc.put_varint(u64::from(*chunk));
                enc.put_varint(u64::from(*resume_from));
            }
            Message::GetManyChunk {
                request,
                chunk_index,
                total_hint,
                batch,
            } => {
                enc.put_u8(MSG_GET_MANY_CHUNK);
                enc.put_request_id(*request);
                enc.put_varint(u64::from(*chunk_index));
                enc.put_varint(u64::from(*total_hint));
                batch.encode(&mut enc);
            }
            Message::GetManyDone {
                request,
                total_chunks,
                result,
            } => {
                enc.put_u8(MSG_GET_MANY_DONE);
                enc.put_request_id(*request);
                enc.put_varint(u64::from(*total_chunks));
                match result {
                    Ok(()) => enc.put_u8(0),
                    Err(e) => {
                        enc.put_u8(1);
                        enc.put_error(e);
                    }
                }
            }
            Message::PutRequest { request, entries } => {
                enc.put_u8(MSG_PUT_REQ);
                enc.put_request_id(*request);
                enc.put_varint(entries.len() as u64);
                for e in entries {
                    e.encode(&mut enc);
                }
            }
            Message::PutReply { request, result } => {
                enc.put_u8(MSG_PUT_REP);
                enc.put_request_id(*request);
                match result {
                    Ok(versions) => {
                        enc.put_u8(0);
                        enc.put_varint(versions.len() as u64);
                        for (id, v) in versions {
                            enc.put_obj_id(*id);
                            enc.put_varint(*v);
                        }
                    }
                    Err(e) => {
                        enc.put_u8(1);
                        enc.put_error(e);
                    }
                }
            }
            Message::NameRequest { request, op } => {
                enc.put_u8(MSG_NAME_REQ);
                enc.put_request_id(*request);
                op.encode(&mut enc);
            }
            Message::NameReply { request, result } => {
                enc.put_u8(MSG_NAME_REP);
                enc.put_request_id(*request);
                encode_result_value(&mut enc, result);
            }
            Message::Subscribe {
                request,
                object,
                push,
            } => {
                enc.put_u8(MSG_SUBSCRIBE);
                enc.put_request_id(*request);
                enc.put_obj_id(*object);
                enc.put_u8(u8::from(*push));
            }
            Message::Ack { request, result } => {
                enc.put_u8(MSG_ACK);
                enc.put_request_id(*request);
                encode_result_value(&mut enc, result);
            }
            Message::Invalidate { objects } => {
                enc.put_u8(MSG_INVALIDATE);
                enc.put_varint(objects.len() as u64);
                for o in objects {
                    enc.put_obj_id(*o);
                }
            }
            Message::UpdatePush { entries } => {
                enc.put_u8(MSG_UPDATE_PUSH);
                enc.put_varint(entries.len() as u64);
                for e in entries {
                    e.encode(&mut enc);
                }
            }
            Message::Ping { request } => {
                enc.put_u8(MSG_PING);
                enc.put_request_id(*request);
            }
            Message::Pong { request } => {
                enc.put_u8(MSG_PONG);
                enc.put_request_id(*request);
            }
            Message::AckHorizon { up_to } => {
                enc.put_u8(MSG_ACK_HORIZON);
                enc.put_varint(*up_to);
            }
            Message::JoinRequest { request } => {
                enc.put_u8(MSG_JOIN_REQ);
                enc.put_request_id(*request);
            }
            Message::JoinAck { request, result } => {
                enc.put_u8(MSG_JOIN_ACK);
                enc.put_request_id(*request);
                match result {
                    Ok(info) => {
                        enc.put_u8(0);
                        info.encode(&mut enc);
                    }
                    Err(e) => {
                        enc.put_u8(1);
                        enc.put_error(e);
                    }
                }
            }
            Message::HandoffRequest {
                request,
                root,
                entries,
            } => {
                enc.put_u8(MSG_HANDOFF_REQ);
                enc.put_request_id(*request);
                enc.put_obj_id(*root);
                enc.put_varint(entries.len() as u64);
                for e in entries {
                    e.encode(&mut enc);
                }
            }
            Message::HandoffAck { request, result } => {
                enc.put_u8(MSG_HANDOFF_ACK);
                enc.put_request_id(*request);
                match result {
                    Ok(installed) => {
                        enc.put_u8(0);
                        enc.put_varint(*installed);
                    }
                    Err(e) => {
                        enc.put_u8(1);
                        enc.put_error(e);
                    }
                }
            }
            Message::Leave { site } => {
                enc.put_u8(MSG_LEAVE);
                enc.put_site(*site);
            }
        }
        enc.finish()
    }

    /// Deserializes a frame produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`ObiError::Decode`] on any malformed input, including
    /// trailing garbage after a valid message.
    pub fn decode(frame: &[u8]) -> Result<Message> {
        let mut dec = Decoder::new(frame);
        let msg = Self::decode_inner(&mut dec)?;
        if !dec.is_exhausted() {
            return Err(ObiError::Decode(format!(
                "{} trailing bytes after message",
                dec.remaining()
            )));
        }
        Ok(msg)
    }

    fn decode_inner(dec: &mut Decoder<'_>) -> Result<Message> {
        Ok(match dec.take_u8()? {
            MSG_INVOKE_REQ => Message::InvokeRequest {
                request: dec.take_request_id()?,
                target: dec.take_obj_id()?,
                method: dec.take_str()?,
                args: dec.take_value()?,
            },
            MSG_INVOKE_REP => Message::InvokeReply {
                request: dec.take_request_id()?,
                result: decode_result_value(dec)?,
            },
            MSG_GET_REQ => Message::GetRequest {
                request: dec.take_request_id()?,
                target: dec.take_obj_id()?,
                mode: WireMode::decode(dec)?,
            },
            MSG_GET_REP => {
                let request = dec.take_request_id()?;
                let result = match dec.take_u8()? {
                    0 => Ok(ReplicaBatch::decode(dec)?),
                    1 => Err(dec.take_error()?),
                    tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
                };
                Message::GetReply { request, result }
            }
            MSG_GET_MANY_REQ => {
                let request = dec.take_request_id()?;
                let n = dec.take_varint()? as usize;
                let mut targets = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    targets.push(dec.take_obj_id()?);
                }
                let mode = WireMode::decode(dec)?;
                Message::GetManyRequest {
                    request,
                    targets,
                    mode,
                }
            }
            MSG_GET_MANY_REP => {
                let request = dec.take_request_id()?;
                let result = match dec.take_u8()? {
                    0 => Ok(ReplicaBatch::decode(dec)?),
                    1 => Err(dec.take_error()?),
                    tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
                };
                Message::GetManyReply { request, result }
            }
            MSG_GET_MANY_STREAM_REQ => {
                let request = dec.take_request_id()?;
                let n = dec.take_varint()? as usize;
                let mut targets = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    targets.push(dec.take_obj_id()?);
                }
                let mode = WireMode::decode(dec)?;
                let chunk = dec.take_varint()? as u32;
                let resume_from = dec.take_varint()? as u32;
                Message::GetManyStreamRequest {
                    request,
                    targets,
                    mode,
                    chunk,
                    resume_from,
                }
            }
            MSG_GET_MANY_CHUNK => Message::GetManyChunk {
                request: dec.take_request_id()?,
                chunk_index: dec.take_varint()? as u32,
                total_hint: dec.take_varint()? as u32,
                batch: ReplicaBatch::decode(dec)?,
            },
            MSG_GET_MANY_DONE => {
                let request = dec.take_request_id()?;
                let total_chunks = dec.take_varint()? as u32;
                let result = match dec.take_u8()? {
                    0 => Ok(()),
                    1 => Err(dec.take_error()?),
                    tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
                };
                Message::GetManyDone {
                    request,
                    total_chunks,
                    result,
                }
            }
            MSG_PUT_REQ => {
                let request = dec.take_request_id()?;
                let n = dec.take_varint()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(ReplicaState::decode(dec)?);
                }
                Message::PutRequest { request, entries }
            }
            MSG_PUT_REP => {
                let request = dec.take_request_id()?;
                let result = match dec.take_u8()? {
                    0 => {
                        let n = dec.take_varint()? as usize;
                        let mut versions = Vec::with_capacity(n.min(4096));
                        for _ in 0..n {
                            let id = dec.take_obj_id()?;
                            let v = dec.take_varint()?;
                            versions.push((id, v));
                        }
                        Ok(versions)
                    }
                    1 => Err(dec.take_error()?),
                    tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
                };
                Message::PutReply { request, result }
            }
            MSG_NAME_REQ => Message::NameRequest {
                request: dec.take_request_id()?,
                op: NameOp::decode(dec)?,
            },
            MSG_NAME_REP => Message::NameReply {
                request: dec.take_request_id()?,
                result: decode_result_value(dec)?,
            },
            MSG_SUBSCRIBE => Message::Subscribe {
                request: dec.take_request_id()?,
                object: dec.take_obj_id()?,
                push: dec.take_u8()? != 0,
            },
            MSG_ACK => Message::Ack {
                request: dec.take_request_id()?,
                result: decode_result_value(dec)?,
            },
            MSG_INVALIDATE => {
                let n = dec.take_varint()? as usize;
                let mut objects = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    objects.push(dec.take_obj_id()?);
                }
                Message::Invalidate { objects }
            }
            MSG_UPDATE_PUSH => {
                let n = dec.take_varint()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(ReplicaState::decode(dec)?);
                }
                Message::UpdatePush { entries }
            }
            MSG_PING => Message::Ping {
                request: dec.take_request_id()?,
            },
            MSG_PONG => Message::Pong {
                request: dec.take_request_id()?,
            },
            MSG_ACK_HORIZON => Message::AckHorizon {
                up_to: dec.take_varint()?,
            },
            MSG_JOIN_REQ => Message::JoinRequest {
                request: dec.take_request_id()?,
            },
            MSG_JOIN_ACK => {
                let request = dec.take_request_id()?;
                let result = match dec.take_u8()? {
                    0 => Ok(JoinInfo::decode(dec)?),
                    1 => Err(dec.take_error()?),
                    tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
                };
                Message::JoinAck { request, result }
            }
            MSG_HANDOFF_REQ => {
                let request = dec.take_request_id()?;
                let root = dec.take_obj_id()?;
                let n = dec.take_varint()? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    entries.push(ReplicaState::decode(dec)?);
                }
                Message::HandoffRequest {
                    request,
                    root,
                    entries,
                }
            }
            MSG_HANDOFF_ACK => {
                let request = dec.take_request_id()?;
                let result = match dec.take_u8()? {
                    0 => Ok(dec.take_varint()?),
                    1 => Err(dec.take_error()?),
                    tag => return Err(ObiError::Decode(format!("bad result flag {tag}"))),
                };
                Message::HandoffAck { request, result }
            }
            MSG_LEAVE => Message::Leave {
                site: dec.take_site()?,
            },
            tag => return Err(ObiError::Decode(format!("unknown message tag {tag}"))),
        })
    }

    /// The request id carried by this message, if it has one.
    pub fn request_id(&self) -> Option<RequestId> {
        match self {
            Message::InvokeRequest { request, .. }
            | Message::InvokeReply { request, .. }
            | Message::GetRequest { request, .. }
            | Message::GetReply { request, .. }
            | Message::GetManyRequest { request, .. }
            | Message::GetManyReply { request, .. }
            | Message::GetManyStreamRequest { request, .. }
            | Message::GetManyChunk { request, .. }
            | Message::GetManyDone { request, .. }
            | Message::PutRequest { request, .. }
            | Message::PutReply { request, .. }
            | Message::NameRequest { request, .. }
            | Message::NameReply { request, .. }
            | Message::Subscribe { request, .. }
            | Message::Ack { request, .. }
            | Message::JoinRequest { request }
            | Message::JoinAck { request, .. }
            | Message::HandoffRequest { request, .. }
            | Message::HandoffAck { request, .. }
            | Message::Ping { request }
            | Message::Pong { request } => Some(*request),
            Message::Invalidate { .. }
            | Message::UpdatePush { .. }
            | Message::AckHorizon { .. }
            | Message::Leave { .. } => None,
        }
    }

    /// True for messages that expect a reply.
    pub fn is_request(&self) -> bool {
        matches!(
            self,
            Message::InvokeRequest { .. }
                | Message::GetRequest { .. }
                | Message::GetManyRequest { .. }
                | Message::GetManyStreamRequest { .. }
                | Message::PutRequest { .. }
                | Message::NameRequest { .. }
                | Message::Subscribe { .. }
                | Message::JoinRequest { .. }
                | Message::HandoffRequest { .. }
                | Message::Ping { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_util::SiteId;

    fn rid(seq: u64) -> RequestId {
        RequestId::new(SiteId::new(1), seq)
    }

    fn oid(l: u64) -> ObjId {
        ObjId::new(SiteId::new(2), l)
    }

    fn sample_state(l: u64) -> ReplicaState {
        ReplicaState {
            id: oid(l),
            class: "Item".into(),
            version: l * 3,
            state: Bytes::from(vec![l as u8; 16]),
        }
    }

    fn sample_batch() -> ReplicaBatch {
        ReplicaBatch {
            root: oid(1),
            replicas: vec![sample_state(1), sample_state(2)],
            frontier: vec![FrontierEdge {
                target: oid(3),
                class: "Item".into(),
            }],
            cluster: Some(ClusterId::new(SiteId::new(2), 4)),
        }
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::InvokeRequest {
                request: rid(1),
                target: oid(1),
                method: "touch".into(),
                args: ObiValue::List(vec![1i64.into(), "x".into()]),
            },
            Message::InvokeReply {
                request: rid(1),
                result: Ok(ObiValue::I64(7)),
            },
            Message::InvokeReply {
                request: rid(2),
                result: Err(ObiError::NoSuchObject(oid(9))),
            },
            Message::GetRequest {
                request: rid(3),
                target: oid(1),
                mode: WireMode::Incremental { batch: 10 },
            },
            Message::GetRequest {
                request: rid(3),
                target: oid(1),
                mode: WireMode::Cluster { size: 100 },
            },
            Message::GetRequest {
                request: rid(3),
                target: oid(1),
                mode: WireMode::Transitive,
            },
            Message::GetReply {
                request: rid(3),
                result: Ok(sample_batch()),
            },
            Message::GetReply {
                request: rid(3),
                result: Err(ObiError::Disconnected {
                    from: SiteId::new(1),
                    to: SiteId::new(2),
                }),
            },
            Message::GetManyRequest {
                request: rid(8),
                targets: vec![oid(1), oid(2), oid(3)],
                mode: WireMode::Incremental { batch: 4 },
            },
            Message::GetManyRequest {
                request: rid(8),
                targets: vec![],
                mode: WireMode::Transitive,
            },
            Message::GetManyReply {
                request: rid(8),
                result: Ok(sample_batch()),
            },
            Message::GetManyReply {
                request: rid(8),
                result: Err(ObiError::NoSuchObject(oid(3))),
            },
            Message::GetManyStreamRequest {
                request: rid(9),
                targets: vec![oid(1), oid(2)],
                mode: WireMode::Incremental { batch: 16 },
                chunk: 8,
                resume_from: 0,
            },
            Message::GetManyStreamRequest {
                request: rid(9),
                targets: vec![],
                mode: WireMode::Transitive,
                chunk: 1,
                resume_from: 3,
            },
            Message::GetManyChunk {
                request: rid(9),
                chunk_index: 2,
                total_hint: 5,
                batch: sample_batch(),
            },
            Message::GetManyDone {
                request: rid(9),
                total_chunks: 5,
                result: Ok(()),
            },
            Message::GetManyDone {
                request: rid(9),
                total_chunks: 0,
                result: Err(ObiError::NoSuchObject(oid(3))),
            },
            Message::PutRequest {
                request: rid(4),
                entries: vec![sample_state(5)],
            },
            Message::PutReply {
                request: rid(4),
                result: Ok(vec![(oid(5), 16)]),
            },
            Message::PutReply {
                request: rid(4),
                result: Err(ObiError::UpdateRejected {
                    object: oid(5),
                    reason: "conflict".into(),
                }),
            },
            Message::NameRequest {
                request: rid(5),
                op: NameOp::Bind {
                    name: "root".into(),
                    target: oid(1),
                },
            },
            Message::NameRequest {
                request: rid(5),
                op: NameOp::Lookup { name: "root".into() },
            },
            Message::NameRequest {
                request: rid(5),
                op: NameOp::Unbind { name: "root".into() },
            },
            Message::NameRequest {
                request: rid(5),
                op: NameOp::List,
            },
            Message::NameReply {
                request: rid(5),
                result: Ok(ObiValue::Ref(oid(1))),
            },
            Message::Subscribe {
                request: rid(6),
                object: oid(1),
                push: true,
            },
            Message::Ack {
                request: rid(6),
                result: Ok(ObiValue::Null),
            },
            Message::Invalidate {
                objects: vec![oid(1), oid(2)],
            },
            Message::UpdatePush {
                entries: vec![sample_state(1)],
            },
            Message::Ping { request: rid(7) },
            Message::Pong { request: rid(7) },
            Message::AckHorizon { up_to: 300 },
            Message::JoinRequest { request: rid(10) },
            Message::JoinAck {
                request: rid(10),
                result: Ok(JoinInfo {
                    peers: vec![SiteId::new(1), SiteId::new(2)],
                    names: vec![("root".into(), oid(1)), ("aux".into(), oid(2))],
                }),
            },
            Message::JoinAck {
                request: rid(10),
                result: Ok(JoinInfo::default()),
            },
            Message::JoinAck {
                request: rid(10),
                result: Err(ObiError::NameNotBound("*".into())),
            },
            Message::HandoffRequest {
                request: rid(11),
                root: oid(1),
                entries: vec![sample_state(1), sample_state(2)],
            },
            Message::HandoffRequest {
                request: rid(11),
                root: oid(1),
                entries: vec![],
            },
            Message::HandoffAck {
                request: rid(11),
                result: Ok(2),
            },
            Message::HandoffAck {
                request: rid(11),
                result: Err(ObiError::NoSuchObject(oid(1))),
            },
            Message::Leave {
                site: SiteId::new(7),
            },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for msg in all_messages() {
            let frame = msg.encode();
            let back = Message::decode(&frame).unwrap_or_else(|e| panic!("{msg:?}: {e}"));
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn truncation_anywhere_fails_cleanly() {
        for msg in all_messages() {
            let frame = msg.encode();
            for cut in 0..frame.len() {
                assert!(
                    Message::decode(&frame[..cut]).is_err(),
                    "{msg:?} decoded from truncated frame of {cut} bytes"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut frame = Message::Ping { request: rid(1) }.encode().to_vec();
        frame.push(0xAB);
        assert!(Message::decode(&frame).is_err());
    }

    #[test]
    fn request_classification() {
        assert!(Message::Ping { request: rid(1) }.is_request());
        assert!(!Message::Pong { request: rid(1) }.is_request());
        assert!(!Message::Invalidate { objects: vec![] }.is_request());
        assert_eq!(
            Message::Invalidate { objects: vec![] }.request_id(),
            None
        );
        assert_eq!(Message::Ping { request: rid(3) }.request_id(), Some(rid(3)));
        assert!(!Message::AckHorizon { up_to: 9 }.is_request());
        assert_eq!(Message::AckHorizon { up_to: 9 }.request_id(), None);
        // Stream frames: only the request opens a stream; chunk and done
        // frames are replies correlated through the same id.
        let stream_req = Message::GetManyStreamRequest {
            request: rid(9),
            targets: vec![oid(1)],
            mode: WireMode::Incremental { batch: 4 },
            chunk: 2,
            resume_from: 0,
        };
        assert!(stream_req.is_request());
        assert_eq!(stream_req.request_id(), Some(rid(9)));
        let chunk = Message::GetManyChunk {
            request: rid(9),
            chunk_index: 0,
            total_hint: 1,
            batch: sample_batch(),
        };
        assert!(!chunk.is_request());
        assert_eq!(chunk.request_id(), Some(rid(9)));
        let done = Message::GetManyDone {
            request: rid(9),
            total_chunks: 1,
            result: Ok(()),
        };
        assert!(!done.is_request());
        assert_eq!(done.request_id(), Some(rid(9)));
        // Membership frames: join/handoff are request/reply pairs, Leave is
        // one-way like Invalidate.
        let join = Message::JoinRequest { request: rid(10) };
        assert!(join.is_request());
        assert_eq!(join.request_id(), Some(rid(10)));
        let join_ack = Message::JoinAck {
            request: rid(10),
            result: Ok(JoinInfo::default()),
        };
        assert!(!join_ack.is_request());
        assert_eq!(join_ack.request_id(), Some(rid(10)));
        let handoff = Message::HandoffRequest {
            request: rid(11),
            root: oid(1),
            entries: vec![],
        };
        assert!(handoff.is_request());
        assert_eq!(handoff.request_id(), Some(rid(11)));
        let handoff_ack = Message::HandoffAck {
            request: rid(11),
            result: Ok(0),
        };
        assert!(!handoff_ack.is_request());
        assert_eq!(handoff_ack.request_id(), Some(rid(11)));
        let leave = Message::Leave { site: SiteId::new(3) };
        assert!(!leave.is_request());
        assert_eq!(leave.request_id(), None);
    }

    #[test]
    fn batch_state_bytes_sums_replica_payloads() {
        let batch = sample_batch();
        assert_eq!(batch.state_bytes(), 32);
    }

    #[test]
    fn unknown_message_tag_is_rejected() {
        assert!(Message::decode(&[0xF0]).is_err());
        assert!(Message::decode(&[]).is_err());
    }
}

//! The dynamic value model.
//!
//! OBIWAN objects expose dynamically dispatched methods (the paper's
//! "invocation only through methods" rule, §2.1). Arguments, results and
//! serialized field state are all [`ObiValue`]s — the Rust analogue of the
//! `Object`-typed parameters in the paper's `IProvide`/`IDemand` interfaces.

use bytes::Bytes;
use obiwan_util::ObjId;
use std::fmt;

/// A dynamically typed OBIWAN value.
///
/// `Ref` carries an object identifier: references never cross the wire as
/// pointers, only as ids that the receiving object space resolves (and, on
/// fault, replicates).
///
/// # Examples
///
/// ```
/// use obiwan_wire::ObiValue;
/// let v = ObiValue::from("hello");
/// assert_eq!(v.as_str(), Some("hello"));
/// assert_eq!(ObiValue::from(3i64).as_i64(), Some(3));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ObiValue {
    /// The absence of a value (Java `null`).
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    I64(i64),
    /// A 64-bit float.
    F64(f64),
    /// A UTF-8 string.
    Str(String),
    /// An opaque byte payload (cheaply cloneable).
    Bytes(Bytes),
    /// An ordered list of values.
    List(Vec<ObiValue>),
    /// An ordered map of string keys to values (order is preserved on the
    /// wire, so encoding is deterministic).
    Map(Vec<(String, ObiValue)>),
    /// A reference to an OBIWAN object, by id.
    Ref(ObjId),
}

impl ObiValue {
    /// Returns the contained boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ObiValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the contained integer, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ObiValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained float, if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ObiValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ObiValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the contained bytes, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            ObiValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a `List`.
    pub fn as_list(&self) -> Option<&[ObiValue]> {
        match self {
            ObiValue::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the contained object reference, if this is a `Ref`.
    pub fn as_ref_id(&self) -> Option<ObjId> {
        match self {
            ObiValue::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&ObiValue> {
        match self {
            ObiValue::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, ObiValue::Null)
    }

    /// Collects every [`ObjId`] reachable inside this value (depth-first,
    /// in encounter order). Used by object spaces to discover out-edges
    /// hidden inside argument payloads.
    pub fn collect_refs(&self, out: &mut Vec<ObjId>) {
        match self {
            ObiValue::Ref(id) => out.push(*id),
            ObiValue::List(items) => {
                for item in items {
                    item.collect_refs(out);
                }
            }
            ObiValue::Map(entries) => {
                for (_, v) in entries {
                    v.collect_refs(out);
                }
            }
            _ => {}
        }
    }

    /// A short tag naming this variant, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ObiValue::Null => "null",
            ObiValue::Bool(_) => "bool",
            ObiValue::I64(_) => "i64",
            ObiValue::F64(_) => "f64",
            ObiValue::Str(_) => "str",
            ObiValue::Bytes(_) => "bytes",
            ObiValue::List(_) => "list",
            ObiValue::Map(_) => "map",
            ObiValue::Ref(_) => "ref",
        }
    }
}

impl fmt::Display for ObiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObiValue::Null => write!(f, "null"),
            ObiValue::Bool(b) => write!(f, "{b}"),
            ObiValue::I64(v) => write!(f, "{v}"),
            ObiValue::F64(v) => write!(f, "{v}"),
            ObiValue::Str(s) => write!(f, "{s:?}"),
            ObiValue::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            ObiValue::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            ObiValue::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            ObiValue::Ref(id) => write!(f, "ref({id})"),
        }
    }
}

impl From<bool> for ObiValue {
    fn from(v: bool) -> Self {
        ObiValue::Bool(v)
    }
}

impl From<i64> for ObiValue {
    fn from(v: i64) -> Self {
        ObiValue::I64(v)
    }
}

impl From<i32> for ObiValue {
    fn from(v: i32) -> Self {
        ObiValue::I64(v as i64)
    }
}

impl From<u32> for ObiValue {
    fn from(v: u32) -> Self {
        ObiValue::I64(v as i64)
    }
}

impl From<f64> for ObiValue {
    fn from(v: f64) -> Self {
        ObiValue::F64(v)
    }
}

impl From<&str> for ObiValue {
    fn from(v: &str) -> Self {
        ObiValue::Str(v.to_owned())
    }
}

impl From<String> for ObiValue {
    fn from(v: String) -> Self {
        ObiValue::Str(v)
    }
}

impl From<Bytes> for ObiValue {
    fn from(v: Bytes) -> Self {
        ObiValue::Bytes(v)
    }
}

impl From<Vec<u8>> for ObiValue {
    fn from(v: Vec<u8>) -> Self {
        ObiValue::Bytes(Bytes::from(v))
    }
}

impl From<ObjId> for ObiValue {
    fn from(v: ObjId) -> Self {
        ObiValue::Ref(v)
    }
}

impl<T: Into<ObiValue>> From<Vec<T>> for ObiValue {
    fn from(v: Vec<T>) -> Self {
        ObiValue::List(v.into_iter().map(Into::into).collect())
    }
}

impl FromIterator<ObiValue> for ObiValue {
    fn from_iter<I: IntoIterator<Item = ObiValue>>(iter: I) -> Self {
        ObiValue::List(iter.into_iter().collect())
    }
}

impl FromIterator<(String, ObiValue)> for ObiValue {
    fn from_iter<I: IntoIterator<Item = (String, ObiValue)>>(iter: I) -> Self {
        ObiValue::Map(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_util::SiteId;

    fn oid(s: u32, l: u64) -> ObjId {
        ObjId::new(SiteId::new(s), l)
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(ObiValue::Bool(true).as_bool(), Some(true));
        assert_eq!(ObiValue::I64(-7).as_i64(), Some(-7));
        assert_eq!(ObiValue::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(ObiValue::from("x").as_str(), Some("x"));
        assert_eq!(ObiValue::Ref(oid(1, 2)).as_ref_id(), Some(oid(1, 2)));
        assert!(ObiValue::Null.is_null());
        assert_eq!(ObiValue::Null.as_i64(), None);
        assert_eq!(ObiValue::I64(1).as_str(), None);
    }

    #[test]
    fn map_get_finds_keys_in_order() {
        let m: ObiValue = vec![
            ("a".to_string(), ObiValue::I64(1)),
            ("b".to_string(), ObiValue::I64(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(m.get("b"), Some(&ObiValue::I64(2)));
        assert_eq!(m.get("z"), None);
        assert_eq!(ObiValue::I64(1).get("a"), None);
    }

    #[test]
    fn collect_refs_walks_nested_structure() {
        let v = ObiValue::List(vec![
            ObiValue::Ref(oid(1, 1)),
            ObiValue::Map(vec![
                ("k".into(), ObiValue::Ref(oid(2, 2))),
                ("l".into(), ObiValue::List(vec![ObiValue::Ref(oid(3, 3))])),
            ]),
            ObiValue::I64(9),
        ]);
        let mut refs = Vec::new();
        v.collect_refs(&mut refs);
        assert_eq!(refs, vec![oid(1, 1), oid(2, 2), oid(3, 3)]);
    }

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(ObiValue::from(3i32), ObiValue::I64(3));
        assert_eq!(ObiValue::from(4u32), ObiValue::I64(4));
        assert_eq!(ObiValue::from(vec![1i64, 2]), ObiValue::List(vec![1i64.into(), 2i64.into()]));
        let b: ObiValue = vec![1u8, 2, 3].into();
        assert_eq!(b.as_bytes().unwrap().as_ref(), &[1, 2, 3]);
    }

    #[test]
    fn display_is_never_empty() {
        let values = [
            ObiValue::Null,
            ObiValue::Bool(false),
            ObiValue::List(vec![]),
            ObiValue::Map(vec![]),
            ObiValue::Bytes(Bytes::new()),
        ];
        for v in values {
            assert!(!v.to_string().is_empty());
            assert!(!v.kind().is_empty());
        }
    }
}

//! CRC-32 (IEEE 802.3 polynomial) for framing durable log records.
//!
//! The WAL in `obiwan-store` frames every record as
//! `len | crc32(payload) | payload`; on recovery a record whose checksum
//! does not match is the torn tail of an interrupted append and everything
//! from it onward is truncated. The checksum lives here, next to the codec
//! the payloads are encoded with, so store and any future readers of the
//! on-disk format share one definition.
//!
//! Implementation: the standard reflected table-driven CRC-32
//! (polynomial `0xEDB88320`, init and final XOR `0xFFFFFFFF`) — the same
//! function as zlib's `crc32`, chosen so external tooling can verify
//! records.

/// Lazily built 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE polynomial, zlib-compatible).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check values for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let payload = b"obiwan wal record payload";
        let base = crc32(payload);
        let mut copy = payload.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&copy), base);
    }

    #[test]
    fn truncation_changes_the_checksum() {
        let payload = b"truncation test payload";
        let full = crc32(payload);
        for cut in 0..payload.len() {
            assert_ne!(crc32(&payload[..cut]), full, "cut at {cut} undetected");
        }
    }
}

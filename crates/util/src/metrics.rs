//! Lightweight platform metrics.
//!
//! Every site records what the evaluation section of the paper measures:
//! messages and bytes on the wire, replicas created, proxy pairs created,
//! object faults taken, and invocations by kind (local vs remote).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, cheaply cloneable counter set.
///
/// # Examples
///
/// ```
/// use obiwan_util::Metrics;
/// let m = Metrics::new();
/// m.incr_lmi();
/// m.add_bytes_sent(128);
/// let snap = m.snapshot();
/// assert_eq!(snap.lmi_count, 1);
/// assert_eq!(snap.bytes_sent, 128);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    rmi_count: AtomicU64,
    lmi_count: AtomicU64,
    object_faults: AtomicU64,
    replicas_created: AtomicU64,
    replicas_evicted: AtomicU64,
    proxy_pairs_created: AtomicU64,
    proxies_reclaimed: AtomicU64,
    puts: AtomicU64,
    refreshes: AtomicU64,
    conflicts_detected: AtomicU64,
    demand_round_trips: AtomicU64,
    fault_nanos: AtomicU64,
    rpc_retries: AtomicU64,
    breaker_fast_fails: AtomicU64,
    cached_replies: AtomicU64,
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    pub messages_sent: u64,
    pub messages_received: u64,
    pub bytes_sent: u64,
    pub bytes_received: u64,
    pub rmi_count: u64,
    pub lmi_count: u64,
    pub object_faults: u64,
    pub replicas_created: u64,
    pub replicas_evicted: u64,
    pub proxy_pairs_created: u64,
    pub proxies_reclaimed: u64,
    pub puts: u64,
    pub refreshes: u64,
    pub conflicts_detected: u64,
    /// Network round-trips spent demanding replicas (`get`/`get_many`
    /// exchanges, retries excluded). Batch faulting exists to shrink this.
    pub demand_round_trips: u64,
    /// Total virtual time (ns) invocations spent blocked on object faults.
    pub fault_nanos: u64,
    /// Request attempts re-issued after a lost frame or timeout.
    pub rpc_retries: u64,
    /// Calls refused immediately because the peer's circuit breaker was open.
    pub breaker_fast_fails: u64,
    /// Duplicate requests answered from the server-side reply cache.
    pub cached_replies: u64,
}

macro_rules! counter_methods {
    ($($incr:ident, $add:ident, $field:ident;)*) => {
        $(
            #[doc = concat!("Increments `", stringify!($field), "` by one.")]
            pub fn $incr(&self) {
                self.inner.$field.fetch_add(1, Ordering::Relaxed);
            }

            #[doc = concat!("Adds `n` to `", stringify!($field), "`.")]
            pub fn $add(&self, n: u64) {
                self.inner.$field.fetch_add(n, Ordering::Relaxed);
            }
        )*
    };
}

impl Metrics {
    /// Creates a fresh, zeroed counter set.
    pub fn new() -> Self {
        Metrics::default()
    }

    counter_methods! {
        incr_messages_sent, add_messages_sent, messages_sent;
        incr_messages_received, add_messages_received, messages_received;
        incr_bytes_sent, add_bytes_sent, bytes_sent;
        incr_bytes_received, add_bytes_received, bytes_received;
        incr_rmi, add_rmi, rmi_count;
        incr_lmi, add_lmi, lmi_count;
        incr_object_faults, add_object_faults, object_faults;
        incr_replicas_created, add_replicas_created, replicas_created;
        incr_replicas_evicted, add_replicas_evicted, replicas_evicted;
        incr_proxy_pairs_created, add_proxy_pairs_created, proxy_pairs_created;
        incr_proxies_reclaimed, add_proxies_reclaimed, proxies_reclaimed;
        incr_puts, add_puts, puts;
        incr_refreshes, add_refreshes, refreshes;
        incr_conflicts_detected, add_conflicts_detected, conflicts_detected;
        incr_demand_round_trips, add_demand_round_trips, demand_round_trips;
        incr_fault_nanos, add_fault_nanos, fault_nanos;
        incr_rpc_retries, add_rpc_retries, rpc_retries;
        incr_breaker_fast_fails, add_breaker_fast_fails, breaker_fast_fails;
        incr_cached_replies, add_cached_replies, cached_replies;
    }

    /// Takes a consistent-enough snapshot of all counters (each counter is
    /// read atomically; the set is not read under a global lock).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let c = &self.inner;
        MetricsSnapshot {
            messages_sent: c.messages_sent.load(Ordering::Relaxed),
            messages_received: c.messages_received.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_received: c.bytes_received.load(Ordering::Relaxed),
            rmi_count: c.rmi_count.load(Ordering::Relaxed),
            lmi_count: c.lmi_count.load(Ordering::Relaxed),
            object_faults: c.object_faults.load(Ordering::Relaxed),
            replicas_created: c.replicas_created.load(Ordering::Relaxed),
            replicas_evicted: c.replicas_evicted.load(Ordering::Relaxed),
            proxy_pairs_created: c.proxy_pairs_created.load(Ordering::Relaxed),
            proxies_reclaimed: c.proxies_reclaimed.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            refreshes: c.refreshes.load(Ordering::Relaxed),
            conflicts_detected: c.conflicts_detected.load(Ordering::Relaxed),
            demand_round_trips: c.demand_round_trips.load(Ordering::Relaxed),
            fault_nanos: c.fault_nanos.load(Ordering::Relaxed),
            rpc_retries: c.rpc_retries.load(Ordering::Relaxed),
            breaker_fast_fails: c.breaker_fast_fails.load(Ordering::Relaxed),
            cached_replies: c.cached_replies.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        let c = &self.inner;
        for a in [
            &c.messages_sent,
            &c.messages_received,
            &c.bytes_sent,
            &c.bytes_received,
            &c.rmi_count,
            &c.lmi_count,
            &c.object_faults,
            &c.replicas_created,
            &c.replicas_evicted,
            &c.proxy_pairs_created,
            &c.proxies_reclaimed,
            &c.puts,
            &c.refreshes,
            &c.conflicts_detected,
            &c.demand_round_trips,
            &c.fault_nanos,
            &c.rpc_retries,
            &c.breaker_fast_fails,
            &c.cached_replies,
        ] {
            a.store(0, Ordering::Relaxed);
        }
    }
}

impl MetricsSnapshot {
    /// Difference between `self` and an earlier snapshot, per counter.
    ///
    /// Saturates at zero so a reset between snapshots does not wrap.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            messages_sent: self.messages_sent.saturating_sub(earlier.messages_sent),
            messages_received: self
                .messages_received
                .saturating_sub(earlier.messages_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            rmi_count: self.rmi_count.saturating_sub(earlier.rmi_count),
            lmi_count: self.lmi_count.saturating_sub(earlier.lmi_count),
            object_faults: self.object_faults.saturating_sub(earlier.object_faults),
            replicas_created: self
                .replicas_created
                .saturating_sub(earlier.replicas_created),
            replicas_evicted: self
                .replicas_evicted
                .saturating_sub(earlier.replicas_evicted),
            proxy_pairs_created: self
                .proxy_pairs_created
                .saturating_sub(earlier.proxy_pairs_created),
            proxies_reclaimed: self
                .proxies_reclaimed
                .saturating_sub(earlier.proxies_reclaimed),
            puts: self.puts.saturating_sub(earlier.puts),
            refreshes: self.refreshes.saturating_sub(earlier.refreshes),
            conflicts_detected: self
                .conflicts_detected
                .saturating_sub(earlier.conflicts_detected),
            demand_round_trips: self
                .demand_round_trips
                .saturating_sub(earlier.demand_round_trips),
            fault_nanos: self.fault_nanos.saturating_sub(earlier.fault_nanos),
            rpc_retries: self.rpc_retries.saturating_sub(earlier.rpc_retries),
            breaker_fast_fails: self
                .breaker_fast_fails
                .saturating_sub(earlier.breaker_fast_fails),
            cached_replies: self.cached_replies.saturating_sub(earlier.cached_replies),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
    }

    #[test]
    fn increments_and_adds_are_visible_in_snapshots() {
        let m = Metrics::new();
        m.incr_rmi();
        m.incr_rmi();
        m.add_bytes_sent(100);
        m.incr_object_faults();
        m.incr_demand_round_trips();
        m.add_fault_nanos(2_800_000);
        let s = m.snapshot();
        assert_eq!(s.rmi_count, 2);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.object_faults, 1);
        assert_eq!(s.demand_round_trips, 1);
        assert_eq!(s.fault_nanos, 2_800_000);
    }

    #[test]
    fn clones_share_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.incr_lmi();
        assert_eq!(m.snapshot().lmi_count, 1);
    }

    #[test]
    fn since_computes_deltas_and_saturates() {
        let m = Metrics::new();
        m.add_puts(3);
        let a = m.snapshot();
        m.add_puts(2);
        let b = m.snapshot();
        assert_eq!(b.since(&a).puts, 2);
        // Saturation: earlier snapshot "larger" than later.
        assert_eq!(a.since(&b).puts, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.incr_messages_sent();
        m.add_bytes_received(7);
        m.incr_conflicts_detected();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn metrics_are_send_and_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<Metrics>();
    }
}

//! Lightweight platform metrics.
//!
//! Every site records what the evaluation section of the paper measures:
//! messages and bytes on the wire, replicas created, proxy pairs created,
//! object faults taken, and invocations by kind (local vs remote) — plus
//! [`Histogram`]-backed latency recorders for the demand/invoke/put/refresh
//! hot paths.
//!
//! The counter set is declared exactly once, in the `counters!`
//! invocation below. The macro generates the atomic storage, the
//! `incr_*`/`add_*` methods, [`Metrics::snapshot`], [`Metrics::reset`] and
//! [`MetricsSnapshot::since`] from that single list, so a new counter can
//! never be registered without also being snapshotted, reset and diffed
//! (the hand-maintained per-counter lists this replaces could silently
//! drift; `obiwan-lint`'s `metrics-coverage` rule now rejects such lists).

use crate::histogram::Histogram;
use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared, cheaply cloneable counter set.
///
/// # Examples
///
/// ```
/// use obiwan_util::Metrics;
/// let m = Metrics::new();
/// m.incr_lmi();
/// m.add_bytes_sent(128);
/// let snap = m.snapshot();
/// assert_eq!(snap.lmi_count, 1);
/// assert_eq!(snap.bytes_sent, 128);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: Counters,
    latency: [Mutex<Histogram>; LatencyKind::ALL.len()],
}

/// The hot-path operations with a dedicated latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatencyKind {
    /// Resolving one object fault / demand round (network wait included).
    Demand,
    /// One local invocation as the caller saw it (faults included).
    Invoke,
    /// One write-back of replica state to its master.
    Put,
    /// One refresh of a replica from its master.
    Refresh,
}

impl LatencyKind {
    /// Every kind, in index order.
    pub const ALL: [LatencyKind; 4] = [
        LatencyKind::Demand,
        LatencyKind::Invoke,
        LatencyKind::Put,
        LatencyKind::Refresh,
    ];

    /// Stable lowercase name, used by exports and diagnostics.
    pub const fn name(self) -> &'static str {
        match self {
            LatencyKind::Demand => "demand",
            LatencyKind::Invoke => "invoke",
            LatencyKind::Put => "put",
            LatencyKind::Refresh => "refresh",
        }
    }

    const fn index(self) -> usize {
        match self {
            LatencyKind::Demand => 0,
            LatencyKind::Invoke => 1,
            LatencyKind::Put => 2,
            LatencyKind::Refresh => 3,
        }
    }
}

/// A point-in-time copy of every latency histogram.
#[derive(Debug, Clone, Default)]
pub struct LatencySnapshot {
    /// Demand / object-fault resolution latency.
    pub demand: Histogram,
    /// Caller-observed invocation latency.
    pub invoke: Histogram,
    /// Write-back latency.
    pub put: Histogram,
    /// Refresh latency.
    pub refresh: Histogram,
}

impl LatencySnapshot {
    /// The histogram for `kind`.
    pub fn get(&self, kind: LatencyKind) -> &Histogram {
        match kind {
            LatencyKind::Demand => &self.demand,
            LatencyKind::Invoke => &self.invoke,
            LatencyKind::Put => &self.put,
            LatencyKind::Refresh => &self.refresh,
        }
    }

    /// Merges another snapshot into this one (e.g. across sites).
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.demand.merge(&other.demand);
        self.invoke.merge(&other.invoke);
        self.put.merge(&other.put);
        self.refresh.merge(&other.refresh);
    }
}

/// Declares the full counter set and generates every per-counter artifact:
/// the atomic `Counters` storage, [`MetricsSnapshot`] (with the given doc
/// comments), the `incr_*`/`add_*` methods, [`Metrics::snapshot`],
/// [`Metrics::reset`] and [`MetricsSnapshot::since`].
macro_rules! counters {
    ($($(#[$doc:meta])* $incr:ident, $add:ident, $field:ident;)*) => {
        #[derive(Debug, Default)]
        struct Counters {
            $($field: AtomicU64,)*
        }

        /// A point-in-time copy of all counters.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
        pub struct MetricsSnapshot {
            $($(#[$doc])* pub $field: u64,)*
        }

        impl Metrics {
            $(
                #[doc = concat!("Increments `", stringify!($field), "` by one.")]
                pub fn $incr(&self) {
                    self.inner.counters.$field.fetch_add(1, Ordering::Relaxed);
                }

                #[doc = concat!("Adds `n` to `", stringify!($field), "`.")]
                pub fn $add(&self, n: u64) {
                    self.inner.counters.$field.fetch_add(n, Ordering::Relaxed);
                }
            )*

            /// Takes a consistent-enough snapshot of all counters (each
            /// counter is read atomically; the set is not read under a
            /// global lock).
            pub fn snapshot(&self) -> MetricsSnapshot {
                let c = &self.inner.counters;
                MetricsSnapshot {
                    $($field: c.$field.load(Ordering::Relaxed),)*
                }
            }

            /// Resets every counter to zero and clears every latency
            /// histogram.
            pub fn reset(&self) {
                let c = &self.inner.counters;
                $(c.$field.store(0, Ordering::Relaxed);)*
                for h in &self.inner.latency {
                    *h.lock() = Histogram::new();
                }
            }
        }

        impl MetricsSnapshot {
            /// Difference between `self` and an earlier snapshot, per
            /// counter.
            ///
            /// Saturates at zero so a reset between snapshots does not
            /// wrap.
            pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
                MetricsSnapshot {
                    $($field: self.$field.saturating_sub(earlier.$field),)*
                }
            }
        }
    };
}

counters! {
    incr_messages_sent, add_messages_sent, messages_sent;
    incr_messages_received, add_messages_received, messages_received;
    incr_bytes_sent, add_bytes_sent, bytes_sent;
    incr_bytes_received, add_bytes_received, bytes_received;
    incr_rmi, add_rmi, rmi_count;
    incr_lmi, add_lmi, lmi_count;
    incr_object_faults, add_object_faults, object_faults;
    incr_replicas_created, add_replicas_created, replicas_created;
    incr_replicas_evicted, add_replicas_evicted, replicas_evicted;
    incr_proxy_pairs_created, add_proxy_pairs_created, proxy_pairs_created;
    incr_proxies_reclaimed, add_proxies_reclaimed, proxies_reclaimed;
    incr_puts, add_puts, puts;
    incr_refreshes, add_refreshes, refreshes;
    incr_conflicts_detected, add_conflicts_detected, conflicts_detected;
    /// Network round-trips spent demanding replicas (`get`/`get_many`
    /// exchanges, retries excluded). Batch faulting exists to shrink this.
    incr_demand_round_trips, add_demand_round_trips, demand_round_trips;
    /// Total virtual time (ns) invocations spent blocked on object faults.
    incr_fault_nanos, add_fault_nanos, fault_nanos;
    /// Request attempts re-issued after a lost frame or timeout.
    incr_rpc_retries, add_rpc_retries, rpc_retries;
    /// Calls refused immediately because the peer's circuit breaker was open.
    incr_breaker_fast_fails, add_breaker_fast_fails, breaker_fast_fails;
    /// Duplicate requests answered from the server-side reply cache.
    incr_cached_replies, add_cached_replies, cached_replies;
    /// Reply chunks delivered (in order) to the streaming demand path.
    incr_demand_chunks, add_demand_chunks, demand_chunks;
    /// Streamed `get_many` calls resumed mid-batch after a lost chunk,
    /// lost terminal, or timeout (`resume_from` re-sends of one request id).
    incr_stream_resumes, add_stream_resumes, stream_resumes;
    /// Parked stream chunks dropped because their root was evicted or
    /// collected before the pump ran (a stale chunk must not resurrect a
    /// dead replica).
    incr_stale_chunks_dropped, add_stale_chunks_dropped, stale_chunks_dropped;
    /// Reply-cache in-flight admission slots reclaimed by the age-based
    /// reap (an executor died without publishing; its slot would otherwise
    /// leak forever).
    incr_pending_slots_reaped, add_pending_slots_reaped, pending_slots_reaped;
    /// Mastership handoffs completed by this site (intent logged, successor
    /// acked, local masters demoted).
    incr_handoffs_completed, add_handoffs_completed, handoffs_completed;
    /// Puts re-targeted at a root's new master after a `MovedMaster`
    /// redirect from the old one.
    incr_moved_master_redirects, add_moved_master_redirects, moved_master_redirects;
    /// Peers retired from breaker/monitor tracking after a graceful leave.
    incr_peers_retired, add_peers_retired, peers_retired;
}

impl Metrics {
    /// Creates a fresh, zeroed counter set.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one `kind` operation that took `d` into the matching
    /// latency histogram.
    pub fn record_latency(&self, kind: LatencyKind, d: Duration) {
        self.inner.latency[kind.index()].lock().record(d);
    }

    /// A point-in-time copy of every latency histogram.
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            demand: self.inner.latency[LatencyKind::Demand.index()].lock().clone(),
            invoke: self.inner.latency[LatencyKind::Invoke.index()].lock().clone(),
            put: self.inner.latency[LatencyKind::Put.index()].lock().clone(),
            refresh: self.inner.latency[LatencyKind::Refresh.index()].lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let snap = Metrics::new().snapshot();
        assert_eq!(snap, MetricsSnapshot::default());
    }

    #[test]
    fn increments_and_adds_are_visible_in_snapshots() {
        let m = Metrics::new();
        m.incr_rmi();
        m.incr_rmi();
        m.add_bytes_sent(100);
        m.incr_object_faults();
        m.incr_demand_round_trips();
        m.add_fault_nanos(2_800_000);
        let s = m.snapshot();
        assert_eq!(s.rmi_count, 2);
        assert_eq!(s.bytes_sent, 100);
        assert_eq!(s.object_faults, 1);
        assert_eq!(s.demand_round_trips, 1);
        assert_eq!(s.fault_nanos, 2_800_000);
    }

    #[test]
    fn clones_share_counters() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.incr_lmi();
        assert_eq!(m.snapshot().lmi_count, 1);
    }

    #[test]
    fn since_computes_deltas_and_saturates() {
        let m = Metrics::new();
        m.add_puts(3);
        let a = m.snapshot();
        m.add_puts(2);
        let b = m.snapshot();
        assert_eq!(b.since(&a).puts, 2);
        // Saturation: earlier snapshot "larger" than later.
        assert_eq!(a.since(&b).puts, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.incr_messages_sent();
        m.add_bytes_received(7);
        m.incr_conflicts_detected();
        m.record_latency(LatencyKind::Demand, Duration::from_millis(3));
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        assert!(m.latency_snapshot().demand.is_empty());
    }

    #[test]
    fn latency_recorders_are_per_kind_and_shared_across_clones() {
        let m = Metrics::new();
        m.clone().record_latency(LatencyKind::Demand, Duration::from_millis(3));
        m.record_latency(LatencyKind::Demand, Duration::from_millis(5));
        m.record_latency(LatencyKind::Invoke, Duration::from_micros(2));
        let snap = m.latency_snapshot();
        assert_eq!(snap.demand.len(), 2);
        assert_eq!(snap.invoke.len(), 1);
        assert!(snap.put.is_empty());
        assert!(snap.refresh.is_empty());
        assert_eq!(snap.get(LatencyKind::Invoke).len(), 1);
        assert!(snap.demand.mean() >= Duration::from_millis(3));
    }

    #[test]
    fn latency_snapshots_merge_across_sites() {
        let site_a = Metrics::new();
        let site_b = Metrics::new();
        site_a.record_latency(LatencyKind::Put, Duration::from_millis(1));
        site_b.record_latency(LatencyKind::Put, Duration::from_millis(9));
        let mut merged = site_a.latency_snapshot();
        merged.merge(&site_b.latency_snapshot());
        assert_eq!(merged.put.len(), 2);
        assert_eq!(merged.put.max(), Duration::from_millis(9));
    }

    #[test]
    fn latency_kind_names_are_stable() {
        let names: Vec<&str> = LatencyKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names, ["demand", "invoke", "put", "refresh"]);
    }

    #[test]
    fn metrics_are_send_and_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<Metrics>();
    }
}

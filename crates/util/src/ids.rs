//! Strongly typed identifiers.
//!
//! OBIWAN objects live in per-process *object spaces*; an [`ObjId`] is
//! globally unique because it couples the [`SiteId`] of the process that
//! created the object with a site-local counter. Replicas of the same master
//! object share the master's [`ObjId`] but carry their own [`ReplicaId`].

use std::fmt;

/// Identifier of a site (a process participating in the OBIWAN network).
///
/// Sites are the unit of distribution: each site hosts one object space and
/// one RMI endpoint. In the paper's running example these are `S1` and `S2`.
///
/// # Examples
///
/// ```
/// use obiwan_util::SiteId;
/// let s1 = SiteId::new(1);
/// assert_eq!(s1.as_u32(), 1);
/// assert_eq!(format!("{s1}"), "S1");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SiteId(u32);

impl SiteId {
    /// Creates a site identifier from a raw number.
    pub const fn new(raw: u32) -> Self {
        SiteId(raw)
    }

    /// Returns the raw numeric value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(raw: u32) -> Self {
        SiteId(raw)
    }
}

/// Globally unique object identifier: origin site plus site-local counter.
///
/// An `ObjId` names the *master* object; replicas on other sites are indexed
/// under the same `ObjId` in their local object spaces, which is what makes
/// reference swizzling a pure table update.
///
/// # Examples
///
/// ```
/// use obiwan_util::{ObjId, SiteId};
/// let id = ObjId::new(SiteId::new(2), 7);
/// assert_eq!(id.site(), SiteId::new(2));
/// assert_eq!(id.local(), 7);
/// assert_eq!(format!("{id}"), "S2/7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId {
    site: SiteId,
    local: u64,
}

impl ObjId {
    /// Creates an object id from an origin site and a site-local counter.
    pub const fn new(site: SiteId, local: u64) -> Self {
        ObjId { site, local }
    }

    /// The site on which the master object was created.
    pub const fn site(self) -> SiteId {
        self.site
    }

    /// The site-local portion of the identifier.
    pub const fn local(self) -> u64 {
        self.local
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.site, self.local)
    }
}

/// Identifier of one replica of an object on one site.
///
/// The pair (object, holder site) uniquely names a replica because a site
/// holds at most one replica of a given object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId {
    object: ObjId,
    holder: SiteId,
}

impl ReplicaId {
    /// Creates a replica id for `object` held at `holder`.
    pub const fn new(object: ObjId, holder: SiteId) -> Self {
        ReplicaId { object, holder }
    }

    /// The master object this replica copies.
    pub const fn object(self) -> ObjId {
        self.object
    }

    /// The site holding this replica.
    pub const fn holder(self) -> SiteId {
        self.holder
    }
}

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.object, self.holder)
    }
}

/// Identifier of an in-flight RMI request, unique per originating site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId {
    origin: SiteId,
    seq: u64,
}

impl RequestId {
    /// Creates a request id for sequence number `seq` issued by `origin`.
    pub const fn new(origin: SiteId, seq: u64) -> Self {
        RequestId { origin, seq }
    }

    /// The site that issued the request.
    pub const fn origin(self) -> SiteId {
        self.origin
    }

    /// The per-site sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req:{}:{}", self.origin, self.seq)
    }
}

/// Identifier of a replicated cluster (paper §4.3).
///
/// A cluster is a run-time-chosen set of objects replicated as a whole and
/// sharing a single proxy-in/proxy-out pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId {
    provider: SiteId,
    seq: u64,
}

impl ClusterId {
    /// Creates a cluster id for the `seq`-th cluster exported by `provider`.
    pub const fn new(provider: SiteId, seq: u64) -> Self {
        ClusterId { provider, seq }
    }

    /// The site that exported the cluster.
    pub const fn provider(self) -> SiteId {
        self.provider
    }

    /// The per-provider sequence number.
    pub const fn seq(self) -> u64 {
        self.seq
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster:{}:{}", self.provider, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn site_id_roundtrip_and_display() {
        let s = SiteId::new(9);
        assert_eq!(s.as_u32(), 9);
        assert_eq!(s.to_string(), "S9");
        assert_eq!(SiteId::from(9u32), s);
    }

    #[test]
    fn obj_ids_distinguish_site_and_local() {
        let a = ObjId::new(SiteId::new(1), 5);
        let b = ObjId::new(SiteId::new(2), 5);
        let c = ObjId::new(SiteId::new(1), 6);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ObjId::new(SiteId::new(1), 5));
    }

    #[test]
    fn ids_are_hashable_and_distinct_in_sets() {
        let mut set = HashSet::new();
        for site in 0..4u32 {
            for local in 0..4u64 {
                set.insert(ObjId::new(SiteId::new(site), local));
            }
        }
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn replica_id_carries_holder() {
        let obj = ObjId::new(SiteId::new(2), 1);
        let r = ReplicaId::new(obj, SiteId::new(1));
        assert_eq!(r.object(), obj);
        assert_eq!(r.holder(), SiteId::new(1));
        assert_eq!(r.to_string(), "S2/1@S1");
    }

    #[test]
    fn request_ids_order_by_origin_then_seq() {
        let a = RequestId::new(SiteId::new(1), 1);
        let b = RequestId::new(SiteId::new(1), 2);
        let c = RequestId::new(SiteId::new(2), 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn cluster_id_display() {
        let c = ClusterId::new(SiteId::new(3), 11);
        assert_eq!(c.to_string(), "cluster:S3:11");
        assert_eq!(c.provider(), SiteId::new(3));
        assert_eq!(c.seq(), 11);
    }
}

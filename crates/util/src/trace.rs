//! Feature-gated span tracer for hot-path observability.
//!
//! Following the span-per-request style of distributed tracers, every
//! instrumented operation opens a named [`SpanGuard`] and the guard's drop
//! records one completed [`SpanEvent`] — name, virtual-clock start/end,
//! nesting depth and optional [`SiteId`]/[`ObjId`]/[`RequestId`] context —
//! into a per-site ring buffer (one extra ring for untagged spans). A
//! demand round-trip therefore decomposes into nested spans (`obi.invoke`
//! → `obi.fault` → `rpc.round_trip` → `net.call` → `rpc.handle` …) that
//! can be exported as JSON for offline inspection. Rings are per site so a
//! chatty site in a large world overwrites its *own* history, never
//! another site's; a single global sequence number still totally orders
//! spans across rings.
//!
//! Gating mirrors the `lockcheck` convention (see [`crate::sync`]):
//!
//! * Default build: every entry point compiles to an inlined no-op; the
//!   guard is a zero-sized type with no `Drop` impl and the ring does not
//!   exist. `cargo build --release` pays nothing.
//! * With `feature = "trace"` (enabled by the root package's
//!   dev-dependencies, so every `cargo test` run traces): spans are
//!   recorded into fixed-capacity per-site rings, each overwriting its own
//!   oldest entry on overflow and counting what it discarded. The hot path
//!   never allocates once a site's ring is warm — rings are preallocated
//!   at [`RING_CAPACITY`], span names are `&'static str`, and context ids
//!   are `Copy`.
//!
//! The ring set is process-global and tests share it; suites that assert
//! on trace contents serialize themselves and call [`clear`] first.

use crate::clock::Clock;
use crate::ids::{ObjId, RequestId, SiteId};
use std::fmt::Write as _;

/// Whether this build records spans. Mirrors
/// [`crate::sync::lockcheck_enabled`]: tests use it to skip (or insist on)
/// trace assertions instead of guessing from features of other crates.
pub const fn trace_enabled() -> bool {
    cfg!(feature = "trace")
}

/// Number of spans each per-site ring retains before overwriting its own
/// oldest entry. Untagged spans share one additional ring of the same
/// capacity.
pub const RING_CAPACITY: usize = 4096;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Monotone per-process sequence number (records the true order even
    /// after the ring wraps).
    pub seq: u64,
    /// Static span name, dot-namespaced by layer (`obi.*`, `rpc.*`,
    /// `net.*`, `session.*`).
    pub name: &'static str,
    /// Virtual time at guard creation, in nanoseconds.
    pub start_nanos: u64,
    /// Virtual time at guard drop, in nanoseconds.
    pub end_nanos: u64,
    /// Nesting depth on the recording thread (0 = root span).
    pub depth: u16,
    /// Site performing the operation, when known.
    pub site: Option<SiteId>,
    /// Object being resolved/written, when the span is about one object.
    pub obj: Option<ObjId>,
    /// RPC request id, for spans tied to one exchange.
    pub req: Option<RequestId>,
    /// Free per-span magnitude (batch size, payload bytes, retry count).
    pub value: u64,
}

impl SpanEvent {
    /// Span duration in virtual nanoseconds.
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

#[cfg(feature = "trace")]
mod imp {
    use super::SpanEvent;
    use std::cell::Cell;
    use std::sync::OnceLock;

    // Deliberately `parking_lot`, not the `crate::sync` facade: the rings
    // are a leaf lock touched from inside arbitrary lock contexts, and it
    // must not feed the lockcheck order graph (or recurse into itself when
    // the detector's own locks are traced).
    use parking_lot::Mutex;
    use std::collections::BTreeMap;

    /// One site's span history. Entries arrive in global-seq order, so
    /// once full, the oldest entry always sits at the write cursor.
    #[derive(Default)]
    struct Ring {
        buf: Vec<SpanEvent>,
        write: usize,
        dropped: u64,
    }

    impl Ring {
        fn record(&mut self, ev: SpanEvent) {
            if self.buf.len() < super::RING_CAPACITY {
                self.buf.push(ev);
            } else {
                self.buf[self.write] = ev;
                self.write = (self.write + 1) % super::RING_CAPACITY;
                self.dropped += 1;
            }
        }
    }

    /// All rings, keyed by site (None = untagged spans), sharing one
    /// global sequence counter so cross-ring order is total.
    #[derive(Default)]
    pub(super) struct Rings {
        by_site: BTreeMap<Option<u32>, Ring>,
        next_seq: u64,
    }

    impl Rings {
        pub(super) fn record(&mut self, mut ev: SpanEvent) {
            ev.seq = self.next_seq;
            self.next_seq += 1;
            let key = ev.site.map(|s| s.as_u32());
            self.by_site.entry(key).or_default().record(ev);
        }

        pub(super) fn ordered(&self) -> Vec<SpanEvent> {
            let mut out: Vec<SpanEvent> = self
                .by_site
                .values()
                .flat_map(|r| r.buf.iter().copied())
                .collect();
            out.sort_by_key(|e| e.seq);
            out
        }

        pub(super) fn clear(&mut self) {
            self.by_site.clear();
            self.next_seq = 0;
        }

        pub(super) fn dropped(&self) -> u64 {
            self.by_site.values().map(|r| r.dropped).sum()
        }
    }

    pub(super) fn ring() -> &'static Mutex<Rings> {
        static RINGS: OnceLock<Mutex<Rings>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Rings::default()))
    }

    thread_local! {
        static DEPTH: Cell<u16> = const { Cell::new(0) };
    }

    pub(super) fn push_depth() -> u16 {
        DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur.saturating_add(1));
            cur
        })
    }

    pub(super) fn pop_depth() {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
    }
}

/// An in-flight span. Records one [`SpanEvent`] when dropped.
///
/// Without `feature = "trace"` this is a zero-sized type with no `Drop`
/// impl; constructing and dropping it compiles away.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    #[cfg(feature = "trace")]
    active: Option<Active>,
}

#[cfg(feature = "trace")]
struct Active {
    clock: Clock,
    event: SpanEvent,
}

/// Opens a span named `name`, timestamped by `clock`'s virtual time.
///
/// Attach context with the builder methods:
///
/// ```
/// use obiwan_util::{trace, Clock, ClockMode, SiteId};
/// let clock = Clock::new(ClockMode::VirtualOnly);
/// let _span = trace::span(&clock, "obi.demand").with_site(SiteId::new(1));
/// ```
#[inline]
pub fn span(clock: &Clock, name: &'static str) -> SpanGuard {
    #[cfg(feature = "trace")]
    {
        let now = clock.virtual_nanos();
        SpanGuard {
            active: Some(Active {
                clock: clock.clone(),
                event: SpanEvent {
                    seq: 0,
                    name,
                    start_nanos: now,
                    end_nanos: now,
                    depth: imp::push_depth(),
                    site: None,
                    obj: None,
                    req: None,
                    value: 0,
                },
            }),
        }
    }
    #[cfg(not(feature = "trace"))]
    {
        let _ = (clock, name);
        SpanGuard {}
    }
}

impl SpanGuard {
    /// Tags the span with the site performing the work.
    #[inline]
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    pub fn with_site(mut self, site: SiteId) -> Self {
        #[cfg(feature = "trace")]
        if let Some(a) = &mut self.active {
            a.event.site = Some(site);
        }
        #[cfg(not(feature = "trace"))]
        let _ = site;
        self
    }

    /// Tags the span with the object it concerns.
    #[inline]
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    pub fn with_obj(mut self, obj: ObjId) -> Self {
        #[cfg(feature = "trace")]
        if let Some(a) = &mut self.active {
            a.event.obj = Some(obj);
        }
        #[cfg(not(feature = "trace"))]
        let _ = obj;
        self
    }

    /// Tags the span with the RPC request it belongs to.
    #[inline]
    #[cfg_attr(not(feature = "trace"), allow(unused_mut))]
    pub fn with_req(mut self, req: RequestId) -> Self {
        #[cfg(feature = "trace")]
        if let Some(a) = &mut self.active {
            a.event.req = Some(req);
        }
        #[cfg(not(feature = "trace"))]
        let _ = req;
        self
    }

    /// Sets the span's magnitude (batch size, bytes, retries, …).
    #[inline]
    pub fn with_value(mut self, value: u64) -> Self {
        self.set_value(value);
        self
    }

    /// Sets the magnitude on an already-bound guard (for values only known
    /// mid-scope, like a retry count).
    #[inline]
    pub fn set_value(&mut self, value: u64) {
        #[cfg(feature = "trace")]
        if let Some(a) = &mut self.active {
            a.event.value = value;
        }
        #[cfg(not(feature = "trace"))]
        let _ = value;
    }
}

#[cfg(feature = "trace")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(mut a) = self.active.take() {
            imp::pop_depth();
            a.event.end_nanos = a.clock.virtual_nanos();
            imp::ring().lock().record(a.event);
        }
    }
}

/// All retained spans, ordered by sequence number. Empty when the feature
/// is off.
pub fn events() -> Vec<SpanEvent> {
    #[cfg(feature = "trace")]
    {
        imp::ring().lock().ordered()
    }
    #[cfg(not(feature = "trace"))]
    {
        Vec::new()
    }
}

/// Number of spans overwritten since the last [`clear`] because the ring
/// was full.
pub fn dropped() -> u64 {
    #[cfg(feature = "trace")]
    {
        imp::ring().lock().dropped()
    }
    #[cfg(not(feature = "trace"))]
    {
        0
    }
}

/// Empties the ring and resets the sequence and drop counters.
pub fn clear() {
    #[cfg(feature = "trace")]
    imp::ring().lock().clear();
}

/// Serializes the retained spans as a JSON document:
/// `{"dropped": N, "spans": [{...}, ...], "site_index": {...}}` with one
/// object per span (`seq`, `name`, `start_nanos`, `end_nanos`, `depth`,
/// `value`, and `site`/`obj`/`req` when tagged). Span names are controlled
/// `&'static` identifiers, so no string escaping is required.
///
/// `site_index` maps each tagged site id to the positions of its spans in
/// the `spans` array, ascending by site id. In a many-site world the ring
/// interleaves every site's traffic; the index lets a consumer pull one
/// site's timeline without scanning all `RING_CAPACITY` entries per site.
pub fn export_json() -> String {
    let spans = events();
    let mut out = String::with_capacity(64 + spans.len() * 128);
    let _ = write!(out, "{{\"dropped\":{},\"spans\":[", dropped());
    let mut site_index: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, e) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"name\":\"{}\",\"start_nanos\":{},\"end_nanos\":{},\"depth\":{},\"value\":{}",
            e.seq, e.name, e.start_nanos, e.end_nanos, e.depth, e.value
        );
        if let Some(site) = e.site {
            let _ = write!(out, ",\"site\":{}", site.as_u32());
            site_index.entry(site.as_u32()).or_default().push(i);
        }
        if let Some(obj) = e.obj {
            let _ = write!(out, ",\"obj\":\"{obj}\"");
        }
        if let Some(req) = e.req {
            let _ = write!(out, ",\"req\":\"{req}\"");
        }
        out.push('}');
    }
    out.push_str("],\"site_index\":{");
    for (i, (site, positions)) in site_index.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{site}\":[");
        for (j, pos) in positions.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{pos}");
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use std::sync::Mutex as StdMutex;

    // The ring is process-global; tests that inspect it must not interleave.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn spans_record_names_context_and_virtual_times() {
        let _serial = lock();
        clear();
        let clock = Clock::new(ClockMode::VirtualOnly);
        clock.charge_nanos(100);
        {
            let _s = span(&clock, "test.outer")
                .with_site(SiteId::new(3))
                .with_value(7);
            clock.charge_nanos(50);
        }
        let evs = events();
        assert_eq!(evs.len(), 1);
        let e = evs[0];
        assert_eq!(e.name, "test.outer");
        assert_eq!(e.start_nanos, 100);
        assert_eq!(e.end_nanos, 150);
        assert_eq!(e.duration_nanos(), 50);
        assert_eq!(e.site, Some(SiteId::new(3)));
        assert_eq!(e.value, 7);
        assert_eq!(e.depth, 0);
    }

    #[test]
    fn nested_spans_report_depth_and_containment() {
        let _serial = lock();
        clear();
        let clock = Clock::new(ClockMode::VirtualOnly);
        {
            let _outer = span(&clock, "test.parent");
            clock.charge_nanos(10);
            {
                let _inner = span(&clock, "test.child").with_obj(ObjId::new(SiteId::new(1), 42));
                clock.charge_nanos(5);
                let _leaf = span(&clock, "test.leaf");
            }
            clock.charge_nanos(10);
        }
        let evs = events();
        // Children drop first, so the ring holds leaf, child, parent.
        assert_eq!(
            evs.iter().map(|e| e.name).collect::<Vec<_>>(),
            ["test.leaf", "test.child", "test.parent"]
        );
        let leaf = evs[0];
        let child = evs[1];
        let parent = evs[2];
        assert_eq!(parent.depth, 0);
        assert_eq!(child.depth, 1);
        assert_eq!(leaf.depth, 2);
        assert!(parent.start_nanos <= child.start_nanos);
        assert!(child.end_nanos <= parent.end_nanos);
        assert_eq!(child.obj, Some(ObjId::new(SiteId::new(1), 42)));
    }

    #[test]
    fn ring_wraps_by_overwriting_oldest_and_counts_drops() {
        let _serial = lock();
        clear();
        let clock = Clock::new(ClockMode::VirtualOnly);
        let extra = 100u64;
        for i in 0..(RING_CAPACITY as u64 + extra) {
            let _s = span(&clock, "test.wrap").with_value(i);
        }
        let evs = events();
        assert_eq!(evs.len(), RING_CAPACITY);
        assert_eq!(dropped(), extra);
        // The oldest `extra` spans were overwritten: the retained window is
        // exactly [extra, capacity + extra), still in order.
        assert_eq!(evs[0].value, extra);
        assert_eq!(evs.last().unwrap().value, RING_CAPACITY as u64 + extra - 1);
        for w in evs.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        clear();
        assert!(events().is_empty());
        assert_eq!(dropped(), 0);
    }

    #[test]
    fn export_json_emits_every_retained_span() {
        let _serial = lock();
        clear();
        let clock = Clock::new(ClockMode::VirtualOnly);
        {
            let _s = span(&clock, "test.json")
                .with_site(SiteId::new(9))
                .with_obj(ObjId::new(SiteId::new(9), 1))
                .with_value(3);
            clock.charge_nanos(25);
        }
        let json = export_json();
        assert!(json.starts_with("{\"dropped\":0,\"spans\":["));
        assert!(json.contains("\"name\":\"test.json\""));
        assert!(json.contains("\"site\":9"));
        assert!(json.contains("\"obj\":\""));
        assert!(json.contains("\"value\":3"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn export_json_indexes_spans_by_site() {
        let _serial = lock();
        clear();
        let clock = Clock::new(ClockMode::VirtualOnly);
        // Interleave two sites' spans plus an untagged one: the index must
        // list each site's positions in span order and skip untagged spans.
        let _ = span(&clock, "test.a").with_site(SiteId::new(7));
        let _ = span(&clock, "test.b").with_site(SiteId::new(3));
        let _ = span(&clock, "test.c");
        let _ = span(&clock, "test.d").with_site(SiteId::new(7));
        let json = export_json();
        assert!(
            json.ends_with("\"site_index\":{\"3\":[1],\"7\":[0,3]}}"),
            "unexpected tail: …{}",
            &json[json.len().saturating_sub(60)..]
        );
    }

    #[test]
    fn a_flooding_site_does_not_evict_other_sites_spans() {
        let _serial = lock();
        clear();
        let clock = Clock::new(ClockMode::VirtualOnly);
        let quiet = SiteId::new(3);
        let noisy = SiteId::new(7);
        // A few early spans from the quiet site…
        for i in 0..3u64 {
            let _s = span(&clock, "test.quiet").with_site(quiet).with_value(i);
        }
        // …then a flood from the noisy site that overflows its own ring,
        // plus some untagged spans, which have their own ring too.
        let extra = 10u64;
        for i in 0..(RING_CAPACITY as u64 + extra) {
            let _s = span(&clock, "test.noisy").with_site(noisy).with_value(i);
        }
        let _untagged = span(&clock, "test.untagged");
        drop(_untagged);
        let evs = events();
        let quiet_spans: Vec<_> = evs.iter().filter(|e| e.site == Some(quiet)).collect();
        assert_eq!(quiet_spans.len(), 3, "flood must not evict the quiet site");
        assert_eq!(
            quiet_spans.iter().map(|e| e.value).collect::<Vec<_>>(),
            [0, 1, 2]
        );
        let noisy_spans: Vec<_> = evs.iter().filter(|e| e.site == Some(noisy)).collect();
        assert_eq!(noisy_spans.len(), RING_CAPACITY);
        assert_eq!(noisy_spans[0].value, extra, "noisy ring dropped its own oldest");
        assert_eq!(dropped(), extra);
        assert_eq!(evs.iter().filter(|e| e.site.is_none()).count(), 1);
        // The global sequence stays total across rings.
        for w in evs.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn trace_enabled_reflects_the_feature() {
        assert!(trace_enabled());
    }
}

#[cfg(all(test, not(feature = "trace")))]
mod disabled_tests {
    use super::*;
    use crate::clock::ClockMode;

    #[test]
    fn disabled_tracer_is_a_zero_sized_no_op() {
        assert!(!trace_enabled());
        assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
        assert!(!std::mem::needs_drop::<SpanGuard>());
        let clock = Clock::new(ClockMode::VirtualOnly);
        {
            let _s = span(&clock, "test.noop")
                .with_site(SiteId::new(1))
                .with_value(1);
        }
        assert!(events().is_empty());
        assert_eq!(dropped(), 0);
        assert_eq!(export_json(), "{\"dropped\":0,\"spans\":[],\"site_index\":{}}");
        clear();
    }
}

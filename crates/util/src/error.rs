//! The platform-wide error type.

use crate::ids::{ObjId, SiteId};
use std::fmt;

/// Convenience alias used across all OBIWAN crates.
pub type Result<T> = std::result::Result<T, ObiError>;

/// Errors produced by the OBIWAN platform.
///
/// The variants mirror the failure modes the paper's motivation section calls
/// out: disconnections and unreachable sites surface as
/// [`ObiError::Disconnected`] / [`ObiError::SiteUnreachable`] rather than
/// aborting the application, so callers can fall back to local replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObiError {
    /// The target site cannot be reached (no route, site not registered).
    SiteUnreachable(SiteId),
    /// The link to the target site is administratively or physically down.
    Disconnected { from: SiteId, to: SiteId },
    /// A message was dropped by the (lossy) network after all retries.
    MessageLost { from: SiteId, to: SiteId },
    /// The call's deadline budget (or an I/O timeout) expired before a
    /// reply arrived. Distinct from [`ObiError::SiteUnreachable`]: the peer
    /// may be alive but slow, so retrying a fresh call can succeed.
    Timeout { to: SiteId },
    /// No object with this id exists in the addressed object space.
    NoSuchObject(ObjId),
    /// The object exists but does not export the requested method.
    NoSuchMethod { object: ObjId, method: String },
    /// A name-server lookup failed.
    NameNotBound(String),
    /// A name-server bind collided with an existing binding.
    NameAlreadyBound(String),
    /// Re-entrant invocation of an object already on the call stack.
    ReentrantInvocation(ObjId),
    /// Wire-format decode failure.
    Decode(String),
    /// Method arguments did not match what the callee expected.
    BadArguments(String),
    /// A `put` was rejected by the master's consistency policy.
    UpdateRejected { object: ObjId, reason: String },
    /// The object is part of a cluster and cannot be individually updated
    /// (paper §4.3: cluster members share a single proxy pair).
    ClusterMember(ObjId),
    /// The object has no local replica and the caller asked for local-only
    /// resolution (e.g. while disconnected).
    NotReplicated(ObjId),
    /// A replica was created from a master that has since been retracted.
    StaleProvider(ObjId),
    /// The addressed site no longer masters `object`: mastership was handed
    /// off to `to`. Definitive for the request as addressed (the old master
    /// will never apply it), but retryable against the new master — the put
    /// path re-targets `to` with a fresh request id.
    MovedMaster { object: ObjId, to: SiteId },
    /// An application-level error raised inside an invoked method.
    Application(String),
    /// The durable storage backend failed (write error, out of space, or a
    /// simulated crash in fault-injection tests). Distinct from
    /// [`ObiError::Internal`]: storage failures are environmental and the
    /// in-memory state is still consistent — only durability is degraded.
    Storage(String),
    /// Internal invariant violation; indicates a platform bug.
    Internal(String),
}

impl fmt::Display for ObiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObiError::SiteUnreachable(s) => write!(f, "site {s} is unreachable"),
            ObiError::Disconnected { from, to } => {
                write!(f, "link {from} -> {to} is disconnected")
            }
            ObiError::MessageLost { from, to } => {
                write!(f, "message from {from} to {to} was lost")
            }
            ObiError::Timeout { to } => {
                write!(f, "call to {to} timed out before its deadline")
            }
            ObiError::NoSuchObject(o) => write!(f, "no object {o} in this space"),
            ObiError::NoSuchMethod { object, method } => {
                write!(f, "object {object} has no method `{method}`")
            }
            ObiError::NameNotBound(n) => write!(f, "name `{n}` is not bound"),
            ObiError::NameAlreadyBound(n) => write!(f, "name `{n}` is already bound"),
            ObiError::ReentrantInvocation(o) => {
                write!(f, "re-entrant invocation of object {o}")
            }
            ObiError::Decode(m) => write!(f, "wire decode error: {m}"),
            ObiError::BadArguments(m) => write!(f, "bad method arguments: {m}"),
            ObiError::UpdateRejected { object, reason } => {
                write!(f, "update of {object} rejected: {reason}")
            }
            ObiError::ClusterMember(o) => {
                write!(f, "object {o} is a cluster member and cannot be individually updated")
            }
            ObiError::NotReplicated(o) => write!(f, "object {o} has no local replica"),
            ObiError::StaleProvider(o) => write!(f, "provider for {o} is stale"),
            ObiError::MovedMaster { object, to } => {
                write!(f, "mastership of {object} moved to site {to}")
            }
            ObiError::Application(m) => write!(f, "application error: {m}"),
            ObiError::Storage(m) => write!(f, "storage error: {m}"),
            ObiError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for ObiError {}

impl ObiError {
    /// True when the failure is a connectivity problem that may heal, i.e.
    /// the cases the paper says applications should survive by working on
    /// local replicas.
    pub fn is_connectivity(&self) -> bool {
        matches!(
            self,
            ObiError::SiteUnreachable(_)
                | ObiError::Disconnected { .. }
                | ObiError::MessageLost { .. }
                | ObiError::Timeout { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjId, SiteId};

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let errs: Vec<ObiError> = vec![
            ObiError::SiteUnreachable(SiteId::new(1)),
            ObiError::NameNotBound("root".into()),
            ObiError::NoSuchObject(ObjId::new(SiteId::new(1), 2)),
            ObiError::Internal("oops".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.ends_with('.'), "{s}");
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("site"));
        }
    }

    #[test]
    fn connectivity_classification() {
        let s1 = SiteId::new(1);
        let s2 = SiteId::new(2);
        assert!(ObiError::SiteUnreachable(s1).is_connectivity());
        assert!(ObiError::Disconnected { from: s1, to: s2 }.is_connectivity());
        assert!(ObiError::MessageLost { from: s1, to: s2 }.is_connectivity());
        assert!(ObiError::Timeout { to: s2 }.is_connectivity());
        assert!(!ObiError::NameNotBound("x".into()).is_connectivity());
        assert!(!ObiError::NoSuchObject(ObjId::new(s1, 0)).is_connectivity());
        // A moved master is a definitive answer from a live peer, not a
        // connectivity fault: the caller re-targets instead of backing off.
        assert!(!ObiError::MovedMaster {
            object: ObjId::new(s1, 0),
            to: s2
        }
        .is_connectivity());
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: Send + Sync + 'static + std::error::Error>() {}
        assert_bounds::<ObiError>();
    }
}

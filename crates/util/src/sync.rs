//! Workspace-wide lock facade.
//!
//! Every OBIWAN crate takes its `Mutex`/`RwLock` from here instead of from
//! `parking_lot` directly (`obiwan-lint` has no rule for this, but the
//! convention is load-bearing: it is what lets one feature flag swap the
//! whole workspace's locks).
//!
//! * Default build: zero-cost re-exports of the `parking_lot` types.
//! * With `feature = "lockcheck"`: the instrumented types from
//!   [`crate::lockcheck`], which record a per-thread held-set and a global
//!   acquisition-order graph and report lock-order inversions (potential
//!   deadlocks) at acquire time.
//!
//! The root package enables `lockcheck` from its dev-dependencies, so every
//! `cargo test` run — unit, integration, chaos — executes under the
//! detector, while `cargo build --release` never compiles it in.

#[cfg(feature = "lockcheck")]
pub use crate::lockcheck::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "lockcheck"))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use crate::lockcheck::{violations as lock_order_violations, Violation};

/// Whether this build routes the workspace's locks through the lock-order
/// detector. Tests use this to skip (or insist on) detector assertions
/// instead of guessing from features of other crates.
pub const fn lockcheck_enabled() -> bool {
    cfg!(feature = "lockcheck")
}

/// Panics if any lock-order inversion has been recorded in this process.
///
/// Suites call this at the end of a test. It is meaningful only when
/// [`lockcheck_enabled`] is true (otherwise the uninstrumented locks record
/// nothing and it trivially passes), and it is process-global: do not mix a
/// deliberately-seeded inversion and a cleanliness assertion in one test
/// binary.
pub fn assert_no_lock_order_violations() {
    crate::lockcheck::assert_no_violations();
}

/// Asserts every held → acquired lock edge the runtime detector has
/// observed between *library* sites appears in the committed static lock
/// graph (`LOCK_GRAPH.json` at the workspace root, exported by
/// `obiwan-lint --emit-lock-graph`).
///
/// This is the runtime ⊆ static cross-check: the static analysis claims to
/// over-approximate every ordering the library can exhibit, and the chaos /
/// integration suites end by holding it to that claim. Two edge families
/// are exempt by construction:
///
/// * edges with either site outside the statically analyzed scope — test
///   binaries and benches create their own locks (including deliberately
///   seeded inversions in `tests/lockcheck_detector.rs`), and the graph
///   only covers `crates/*/src` and `src/`, minus `crates/bench` and
///   `crates/lint` (see `is_lib_rel` in the lint crate);
/// * same-site edges — one textual site acquiring two sibling locks (the
///   [`lock_many`] loop). The static graph records the site but never a
///   self-edge, so these only require the site itself to be known.
///
/// Like [`assert_no_lock_order_violations`], this is meaningful only when
/// [`lockcheck_enabled`] is true; otherwise no edges were recorded and it
/// trivially passes.
pub fn assert_observed_edges_in_static_graph() {
    let observed = crate::lockcheck::observed_edges();
    if observed.is_empty() {
        return;
    }
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../LOCK_GRAPH.json");
    let graph = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path}: {e}; regenerate with \
             `cargo run -p obiwan-lint -- --emit-lock-graph LOCK_GRAPH.json`"
        )
    });

    // The export is one `{"site": "file:line", ...}` / `{"edge": "a -> b",
    // ...}` object per line precisely so consumers can use plain string
    // extraction instead of a vendored JSON parser.
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let rest = &line[line.find(&format!("\"{key}\": \""))? + key.len() + 5..];
        rest.split('"').next()
    }
    let mut sites = std::collections::HashSet::new();
    let mut edges = std::collections::HashSet::new();
    for line in graph.lines() {
        if let Some(s) = field(line, "site") {
            sites.insert(s.to_string());
        }
        if let Some(e) = field(line, "edge") {
            edges.insert(e.to_string());
        }
    }

    // Mirrors `is_lib_rel` in `crates/lint/src/lockgraph.rs`.
    fn in_static_scope(site: &str) -> bool {
        let file = site.rsplit_once(':').map_or(site, |(f, _)| f);
        ((file.starts_with("crates/") && file.contains("/src/")) || file.starts_with("src/"))
            && !file.starts_with("crates/bench/")
            && !file.starts_with("crates/lint/")
    }

    let mut missing = Vec::new();
    for (held, acquired) in observed {
        if !in_static_scope(&held) || !in_static_scope(&acquired) {
            continue;
        }
        if held == acquired {
            if !sites.contains(&held) {
                missing.push(format!("{held} (same-site sibling acquisition, site unknown)"));
            }
            continue;
        }
        let key = format!("{held} -> {acquired}");
        if !edges.contains(&key) {
            missing.push(key);
        }
    }
    if !missing.is_empty() {
        panic!(
            "{} runtime lock edge(s) missing from the static graph ({path}):\n  {}\n\
             either the static analysis lost an edge (fix crates/lint) or the \
             committed graph is stale (regenerate with \
             `cargo run -p obiwan-lint -- --emit-lock-graph LOCK_GRAPH.json`)",
            missing.len(),
            missing.join("\n  ")
        );
    }
}

/// Write-locks two locks from the same indexed family (e.g. two shards of a
/// striped table) in **index order**, returning the guards in argument
/// order.
///
/// This is the only sanctioned way to hold two sibling locks at once: every
/// caller acquires in ascending index order, so the lockcheck graph (and the
/// `single-shard-guard` lint rule) stay clean. The indices must differ — the
/// same index would self-deadlock.
pub fn lock_pair<'a, T>(
    (ia, a): (usize, &'a RwLock<T>),
    (ib, b): (usize, &'a RwLock<T>),
) -> (RwLockWriteGuard<'a, T>, RwLockWriteGuard<'a, T>) {
    assert_ne!(ia, ib, "lock_pair needs two distinct indices");
    // The two branches acquire a/b in opposite textual order on purpose:
    // the `ia < ib` comparison makes the runtime order always
    // ascending-by-index, which a name-based analysis cannot see.
    if ia < ib {
        // lint:allow(lock-order-cycle) runtime order is index-ascending by the branch condition above
        let ga = a.write();
        let gb = b.write();
        (ga, gb)
    } else {
        let gb = b.write();
        let ga = a.write();
        (ga, gb)
    }
}

/// Write-locks every lock in `locks` in slice (= index) order.
///
/// The whole-family counterpart of [`lock_pair`], for stop-the-world
/// operations over a striped structure (GC, eviction sweeps). Because every
/// multi-lock path goes through these helpers with the same ascending order,
/// no inversion can form against the single-shard fast paths.
pub fn lock_many<T>(locks: &[RwLock<T>]) -> Vec<RwLockWriteGuard<'_, T>> {
    locks.iter().map(|l| l.write()).collect()
}

//! Workspace-wide lock facade.
//!
//! Every OBIWAN crate takes its `Mutex`/`RwLock` from here instead of from
//! `parking_lot` directly (`obiwan-lint` has no rule for this, but the
//! convention is load-bearing: it is what lets one feature flag swap the
//! whole workspace's locks).
//!
//! * Default build: zero-cost re-exports of the `parking_lot` types.
//! * With `feature = "lockcheck"`: the instrumented types from
//!   [`crate::lockcheck`], which record a per-thread held-set and a global
//!   acquisition-order graph and report lock-order inversions (potential
//!   deadlocks) at acquire time.
//!
//! The root package enables `lockcheck` from its dev-dependencies, so every
//! `cargo test` run — unit, integration, chaos — executes under the
//! detector, while `cargo build --release` never compiles it in.

#[cfg(feature = "lockcheck")]
pub use crate::lockcheck::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(feature = "lockcheck"))]
pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub use crate::lockcheck::{violations as lock_order_violations, Violation};

/// Whether this build routes the workspace's locks through the lock-order
/// detector. Tests use this to skip (or insist on) detector assertions
/// instead of guessing from features of other crates.
pub const fn lockcheck_enabled() -> bool {
    cfg!(feature = "lockcheck")
}

/// Panics if any lock-order inversion has been recorded in this process.
///
/// Suites call this at the end of a test. It is meaningful only when
/// [`lockcheck_enabled`] is true (otherwise the uninstrumented locks record
/// nothing and it trivially passes), and it is process-global: do not mix a
/// deliberately-seeded inversion and a cleanliness assertion in one test
/// binary.
pub fn assert_no_lock_order_violations() {
    crate::lockcheck::assert_no_violations();
}

/// Write-locks two locks from the same indexed family (e.g. two shards of a
/// striped table) in **index order**, returning the guards in argument
/// order.
///
/// This is the only sanctioned way to hold two sibling locks at once: every
/// caller acquires in ascending index order, so the lockcheck graph (and the
/// `single-shard-guard` lint rule) stay clean. The indices must differ — the
/// same index would self-deadlock.
pub fn lock_pair<'a, T>(
    (ia, a): (usize, &'a RwLock<T>),
    (ib, b): (usize, &'a RwLock<T>),
) -> (RwLockWriteGuard<'a, T>, RwLockWriteGuard<'a, T>) {
    assert_ne!(ia, ib, "lock_pair needs two distinct indices");
    if ia < ib {
        let ga = a.write();
        let gb = b.write();
        (ga, gb)
    } else {
        let gb = b.write();
        let ga = a.write();
        (ga, gb)
    }
}

/// Write-locks every lock in `locks` in slice (= index) order.
///
/// The whole-family counterpart of [`lock_pair`], for stop-the-world
/// operations over a striped structure (GC, eviction sweeps). Because every
/// multi-lock path goes through these helpers with the same ascending order,
/// no inversion can form against the single-shard fast paths.
pub fn lock_many<T>(locks: &[RwLock<T>]) -> Vec<RwLockWriteGuard<'_, T>> {
    locks.iter().map(|l| l.write()).collect()
}

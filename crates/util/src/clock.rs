//! Virtual and hybrid clocks, and the calibrated cost model.
//!
//! OBIWAN's evaluation ran on a 10 Mb/s LAN of Pentium II/III machines. We
//! cannot reproduce those absolute numbers, so time is accounted through a
//! [`Clock`] that supports two modes:
//!
//! * [`ClockMode::VirtualOnly`] — fully deterministic. Network *and* CPU
//!   costs are charged from a [`CostModel`]; identical runs yield identical
//!   timings. Used by tests and by the figure-regeneration harness.
//! * [`ClockMode::Hybrid`] — CPU time is real wall-clock time, network time
//!   is charged virtually from the link model. Used by Criterion benches
//!   where real serialization/dispatch cost matters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a [`Clock`] combines real and virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// All costs are charged virtually; runs are deterministic.
    #[default]
    VirtualOnly,
    /// Real elapsed time plus virtually charged network time.
    Hybrid,
}

/// A monotonically increasing clock combining virtual charges with optional
/// real elapsed time.
///
/// The clock is cheaply cloneable (`Arc` inside) so every component of a
/// simulated world shares the same notion of time.
///
/// # Examples
///
/// ```
/// use obiwan_util::{Clock, ClockMode};
/// use std::time::Duration;
///
/// let clock = Clock::new(ClockMode::VirtualOnly);
/// clock.charge(Duration::from_micros(3));
/// assert_eq!(clock.elapsed(), Duration::from_micros(3));
/// ```
#[derive(Debug, Clone)]
pub struct Clock {
    inner: Arc<ClockInner>,
}

#[derive(Debug)]
struct ClockInner {
    mode: ClockMode,
    virtual_nanos: AtomicU64,
    start: Instant,
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new(ClockMode::VirtualOnly)
    }
}

impl Clock {
    /// Creates a clock in the given mode, starting at zero.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            inner: Arc::new(ClockInner {
                mode,
                virtual_nanos: AtomicU64::new(0),
                start: Instant::now(),
            }),
        }
    }

    /// The mode this clock was created with.
    pub fn mode(&self) -> ClockMode {
        self.inner.mode
    }

    /// Charges `d` of virtual time (network transfer, modeled CPU cost).
    pub fn charge(&self, d: Duration) {
        self.charge_nanos(d.as_nanos() as u64);
    }

    /// Charges `nanos` nanoseconds of virtual time.
    pub fn charge_nanos(&self, nanos: u64) {
        self.inner.virtual_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Charges a modeled CPU cost. In [`ClockMode::Hybrid`] this is a no-op
    /// because real CPU time is already flowing; in
    /// [`ClockMode::VirtualOnly`] the cost is charged virtually.
    pub fn charge_cpu(&self, d: Duration) {
        if self.inner.mode == ClockMode::VirtualOnly {
            self.charge(d);
        }
    }

    /// Virtual nanoseconds charged so far.
    pub fn virtual_nanos(&self) -> u64 {
        self.inner.virtual_nanos.load(Ordering::Relaxed)
    }

    /// Total elapsed time: virtual charges plus (in hybrid mode) real time.
    pub fn elapsed(&self) -> Duration {
        let v = Duration::from_nanos(self.virtual_nanos());
        match self.inner.mode {
            ClockMode::VirtualOnly => v,
            ClockMode::Hybrid => v + self.inner.start.elapsed(),
        }
    }

    /// Resets the virtual component (and the real epoch) to zero.
    ///
    /// Only meaningful between experiment repetitions; outstanding clones
    /// observe the reset too since state is shared.
    pub fn reset(&self) {
        self.inner.virtual_nanos.store(0, Ordering::Relaxed);
    }
}

/// Calibrated per-operation CPU costs, used in [`ClockMode::VirtualOnly`].
///
/// The defaults are calibrated to the constants the paper reports for its
/// testbed (§4.1): a local method invocation costs 2 µs and a remote method
/// invocation on the 10 Mb/s LAN costs 2.8 ms round trip. Serialization and
/// proxy-creation costs are derived from the step heights visible in the
/// paper's Figures 5 and 6.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of one local method invocation (paper: 2 µs).
    pub lmi: Duration,
    /// Fixed CPU cost of issuing/dispatching one remote call, *excluding*
    /// network latency and transfer (stub + skeleton work).
    pub rmi_dispatch: Duration,
    /// Per-byte serialization cost (marshalling object state).
    pub serialize_per_byte: Duration,
    /// Fixed per-object cost of creating a replica from wire state.
    pub replica_create: Duration,
    /// Cost of creating one proxy-in/proxy-out pair (allocation plus
    /// registration on both sites).
    pub proxy_pair_create: Duration,
    /// Fractional extra pair cost per object co-serialized in the same
    /// batch, modelling the superlinear behaviour of Java serialization's
    /// handle tracking on large object graphs (the effect behind the
    /// paper's observation that replicating 1000 objects per step "is not
    /// efficient because of the high cost of creation and transference of
    /// the corresponding replicas and proxy-out/proxy-in pairs", §4.2).
    pub pair_batch_penalty: f64,
    /// Cost of one reference swizzle (`update_member`).
    pub swizzle: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_testbed()
    }
}

impl CostModel {
    /// The cost model calibrated to the paper's testbed (§4).
    pub fn paper_testbed() -> Self {
        CostModel {
            lmi: Duration::from_micros(2),
            rmi_dispatch: Duration::from_micros(700),
            serialize_per_byte: Duration::from_nanos(25),
            replica_create: Duration::from_micros(120),
            // Creating a proxy pair in the original meant exporting a fresh
            // java.rmi UnicastRemoteObject — a multi-millisecond affair on
            // the paper's JDK/testbed (consistent with the per-object step
            // heights of its Figure 5).
            proxy_pair_create: Duration::from_millis(2),
            pair_batch_penalty: 1.0 / 2000.0,
            swizzle: Duration::from_nanos(300),
        }
    }

    /// A zero-cost model: only network physics are charged. Useful in tests
    /// isolating protocol behaviour from the cost model.
    pub fn free() -> Self {
        CostModel {
            lmi: Duration::ZERO,
            rmi_dispatch: Duration::ZERO,
            serialize_per_byte: Duration::ZERO,
            replica_create: Duration::ZERO,
            proxy_pair_create: Duration::ZERO,
            pair_batch_penalty: 0.0,
            swizzle: Duration::ZERO,
        }
    }

    /// Total serialization cost for `bytes` bytes of object state.
    pub fn serialize(&self, bytes: usize) -> Duration {
        self.serialize_per_byte * bytes as u32
    }

    /// Cost of creating `pairs` proxy pairs as part of a batch that
    /// serialized `batch_objects` objects together. The per-pair cost grows
    /// mildly with batch size (see [`CostModel::pair_batch_penalty`]).
    pub fn proxy_pairs(&self, pairs: usize, batch_objects: usize) -> Duration {
        let base = self.proxy_pair_create * pairs as u32;
        base + base.mul_f64(batch_objects as f64 * self.pair_batch_penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accumulates_charges() {
        let c = Clock::new(ClockMode::VirtualOnly);
        c.charge(Duration::from_micros(10));
        c.charge_nanos(500);
        assert_eq!(c.virtual_nanos(), 10_500);
        assert_eq!(c.elapsed(), Duration::from_nanos(10_500));
    }

    #[test]
    fn clones_share_state() {
        let c = Clock::new(ClockMode::VirtualOnly);
        let c2 = c.clone();
        c2.charge_nanos(42);
        assert_eq!(c.virtual_nanos(), 42);
        c.reset();
        assert_eq!(c2.virtual_nanos(), 0);
    }

    #[test]
    fn charge_cpu_is_noop_in_hybrid_mode() {
        let c = Clock::new(ClockMode::Hybrid);
        c.charge_cpu(Duration::from_secs(100));
        assert_eq!(c.virtual_nanos(), 0);
        // Network charges still count.
        c.charge(Duration::from_micros(5));
        assert_eq!(c.virtual_nanos(), 5_000);
    }

    #[test]
    fn hybrid_elapsed_includes_real_time() {
        let c = Clock::new(ClockMode::Hybrid);
        c.charge(Duration::from_millis(1));
        // Real component is >= 0, so elapsed >= the charged 1 ms.
        assert!(c.elapsed() >= Duration::from_millis(1));
    }

    #[test]
    fn paper_testbed_matches_reported_constants() {
        let m = CostModel::paper_testbed();
        assert_eq!(m.lmi, Duration::from_micros(2));
        // RMI dispatch alone is well under the 2.8 ms round trip; the rest
        // comes from network latency in the link model.
        assert!(m.rmi_dispatch < Duration::from_millis(1));
    }

    #[test]
    fn serialize_cost_scales_linearly() {
        let m = CostModel::paper_testbed();
        assert_eq!(m.serialize(2000), m.serialize(1000) * 2);
        assert_eq!(CostModel::free().serialize(1 << 20), Duration::ZERO);
    }

    #[test]
    fn pair_cost_is_superlinear_in_batch_size() {
        let m = CostModel::paper_testbed();
        // Per-pair cost in a batch of 1000 exceeds 100 batches of 10.
        let big = m.proxy_pairs(1000, 1000);
        let small = m.proxy_pairs(10, 10) * 100;
        assert!(big > small, "{big:?} !> {small:?}");
        // A single pair in a large cluster batch stays cheap.
        let cluster = m.proxy_pairs(1, 1000);
        assert!(cluster < m.proxy_pairs(10, 10));
        // The free model charges nothing.
        assert_eq!(CostModel::free().proxy_pairs(1000, 1000), Duration::ZERO);
    }
}

//! Shared foundation types for the OBIWAN platform.
//!
//! This crate contains the small, dependency-free vocabulary used by every
//! other OBIWAN crate:
//!
//! * [`ids`] — strongly typed identifiers for sites, objects, replicas and
//!   in-flight requests ([`SiteId`], [`ObjId`], …).
//! * [`error`] — the platform-wide [`ObiError`] type.
//! * [`clock`] — virtual/hybrid clocks used by the simulated network and the
//!   benchmark harness ([`Clock`], [`CostModel`]).
//! * [`metrics`] — lightweight counters recording messages, bytes, faults and
//!   replicas ([`Metrics`]).
//! * [`histogram`] — a log-bucketed latency [`Histogram`] for
//!   distribution-grade reporting.
//! * [`rng`] — a tiny deterministic PRNG for reproducible workloads.
//! * [`sync`] — the workspace lock facade (`Mutex`/`RwLock`); with
//!   `feature = "lockcheck"` the locks are instrumented by [`lockcheck`],
//!   a runtime lock-order (potential-deadlock) detector.
//! * [`trace`] — a feature-gated span tracer (`feature = "trace"`): named,
//!   virtual-clock-timestamped spans recorded into a process-global ring
//!   buffer, compiled to no-ops when the feature is off.
//!
//! # Examples
//!
//! ```
//! use obiwan_util::{SiteId, ObjId, Clock, ClockMode};
//!
//! let site = SiteId::new(1);
//! let obj = ObjId::new(site, 42);
//! assert_eq!(obj.site(), site);
//!
//! let clock = Clock::new(ClockMode::VirtualOnly);
//! clock.charge_nanos(1_500);
//! assert_eq!(clock.virtual_nanos(), 1_500);
//! ```

pub mod clock;
pub mod error;
pub mod histogram;
pub mod ids;
pub mod lockcheck;
pub mod metrics;
pub mod rng;
pub mod sync;
pub mod trace;

pub use clock::{Clock, ClockMode, CostModel};
pub use error::{ObiError, Result};
pub use histogram::Histogram;
pub use ids::{ClusterId, ObjId, ReplicaId, RequestId, SiteId};
pub use metrics::{LatencyKind, LatencySnapshot, Metrics, MetricsSnapshot};
pub use rng::DetRng;
pub use trace::{SpanEvent, SpanGuard};

//! Deterministic pseudo-randomness for reproducible workloads.
//!
//! The network simulator (jitter, loss) and the workload generators need
//! randomness that is stable across runs and platforms. [`DetRng`] is a
//! small, fast SplitMix64 generator; it is *not* cryptographically secure
//! and is not meant to be.

/// A deterministic SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use obiwan_util::DetRng;
/// let mut a = DetRng::new(7);
/// let mut b = DetRng::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl Default for DetRng {
    fn default() -> Self {
        DetRng::new(0x0BEE_5EED)
    }
}

impl DetRng {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire-style bounded sampling without bias for our purposes
        // (the simulator tolerates the negligible modulo bias for small
        // bounds, but widening multiply keeps it cheap and near-uniform).
        let x = self.next_u64();
        ((x as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "lo must not exceed hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fills `buf` with deterministic bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(123);
        let mut b = DetRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(10) < 10);
            let v = r.next_range(5, 7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn f64_in_unit_interval_and_chance_extremes() {
        let mut r = DetRng::new(4);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fill_bytes_is_deterministic_and_covers_buffer() {
        let mut a = DetRng::new(77);
        let mut b = DetRng::new(77);
        let mut ba = [0u8; 13];
        let mut bb = [0u8; 13];
        a.fill_bytes(&mut ba);
        b.fill_bytes(&mut bb);
        assert_eq!(ba, bb);
        assert!(ba.iter().any(|&x| x != 0));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).next_below(0);
    }
}

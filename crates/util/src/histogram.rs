//! A small log-bucketed latency histogram.
//!
//! Used by the benchmark harness to report invocation-latency
//! distributions (medians, tails) without storing every sample. Buckets
//! grow geometrically (~7% per bucket), giving ≤ 4% quantile error across
//! nanoseconds to minutes — plenty for figure-grade reporting.

use std::time::Duration;

const BUCKETS: usize = 512;
// Each bucket spans ×2^(1/10) ≈ ×1.072; 512 buckets cover ~10^15 ns.
const BUCKETS_PER_DOUBLING: f64 = 10.0;

/// A fixed-size, log-bucketed histogram of [`Duration`] samples.
///
/// # Examples
///
/// ```
/// use obiwan_util::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 4);
/// assert!(h.quantile(0.5) >= Duration::from_millis(1));
/// assert!(h.max() >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: Duration,
    max: Duration,
    sum: Duration,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: Duration::MAX,
            max: Duration::ZERO,
            sum: Duration::ZERO,
        }
    }

    fn bucket_of(d: Duration) -> usize {
        let nanos = d.as_nanos().max(1) as f64;
        let idx = (nanos.log2() * BUCKETS_PER_DOUBLING).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    fn bucket_upper(idx: usize) -> Duration {
        let nanos = 2f64.powf((idx as f64 + 1.0) / BUCKETS_PER_DOUBLING);
        Duration::from_nanos(nanos as u64)
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.counts[Self::bucket_of(d)] += 1;
        self.total += 1;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.sum += d;
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Arithmetic mean (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            self.sum / self.total as u32
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), as an upper bound of the bucket
    /// holding it. `quantile(0.5)` is the median, `quantile(0.99)` the p99.
    ///
    /// Exact extremes are returned for `q = 0` and `q = 1`.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.is_empty() {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if !other.is_empty() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
            self.sum += other.sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn single_sample_dominates_all_stats() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(7));
        assert_eq!(h.len(), 1);
        assert_eq!(h.min(), Duration::from_micros(7));
        assert_eq!(h.max(), Duration::from_micros(7));
        assert_eq!(h.mean(), Duration::from_micros(7));
        assert_eq!(h.quantile(0.5), Duration::from_micros(7));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90);
        assert!(p90 <= p99);
        assert!(p99 <= h.max());
        // ~7% bucket resolution around the true median of 500 µs.
        let med_us = p50.as_micros() as f64;
        assert!((450.0..=560.0).contains(&med_us), "median {med_us} µs");
    }

    #[test]
    fn bimodal_distribution_shows_the_tail() {
        // 99 fast (2 µs) + 1 slow (25 ms): the paper's incremental-walk
        // latency profile.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(2));
        }
        h.record(Duration::from_millis(25));
        assert!(h.quantile(0.5) < Duration::from_micros(3));
        assert!(h.quantile(1.0) >= Duration::from_millis(25));
        assert!(h.mean() > Duration::from_micros(200));
    }

    #[test]
    fn merge_combines_totals_and_extremes() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(1));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min(), Duration::from_micros(1));
        assert_eq!(a.max(), Duration::from_millis(1));
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.len(), before.len());
        assert_eq!(a.max(), before.max());
    }

    #[test]
    fn extreme_durations_do_not_panic() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(86_400));
        assert_eq!(h.len(), 2);
        assert!(h.quantile(0.9) <= h.max());
    }
}

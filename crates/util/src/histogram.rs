//! A small log-bucketed latency histogram.
//!
//! Used by the benchmark harness to report invocation-latency
//! distributions (medians, tails) without storing every sample. Buckets
//! grow geometrically (~7% per bucket), giving ≤ 4% quantile error across
//! nanoseconds to minutes — plenty for figure-grade reporting.

use std::time::Duration;

const BUCKETS: usize = 512;
// Each bucket spans ×2^(1/10) ≈ ×1.072; 512 buckets cover ~10^15 ns.
const BUCKETS_PER_DOUBLING: f64 = 10.0;

/// A fixed-size, log-bucketed histogram of [`Duration`] samples.
///
/// # Examples
///
/// ```
/// use obiwan_util::Histogram;
/// use std::time::Duration;
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 100] {
///     h.record(Duration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 4);
/// assert!(h.quantile(0.5) >= Duration::from_millis(1));
/// assert!(h.max() >= Duration::from_millis(100));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    min: Duration,
    max: Duration,
    sum: Duration,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            total: 0,
            min: Duration::MAX,
            max: Duration::ZERO,
            sum: Duration::ZERO,
        }
    }

    fn bucket_of(d: Duration) -> usize {
        let nanos = d.as_nanos().max(1) as f64;
        let idx = (nanos.log2() * BUCKETS_PER_DOUBLING).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    fn bucket_upper(idx: usize) -> Duration {
        let nanos = 2f64.powf((idx as f64 + 1.0) / BUCKETS_PER_DOUBLING);
        Duration::from_nanos(nanos as u64)
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        self.record_n(d, 1);
    }

    /// Records `n` identical samples in one update — how pre-aggregated
    /// data (per-bucket exports, repeated constant-cost operations) enters
    /// without `n` separate calls. `n = 0` is a no-op.
    pub fn record_n(&mut self, d: Duration, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(d)] += n;
        self.total += n;
        self.min = self.min.min(d);
        self.max = self.max.max(d);
        self.sum += duration_from_nanos_u128(d.as_nanos().saturating_mul(n as u128));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest sample (zero when empty).
    pub fn min(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Arithmetic mean (zero when empty).
    ///
    /// The division happens in `u128` nanoseconds: a `Duration` divide
    /// would truncate the sample count to `u32`, which wraps (and can even
    /// hit zero, panicking) once `total` exceeds `u32::MAX`.
    pub fn mean(&self) -> Duration {
        if self.is_empty() {
            Duration::ZERO
        } else {
            duration_from_nanos_u128(self.sum.as_nanos() / self.total as u128)
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), interpolated by rank position
    /// inside the bucket holding it. `quantile(0.5)` is the median,
    /// `quantile(0.99)` the p99.
    ///
    /// The bucket's span is first clipped to the observed `[min, max]`, so
    /// a distribution narrower than one ~7% bucket still resolves distinct
    /// quantiles instead of collapsing every `q` onto the bucket's upper
    /// bound (clamped to `max`) — the failure mode that made 20-sample
    /// latency reports claim `p50 == p99`.
    ///
    /// Exact extremes are returned for `q = 0` and `q = 1`.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.is_empty() {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if seen + count >= rank {
                let lower = if idx == 0 {
                    Duration::ZERO
                } else {
                    Self::bucket_upper(idx - 1)
                };
                let lo = lower.max(self.min).as_nanos() as f64;
                let hi = Self::bucket_upper(idx).min(self.max).as_nanos() as f64;
                let frac = (rank - seen) as f64 / count as f64;
                let est = lo + (hi - lo).max(0.0) * frac;
                return duration_from_nanos_u128(est as u128)
                    .clamp(self.min, self.max);
            }
            seen += count;
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if !other.is_empty() {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
            self.sum += other.sum;
        }
    }
}

/// Builds a `Duration` from `u128` nanoseconds, saturating at the
/// representable maximum instead of overflowing `Duration::from_nanos`'s
/// `u64` argument.
fn duration_from_nanos_u128(nanos: u128) -> Duration {
    let secs = (nanos / 1_000_000_000).min(u64::MAX as u128) as u64;
    Duration::new(secs, (nanos % 1_000_000_000) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn single_sample_dominates_all_stats() {
        let mut h = Histogram::new();
        h.record(Duration::from_micros(7));
        assert_eq!(h.len(), 1);
        assert_eq!(h.min(), Duration::from_micros(7));
        assert_eq!(h.max(), Duration::from_micros(7));
        assert_eq!(h.mean(), Duration::from_micros(7));
        assert_eq!(h.quantile(0.5), Duration::from_micros(7));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(Duration::from_micros(i));
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90);
        assert!(p90 <= p99);
        assert!(p99 <= h.max());
        // ~7% bucket resolution around the true median of 500 µs.
        let med_us = p50.as_micros() as f64;
        assert!((450.0..=560.0).contains(&med_us), "median {med_us} µs");
    }

    #[test]
    fn bimodal_distribution_shows_the_tail() {
        // 99 fast (2 µs) + 1 slow (25 ms): the paper's incremental-walk
        // latency profile.
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(Duration::from_micros(2));
        }
        h.record(Duration::from_millis(25));
        assert!(h.quantile(0.5) < Duration::from_micros(3));
        assert!(h.quantile(1.0) >= Duration::from_millis(25));
        assert!(h.mean() > Duration::from_micros(200));
    }

    #[test]
    fn merge_combines_totals_and_extremes() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(1));
        let mut b = Histogram::new();
        b.record(Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.min(), Duration::from_micros(1));
        assert_eq!(a.max(), Duration::from_millis(1));
        // Merging an empty histogram is a no-op.
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a.len(), before.len());
        assert_eq!(a.max(), before.max());
    }

    #[test]
    fn extreme_durations_do_not_panic() {
        let mut h = Histogram::new();
        h.record(Duration::ZERO);
        h.record(Duration::from_secs(86_400));
        assert_eq!(h.len(), 2);
        assert!(h.quantile(0.9) <= h.max());
    }

    /// Regression: `mean` used `sum / total as u32`, which wraps the
    /// sample count once `total > u32::MAX` — for `total = 5 × 2^30` the
    /// wrapped divisor made the mean ~7× too large (and a total that is an
    /// exact multiple of 2^32 divided by zero, panicking).
    #[test]
    fn mean_survives_totals_beyond_u32() {
        let mut h = Histogram::new();
        let total = 5u64 << 30; // > u32::MAX
        h.record_n(Duration::from_nanos(1), total);
        assert_eq!(h.len(), total);
        assert_eq!(h.mean(), Duration::from_nanos(1));
        // Exact multiple of 2^32: the old `as u32` divisor was zero here.
        let mut h = Histogram::new();
        h.record_n(Duration::from_nanos(2), 1u64 << 32);
        assert_eq!(h.mean(), Duration::from_nanos(2));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..7 {
            a.record(Duration::from_micros(3));
        }
        b.record_n(Duration::from_micros(3), 7);
        b.record_n(Duration::from_micros(9), 0); // no-op
        assert_eq!(a.len(), b.len());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
    }

    /// Regression: `quantile` returned the holding bucket's upper bound
    /// clamped to the extremes, so a small sample set narrower than one
    /// ~7% bucket — the shape of a 20-iteration latency benchmark —
    /// reported every quantile as `max`, i.e. `p50 == p99`.
    #[test]
    fn small_sample_quantiles_interpolate_within_a_bucket() {
        // 20 distinct samples inside one log bucket (94.9–101.7 ms).
        let mut h = Histogram::new();
        for i in 0..20u64 {
            h.record(Duration::from_micros(100_000 + i * 75));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 < p99, "p50 {p50:?} must sit below p99 {p99:?}");
        assert!(p50 >= h.min() && p99 <= h.max());
        // The median estimate lands inside the sample spread, not on max.
        assert!(p50 < Duration::from_micros(101_000));
        assert!(p99 > Duration::from_micros(101_000));
    }

    /// Merge-of-many invariants: totals and sums add up, and every
    /// quantile of the merged histogram is bounded by the global extremes.
    #[test]
    fn merge_of_many_preserves_mass_and_bounds_quantiles() {
        let mut parts: Vec<Histogram> = Vec::new();
        let mut global_min = Duration::MAX;
        let mut global_max = Duration::ZERO;
        let mut expect_total = 0u64;
        let mut expect_sum = Duration::ZERO;
        for site in 0..8u64 {
            let mut h = Histogram::new();
            for i in 1..=100u64 {
                // Distinct per-site latency bands: site 0 ~ µs, site 7 ~ ms.
                let d = Duration::from_nanos((site + 1) * 1_000 * i);
                h.record(d);
                global_min = global_min.min(d);
                global_max = global_max.max(d);
                expect_total += 1;
                expect_sum += d;
            }
            parts.push(h);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.len(), expect_total);
        assert_eq!(merged.min(), global_min);
        assert_eq!(merged.max(), global_max);
        // Bucketed sum is exact: merge adds the parts' sums.
        let part_sum: Duration = parts.iter().map(|p| p.sum).sum();
        assert_eq!(merged.sum, part_sum);
        assert_eq!(part_sum, expect_sum);
        // Quantiles are monotone in q and bounded by the global extremes.
        let mut prev = Duration::ZERO;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = merged.quantile(q);
            assert!(v >= global_min, "q={q}: {v:?} < min {global_min:?}");
            assert!(v <= global_max, "q={q}: {v:?} > max {global_max:?}");
            assert!(v >= prev, "q={q}: quantiles must be monotone");
            prev = v;
        }
        // Merging in the other order yields the same distribution.
        let mut reversed = Histogram::new();
        for p in parts.iter().rev() {
            reversed.merge(p);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(merged.quantile(q), reversed.quantile(q));
        }
    }
}

//! Runtime lock-order (potential-deadlock) detection.
//!
//! The classic deadlock recipe is two threads taking the same pair of locks
//! in opposite orders. Waiting for the hang to reproduce under test is
//! hopeless — the window is microseconds wide — so this module detects the
//! *ordering inversion itself*, which is visible on every run, even
//! single-threaded.
//!
//! [`Mutex`] and [`RwLock`] here mirror the `parking_lot` API exactly but
//! instrument every acquisition:
//!
//! * each lock instance is lazily assigned a stable numeric id;
//! * every thread keeps a stack of the locks it currently holds, with the
//!   [`Location`] of each acquisition (captured via `#[track_caller]`);
//! * a global graph records every observed *held → acquired* edge.
//!
//! When acquiring `B` while holding `A` would close a cycle in that graph
//! (i.e. some earlier code path acquired `A`-ish locks while holding `B`),
//! a [`Violation`] naming both call sites is recorded. Violations are
//! *recorded*, not panicked, so the offending test still runs to completion;
//! suites call [`assert_no_violations`] at the end, and targeted tests
//! inspect [`violations`] for the sites they seeded.
//!
//! Non-blocking acquisitions (`try_lock`, `try_read`, `try_write`) push onto
//! the held stack — locks acquired *after* them are still ordered against
//! them — but add no inbound edge themselves, because a `try_` that would
//! block simply fails instead of deadlocking.
//!
//! The types are always compiled (so the detector can test itself in every
//! build); the `lockcheck` feature merely decides whether
//! [`crate::sync`] re-exports these instrumented types or the raw
//! `parking_lot` ones.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// A detected lock-order inversion: two code paths acquire the same pair of
/// locks in opposite orders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Call site of the acquisition that closed the cycle.
    pub site: String,
    /// Call site of the earlier, reverse-order acquisition it conflicts with.
    pub conflicting_site: String,
    /// Full human-readable description (both sites plus the held-lock sites).
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// One observed "acquired `to` while holding `from`" event; the first
/// occurrence is kept so reports name the code path that established the
/// ordering, not the latest repetition.
struct EdgeInfo {
    /// Where the held lock (`from`) had been acquired.
    held_site: &'static Location<'static>,
    /// Where the new lock (`to`) was acquired.
    acquire_site: &'static Location<'static>,
}

#[derive(Default)]
struct OrderState {
    /// `edges[a]` contains `b` iff some thread acquired `b` while holding `a`.
    edges: HashMap<u64, HashMap<u64, EdgeInfo>>,
    /// Ordered pairs already reported, to keep diagnostics non-repetitive.
    reported: HashSet<(u64, u64)>,
    violations: Vec<Violation>,
}

fn state() -> &'static StdMutex<OrderState> {
    static STATE: OnceLock<StdMutex<OrderState>> = OnceLock::new();
    STATE.get_or_init(|| StdMutex::new(OrderState::default()))
}

fn with_state<R>(f: impl FnOnce(&mut OrderState) -> R) -> R {
    // A panicking test thread may have poisoned the std mutex; the graph is
    // append-only bookkeeping, so it is always safe to keep using it.
    let mut guard = state().lock().unwrap_or_else(|e| e.into_inner());
    f(&mut guard)
}

thread_local! {
    /// Stack of (lock id, acquisition site) currently held by this thread.
    static HELD: RefCell<Vec<(u64, &'static Location<'static>)>> =
        const { RefCell::new(Vec::new()) };
}

/// Lock ids start at 1; 0 in a lock's id slot means "not yet assigned".
static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

fn assign_id(slot: &AtomicU64) -> u64 {
    let current = slot.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let fresh = NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(raced) => raced,
    }
}

/// Breadth-first search for a path `from → … → to` in the order graph,
/// returning the node sequence if one exists.
fn find_path(
    edges: &HashMap<u64, HashMap<u64, EdgeInfo>>,
    from: u64,
    to: u64,
) -> Option<Vec<u64>> {
    let mut prev: HashMap<u64, u64> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    let mut seen: HashSet<u64> = HashSet::from([from]);
    while let Some(node) = queue.pop_front() {
        if node == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(&p) = prev.get(&cur) {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        if let Some(next) = edges.get(&node) {
            for &n in next.keys() {
                if seen.insert(n) {
                    prev.insert(n, node);
                    queue.push_back(n);
                }
            }
        }
    }
    None
}

/// Records the edges `held → id` for every currently held lock, reporting a
/// violation for each edge whose reverse direction is already reachable.
fn record_acquire(
    held: &[(u64, &'static Location<'static>)],
    id: u64,
    site: &'static Location<'static>,
) {
    with_state(|st| {
        for &(held_id, held_site) in held {
            if held_id == id {
                // Re-entrant read locks order a lock against itself; that is
                // not an inversion.
                continue;
            }
            // Closing `held_id → id` is a cycle iff `id` already reaches
            // `held_id` through previously observed orderings.
            if let Some(path) = find_path(&st.edges, id, held_id) {
                if st.reported.insert((held_id, id)) {
                    let first_hop = st
                        .edges
                        .get(&path[0])
                        .and_then(|next| next.get(&path[1]));
                    let (rev_acquire, rev_held) = match first_hop {
                        Some(e) => (e.acquire_site, e.held_site),
                        // Unreachable: the path's first hop is an edge in the
                        // map; keep a harmless fallback instead of unwrapping.
                        None => (site, held_site),
                    };
                    let message = format!(
                        "lock-order inversion: lock #{id} acquired at {site} while \
                         holding lock #{held_id} (acquired at {held_site}); the \
                         opposite order was established at {rev_acquire}, which \
                         acquired lock #{} while holding lock #{id} (acquired at \
                         {rev_held})",
                        path[1],
                    );
                    st.violations.push(Violation {
                        site: site.to_string(),
                        conflicting_site: rev_acquire.to_string(),
                        message,
                    });
                }
            }
            st.edges
                .entry(held_id)
                .or_default()
                .entry(id)
                .or_insert(EdgeInfo {
                    held_site,
                    acquire_site: site,
                });
        }
    });
}

/// Called after any successful acquisition. `blocking` is false for the
/// `try_*` variants, which cannot deadlock and therefore add no edges, but
/// still join the held stack so later blocking acquisitions order against
/// them.
fn on_acquire(id: u64, site: &'static Location<'static>, blocking: bool) {
    // `try_with`: a lock acquired during thread-local teardown is simply not
    // instrumented.
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if blocking {
            record_acquire(&held, id, site);
        }
        held.push((id, site));
    });
}

fn on_release(id: u64) {
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(hid, _)| hid == id) {
            held.remove(pos);
        }
    });
}

/// Snapshot of every violation recorded so far, in detection order.
///
/// This clones rather than drains: several tests in one binary can each
/// assert on the global record without stealing each other's entries.
pub fn violations() -> Vec<Violation> {
    with_state(|st| st.violations.clone())
}

/// Snapshot of every held → acquired edge observed so far, as
/// `(held "file:line", acquired "file:line")` pairs, sorted and
/// deduplicated.
///
/// `Location::file()` yields workspace-relative paths for workspace code,
/// the same `file:line` site form the static lock graph exported by
/// `obiwan-lint --emit-lock-graph` uses — which is what lets
/// [`crate::sync::assert_observed_edges_in_static_graph`] compare the two
/// records with plain string equality.
pub fn observed_edges() -> Vec<(String, String)> {
    with_state(|st| {
        let mut out: Vec<(String, String)> = st
            .edges
            .values()
            .flat_map(HashMap::values)
            .map(|e| {
                (
                    format!("{}:{}", e.held_site.file(), e.held_site.line()),
                    format!("{}:{}", e.acquire_site.file(), e.acquire_site.line()),
                )
            })
            .collect();
        out.sort();
        out.dedup();
        out
    })
}

/// Panics with every recorded violation if any lock-order inversion has been
/// observed. Call at the end of an integration/chaos test.
pub fn assert_no_violations() {
    let found = violations();
    if !found.is_empty() {
        let listing: Vec<String> = found.iter().map(|v| v.message.clone()).collect();
        panic!(
            "{} lock-order violation(s) detected:\n{}",
            listing.len(),
            listing.join("\n")
        );
    }
}

/// A mutex with the `parking_lot` API whose acquisitions feed the
/// lock-order graph.
pub struct Mutex<T: ?Sized> {
    id: AtomicU64,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases its held-set entry on
/// drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock_id: u64,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            id: AtomicU64::new(0),
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is free.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let id = assign_id(&self.id);
        let site = Location::caller();
        let inner = self.inner.lock();
        on_acquire(id, site, true);
        MutexGuard { lock_id: id, inner }
    }

    /// Attempts to acquire the mutex without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let id = assign_id(&self.id);
        let site = Location::caller();
        let inner = self.inner.try_lock()?;
        on_acquire(id, site, false);
        Some(MutexGuard { lock_id: id, inner })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        on_release(self.lock_id);
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with the `parking_lot` API whose acquisitions feed
/// the lock-order graph. Read and write acquisitions are ordered under the
/// same lock id: a read/write inversion pair can still deadlock, so the
/// distinction does not matter to the detector.
pub struct RwLock<T: ?Sized> {
    id: AtomicU64,
    inner: parking_lot::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock_id: u64,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock_id: u64,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            id: AtomicU64::new(0),
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let id = assign_id(&self.id);
        let site = Location::caller();
        let inner = self.inner.read();
        on_acquire(id, site, true);
        RwLockReadGuard { lock_id: id, inner }
    }

    /// Acquires exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let id = assign_id(&self.id);
        let site = Location::caller();
        let inner = self.inner.write();
        on_acquire(id, site, true);
        RwLockWriteGuard { lock_id: id, inner }
    }

    /// Attempts shared read access without blocking.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let id = assign_id(&self.id);
        let site = Location::caller();
        let inner = self.inner.try_read()?;
        on_acquire(id, site, false);
        Some(RwLockReadGuard { lock_id: id, inner })
    }

    /// Attempts exclusive write access without blocking.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let id = assign_id(&self.id);
        let site = Location::caller();
        let inner = self.inner.try_write()?;
        on_acquire(id, site, false);
        Some(RwLockWriteGuard { lock_id: id, inner })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        on_release(self.lock_id);
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        on_release(self.lock_id);
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// The global graph is shared across every test in this binary, so tests
    /// never assert "no violations globally"; they assert on violations (or
    /// their absence) involving their own freshly created locks, identified
    /// by call-site line numbers.
    fn violations_mentioning(line: u32) -> Vec<Violation> {
        let needle = format!("{}:{line}:", file!());
        violations()
            .into_iter()
            .filter(|v| v.message.contains(&needle))
            .collect()
    }

    #[test]
    fn nested_consistent_order_is_clean() {
        let a = Mutex::new(0u32);
        let b = Mutex::new(0u32);
        for _ in 0..3 {
            let marker_line = line!() + 1;
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
            assert!(violations_mentioning(marker_line).is_empty());
        }
    }

    #[test]
    fn inversion_is_detected_and_names_both_sites() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));

        let first_line = line!() + 2; // line of the `b.lock()` below
        let ga = a.lock();
        let gb = b.lock();
        drop(gb);
        drop(ga);

        // Opposite order on another thread, as a real deadlock would need.
        let (a2, b2) = (a.clone(), b.clone());
        let second_line = std::thread::spawn(move || {
            let gb = b2.lock();
            let second_line = line!() + 1;
            let ga = a2.lock();
            drop(ga);
            drop(gb);
            second_line
        })
        .join()
        .expect("inversion thread");

        let found = violations_mentioning(second_line);
        assert_eq!(found.len(), 1, "exactly one violation for the seeded pair");
        let v = &found[0];
        // The report names the cycle-closing site and the reverse-order site.
        assert!(v.site.contains(&format!("{}:{second_line}:", file!())));
        assert!(
            v.conflicting_site
                .contains(&format!("{}:{first_line}:", file!())),
            "conflicting site {} should be line {first_line}",
            v.conflicting_site
        );
    }

    #[test]
    fn transitive_cycle_through_three_locks_is_detected() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let c = Mutex::new(());

        // Establish a → b and b → c.
        {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
            let gb = b.lock();
            let gc = c.lock();
            drop(gc);
            drop(gb);
        }
        // c → a closes the 3-cycle even though the pair (c, a) was never
        // taken together before.
        let gc = c.lock();
        let marker_line = line!() + 1;
        let ga = a.lock();
        drop(ga);
        drop(gc);

        assert_eq!(violations_mentioning(marker_line).len(), 1);
    }

    #[test]
    fn successful_try_lock_adds_no_edge() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        // b → a order via try_lock success: pushes held entry but no edge.
        let gb = b.lock();
        let ga = a.try_lock().expect("uncontended try_lock");
        drop(ga);
        drop(gb);
        // a → b blocking order afterwards: would report if try_lock had
        // recorded a b → a edge.
        let ga = a.lock();
        let marker_line = line!() + 1;
        let gb = b.lock();
        drop(gb);
        drop(ga);
        assert!(violations_mentioning(marker_line).is_empty());
    }

    #[test]
    fn rwlock_read_write_inversion_is_detected() {
        let a = RwLock::new(0u32);
        let b = RwLock::new(0u32);
        {
            let ga = a.read();
            let gb = b.write();
            drop(gb);
            drop(ga);
        }
        let gb = b.read();
        let marker_line = line!() + 1;
        let ga = a.write();
        drop(ga);
        drop(gb);
        assert_eq!(violations_mentioning(marker_line).len(), 1);
    }

    #[test]
    fn reentrant_reads_are_not_an_inversion() {
        let a = RwLock::new(());
        let marker_line = line!() + 2;
        let g1 = a.read();
        let g2 = a.read();
        drop(g2);
        drop(g1);
        assert!(violations_mentioning(marker_line).is_empty());
    }

    #[test]
    fn guard_drop_unwinds_held_stack() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        // a alone, fully released, then b alone: no a → b edge, so the
        // reverse order later is clean.
        drop(a.lock());
        drop(b.lock());
        let gb = b.lock();
        let marker_line = line!() + 1;
        let ga = a.lock();
        drop(ga);
        drop(gb);
        assert!(violations_mentioning(marker_line).is_empty());
    }

    #[test]
    fn api_parity_with_parking_lot() {
        // The facade swaps these types in for parking_lot's: exercise the
        // full shared surface.
        let mut m = Mutex::new(5);
        *m.get_mut() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(format!("{m:?}"), "Mutex { data: 6 }");
        assert_eq!(Mutex::from(7).into_inner(), 7);
        assert_eq!(*Mutex::<u32>::default().lock(), 0);

        let mut l = RwLock::new(5);
        *l.get_mut() += 1;
        assert_eq!(*l.read(), 6);
        *l.write() = 8;
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_some());
        assert_eq!(format!("{l:?}"), "RwLock { data: 8 }");
        assert_eq!(RwLock::from(7).into_inner(), 7);
        assert_eq!(*RwLock::<u32>::default().read(), 0);

        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }
}

//! The batched demand pipeline versus demand-by-demand faulting.
//!
//! Measures the real-CPU cost of replicating a 64-object list, and — in
//! both bench and `--test` mode — asserts the headline property of the
//! pipeline: walking the list after `prefetch_batched(batch = 8)` costs at
//! least 4× fewer network round-trips than faulting every node on demand,
//! and a wide fan-out demands all of its frontier in one `GetMany`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use obiwan_bench::workload::payload_list;
use obiwan_bench::ListWorkload;
use obiwan_core::demo::LinkedItem;
use obiwan_core::{ObiValue, ObiWorld, ObjRef, ReplicationMode};

const LIST: usize = 64;
const SIZE: usize = 64;
const BATCH: usize = 8;

fn walk_all(w: &ListWorkload, root: ObjRef) {
    let site = w.world.site(w.consumer);
    let mut cur = root;
    loop {
        let out = site.invoke(cur, "touch", ObiValue::Null).unwrap();
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
}

/// Round-trips spent replicating and walking the whole list on demand.
fn round_trips_demand(w: &ListWorkload) -> u64 {
    let site = w.world.site(w.consumer);
    let before = site.metrics().snapshot();
    let root = site
        .get(&w.head, ReplicationMode::incremental(1))
        .unwrap();
    walk_all(w, root);
    site.metrics().snapshot().since(&before).demand_round_trips
}

/// Round-trips spent with the batched pipeline: one demand for the head,
/// then `prefetch_batched` pulling `BATCH` objects per `GetMany`.
fn round_trips_batched(w: &ListWorkload) -> u64 {
    let site = w.world.site(w.consumer);
    let before = site.metrics().snapshot();
    let root = site
        .get(&w.head, ReplicationMode::incremental(1))
        .unwrap();
    site.prefetch_batched(root, LIST, BATCH).unwrap();
    walk_all(w, root);
    site.metrics().snapshot().since(&before).demand_round_trips
}

fn assert_round_trip_reduction() {
    let demand = round_trips_demand(&payload_list(LIST, SIZE));
    let batched = round_trips_batched(&payload_list(LIST, SIZE));
    assert!(demand >= LIST as u64, "demand walk took {demand} RTs");
    assert!(
        batched * 4 <= demand,
        "batched pipeline took {batched} RTs vs {demand} on demand — \
         less than the required 4x reduction"
    );
}

/// A root with `fan` children on the provider: the whole frontier must be
/// demanded in ONE `GetMany` round-trip instead of `fan`.
fn assert_wide_fanout_is_one_round_trip() {
    let fan = 8usize;
    let mut world = ObiWorld::paper_testbed();
    let consumer = world.add_site("S1");
    let provider = world.add_site("S2");
    let children: Vec<ObjRef> = (0..fan)
        .map(|i| world.site(provider).create(LinkedItem::new(i as i64, "c")))
        .collect();
    let root = {
        let mut item = LinkedItem::new(0, "root");
        item.set_extra(children);
        world.site(provider).create(item)
    };
    world.site(provider).export(root, "root").unwrap();
    let remote = world.site(consumer).lookup("root").unwrap();
    let root = world
        .site(consumer)
        .get(&remote, ReplicationMode::incremental(1))
        .unwrap();
    let before = world.site(consumer).metrics().snapshot();
    let fetched = world
        .site(consumer)
        .prefetch_batched(root, fan, fan)
        .unwrap();
    let spent = world
        .site(consumer)
        .metrics()
        .snapshot()
        .since(&before)
        .demand_round_trips;
    assert_eq!(fetched, fan, "prefetch fetched {fetched} of {fan}");
    assert_eq!(spent, 1, "{fan}-wide frontier took {spent} round-trips");
}

fn bench_demand_pipeline(c: &mut Criterion) {
    // The correctness/efficiency contract holds in --test mode too.
    assert_round_trip_reduction();
    assert_wide_fanout_is_one_round_trip();

    let mut group = c.benchmark_group("demand_pipeline_64");
    group.sample_size(10);
    group.bench_function("demand_by_demand", |b| {
        b.iter_batched(
            || payload_list(LIST, SIZE),
            |w| round_trips_demand(&w),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("batched_8", |b| {
        b.iter_batched(
            || payload_list(LIST, SIZE),
            |w| round_trips_batched(&w),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_demand_pipeline);
criterion_main!(benches);

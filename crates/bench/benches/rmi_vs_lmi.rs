//! Real-CPU microbenchmarks behind Figure 4: one invocation via RMI
//! (marshal, transport, dispatch, unmarshal) vs one invocation via LMI on
//! an existing replica.
//!
//! Criterion measures real wall time, i.e. the implementation cost of each
//! path on this machine; the virtual-time `figures` binary layers the
//! paper's network physics on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obiwan_bench::workload::single_object;
use obiwan_core::{ObiValue, ReplicationMode};

fn bench_invocation_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("invoke");
    group.sample_size(30);

    // RMI: full marshal -> transport -> dispatch -> reply path.
    let w = single_object(64);
    group.bench_function("rmi_single_object", |b| {
        b.iter(|| {
            w.world
                .site(w.consumer)
                .invoke_rmi(&w.object, "index", ObiValue::Null)
                .unwrap()
        })
    });

    // LMI: table lookup + dynamic dispatch on a local replica.
    let w = single_object(64);
    let replica = w
        .world
        .site(w.consumer)
        .get(&w.object, ReplicationMode::incremental(1))
        .unwrap();
    group.bench_function("lmi_replica", |b| {
        b.iter(|| {
            w.world
                .site(w.consumer)
                .invoke(replica, "index", ObiValue::Null)
                .unwrap()
        })
    });

    // LMI on the master itself (no replication involved at all).
    let w = single_object(64);
    group.bench_function("lmi_master", |b| {
        b.iter(|| {
            w.world
                .site(w.provider)
                .invoke(w.master, "index", ObiValue::Null)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_rmi_payload_sizes(c: &mut Criterion) {
    // RMI cost vs *argument* size: the wire does carry the args, so this
    // shows the marshalling component that Figure 4's flat RMI curve hides
    // (its method had no payload arguments).
    let mut group = c.benchmark_group("rmi_arg_size");
    group.sample_size(20);
    for size in [16usize, 1024, 16384] {
        let w = single_object(16);
        let payload = ObiValue::Bytes(bytes::Bytes::from(vec![0u8; size]));
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                // `touch` ignores args; we only exercise marshalling.
                w.world
                    .site(w.consumer)
                    .invoke_rmi(&w.object, "touch", payload.clone())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_invocation_paths, bench_rmi_payload_sizes);
criterion_main!(benches);

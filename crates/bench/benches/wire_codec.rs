//! Throughput of the wire layer — our stand-in for Java serialization,
//! which the paper identifies as "the most significant performance cost"
//! of cluster replication.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use obiwan_util::{ObjId, RequestId, SiteId};
use obiwan_wire::{Decoder, Encoder, Message, ObiValue, ReplicaState};

fn payload_value(size: usize) -> ObiValue {
    ObiValue::Map(vec![
        ("index".into(), ObiValue::I64(7)),
        ("payload".into(), ObiValue::Bytes(Bytes::from(vec![42u8; size]))),
        (
            "next".into(),
            ObiValue::Ref(ObjId::new(SiteId::new(2), 9)),
        ),
    ])
}

fn bench_value_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("value_codec");
    for size in [64usize, 1024, 16384] {
        let v = payload_value(size);
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("encode", size), &v, |b, v| {
            b.iter(|| {
                let mut enc = Encoder::new();
                enc.put_value(v);
                enc.finish()
            })
        });
        let mut enc = Encoder::new();
        enc.put_value(&v);
        let bytes = enc.finish();
        group.bench_with_input(BenchmarkId::new("decode", size), &bytes, |b, bytes| {
            b.iter(|| Decoder::new(bytes).take_value().unwrap())
        });
    }
    group.finish();
}

fn bench_message_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_codec");
    let state = {
        let mut enc = Encoder::new();
        enc.put_value(&payload_value(1024));
        enc.finish()
    };
    let msg = Message::PutRequest {
        request: RequestId::new(SiteId::new(1), 3),
        entries: (0..10)
            .map(|i| ReplicaState {
                id: ObjId::new(SiteId::new(2), i),
                class: "PayloadNode".into(),
                version: i,
                state: state.clone(),
            })
            .collect(),
    };
    let frame = msg.encode();
    group.throughput(Throughput::Bytes(frame.len() as u64));
    group.bench_function("encode_put_10x1k", |b| b.iter(|| msg.encode()));
    group.bench_function("decode_put_10x1k", |b| {
        b.iter(|| Message::decode(&frame).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_value_roundtrip, bench_message_roundtrip);
criterion_main!(benches);

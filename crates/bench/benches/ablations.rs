//! Ablations of the design choices DESIGN.md calls out:
//!
//! * swizzle fast path — invoking through a handle that resolves to a live
//!   slot vs one that still needs a fault;
//! * handle-table resolution — the cost of the slot lookup that replaces
//!   Java's direct references;
//! * proxy GC — mark-and-sweep over spaces of various sizes;
//! * class-registry decode — materializing a replica from wire state.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use obiwan_bench::workload::payload_list;
use obiwan_core::demo::PayloadNode;
use obiwan_core::{ClassRegistry, ObiObject, ObiValue, ObiWorld, ObjRef, ReplicationMode};

fn bench_swizzle_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("swizzle");
    group.sample_size(20);

    // Post-swizzle: handle resolves straight to the replica slot.
    let w = payload_list(2, 64);
    let root = w
        .world
        .site(w.consumer)
        .get(&w.head, ReplicationMode::transitive())
        .unwrap();
    group.bench_function("direct_after_swizzle", |b| {
        b.iter(|| {
            w.world
                .site(w.consumer)
                .invoke(root, "touch", ObiValue::Null)
                .unwrap()
        })
    });

    // Pre-swizzle: every iteration pays a fault (fresh world each time).
    group.bench_function("fault_then_invoke", |b| {
        b.iter_batched(
            || {
                let w = payload_list(2, 64);
                w.world
                    .site(w.consumer)
                    .get(&w.head, ReplicationMode::incremental(1))
                    .unwrap();
                w
            },
            |w| {
                w.world
                    .site(w.consumer)
                    .invoke(ObjRef::new(w.nodes[1].id()), "touch", ObiValue::Null)
                    .unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("gc_mark_sweep");
    group.sample_size(10);
    for n in [100usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter_batched(
                || {
                    // A consumer holding n replicas plus the frontier proxy.
                    let w = payload_list(n, 64);
                    let root = w
                        .world
                        .site(w.consumer)
                        .get(&w.head, ReplicationMode::transitive())
                        .unwrap();
                    w.world.site(w.consumer).add_root(root);
                    w
                },
                |w| w.world.site(w.consumer).collect_garbage(false),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_registry_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("registry_decode");
    let registry = ClassRegistry::new();
    PayloadNode::register(&registry);
    for size in [64usize, 4096] {
        let state = PayloadNode::sized(1, size).state();
        group.bench_with_input(BenchmarkId::from_parameter(size), &state, |b, state| {
            b.iter(|| registry.decode("PayloadNode", state).unwrap())
        });
    }
    group.finish();
}

fn bench_handle_resolution(c: &mut Criterion) {
    // Pure resolution cost across space sizes: the price of the handle
    // indirection that replaces direct Java references.
    let mut group = c.benchmark_group("handle_resolution");
    for n in [10usize, 10_000] {
        let mut world = ObiWorld::loopback();
        let site = world.add_site("S");
        let mut last = None;
        for i in 0..n {
            last = Some(world.site(site).create(PayloadNode::sized(i as i64, 16)));
        }
        let target = last.unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| world.site(site).resolution(target))
        });
    }
    group.finish();
}

fn bench_prefetch_vs_on_demand(c: &mut Criterion) {
    // The paper's §2.1 footnote: prefetching hides fault latency. Compare
    // a walk that faults on demand against prefetch-then-walk.
    let mut group = c.benchmark_group("prefetch_100");
    group.sample_size(10);
    group.bench_function("on_demand", |b| {
        b.iter_batched(
            || payload_list(100, 64),
            |w| {
                let site = w.world.site(w.consumer);
                let mut cur = site.get(&w.head, ReplicationMode::incremental(1)).unwrap();
                loop {
                    let out = site.invoke(cur, "touch", ObiValue::Null).unwrap();
                    match out.as_ref_id() {
                        Some(id) => cur = id.into(),
                        None => break,
                    }
                }
            },
            BatchSize::PerIteration,
        )
    });
    group.bench_function("prefetch_then_walk", |b| {
        b.iter_batched(
            || payload_list(100, 64),
            |w| {
                let site = w.world.site(w.consumer);
                let root = site.get(&w.head, ReplicationMode::incremental(1)).unwrap();
                site.prefetch(root, 100).unwrap();
                let mut cur = root;
                loop {
                    let out = site.invoke(cur, "touch", ObiValue::Null).unwrap();
                    match out.as_ref_id() {
                        Some(id) => cur = id.into(),
                        None => break,
                    }
                }
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_budget_eviction(c: &mut Criterion) {
    // Cost of walking under memory pressure: every batch triggers an
    // eviction sweep (the info-appliance configuration).
    let mut group = c.benchmark_group("budget_walk_100x1k");
    group.sample_size(10);
    for budget in [None, Some(8 * 1024usize)] {
        let label = match budget {
            None => "unbounded",
            Some(_) => "8KiB_budget",
        };
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let w = payload_list(100, 1024);
                    w.world.site(w.consumer).set_replica_budget(budget);
                    w
                },
                |w| {
                    let site = w.world.site(w.consumer);
                    let mut cur = site.get(&w.head, ReplicationMode::incremental(5)).unwrap();
                    loop {
                        let out = site.invoke(cur, "touch", ObiValue::Null).unwrap();
                        match out.as_ref_id() {
                            Some(id) => cur = id.into(),
                            None => break,
                        }
                    }
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_swizzle_fast_path,
    bench_gc,
    bench_registry_decode,
    bench_handle_resolution,
    bench_prefetch_vs_on_demand,
    bench_budget_eviction
);
criterion_main!(benches);

//! Real-CPU cost of cluster replication (the machinery behind Figure 6),
//! head-to-head with per-object incremental replication at the same step
//! size, plus the cluster write-back path.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use obiwan_bench::workload::payload_list;
use obiwan_core::{ObiValue, ObjRef, ReplicationMode};

const LIST: usize = 200;
const SIZE: usize = 64;

fn walk_all(w: &obiwan_bench::ListWorkload, mode: ReplicationMode) {
    let site = w.world.site(w.consumer);
    let mut cur: ObjRef = site.get(&w.head, mode).unwrap();
    loop {
        let out = site.invoke(cur, "touch", ObiValue::Null).unwrap();
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
}

fn bench_cluster_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_walk_200");
    group.sample_size(10);
    for step in [10usize, 100, LIST] {
        group.bench_with_input(BenchmarkId::from_parameter(step), &step, |b, &step| {
            b.iter_batched(
                || payload_list(LIST, SIZE),
                |w| walk_all(&w, ReplicationMode::cluster(step)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_cluster_vs_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_200_step_50");
    group.sample_size(10);
    group.bench_function("incremental", |b| {
        b.iter_batched(
            || payload_list(LIST, SIZE),
            |w| walk_all(&w, ReplicationMode::incremental(50)),
            BatchSize::PerIteration,
        )
    });
    group.bench_function("cluster", |b| {
        b.iter_batched(
            || payload_list(LIST, SIZE),
            |w| walk_all(&w, ReplicationMode::cluster(50)),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_cluster_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_put_50");
    group.sample_size(10);
    group.bench_function("put_cluster", |b| {
        b.iter_batched(
            || {
                let w = payload_list(50, SIZE);
                let root = w
                    .world
                    .site(w.consumer)
                    .get(&w.head, ReplicationMode::cluster(50))
                    .unwrap();
                w.world
                    .site(w.consumer)
                    .invoke(root, "set_index", ObiValue::I64(9))
                    .unwrap();
                let cluster = w.world.site(w.consumer).meta_of(root).unwrap().cluster.unwrap();
                (w, cluster)
            },
            |(w, cluster)| w.world.site(w.consumer).put_cluster(cluster).unwrap(),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cluster_steps,
    bench_cluster_vs_incremental,
    bench_cluster_put
);
criterion_main!(benches);

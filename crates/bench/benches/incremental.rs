//! Real-CPU cost of incremental replication (the machinery behind
//! Figure 5): replicate-and-walk a list at various step sizes, measuring
//! the implementation cost of faulting, batch materialization and
//! swizzling (network physics excluded — the virtual clock does not slow
//! real time).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use obiwan_bench::workload::payload_list;
use obiwan_core::{ObiValue, ObjRef, ReplicationMode};

const LIST: usize = 200;
const SIZE: usize = 64;

fn walk_all(w: &obiwan_bench::ListWorkload, mode: ReplicationMode) {
    let site = w.world.site(w.consumer);
    let mut cur: ObjRef = site.get(&w.head, mode).unwrap();
    loop {
        let out = site.invoke(cur, "touch", ObiValue::Null).unwrap();
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
}

fn bench_incremental_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("incremental_walk_200");
    group.sample_size(10);
    for step in [1usize, 10, 100, LIST] {
        group.bench_with_input(BenchmarkId::from_parameter(step), &step, |b, &step| {
            b.iter_batched(
                || payload_list(LIST, SIZE),
                |w| walk_all(&w, ReplicationMode::incremental(step)),
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_walk_200");
    group.sample_size(10);
    group.bench_function("transitive", |b| {
        b.iter_batched(
            || payload_list(LIST, SIZE),
            |w| walk_all(&w, ReplicationMode::transitive()),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

fn bench_single_fault(c: &mut Criterion) {
    // The isolated cost of one object fault: demand, materialize one
    // replica, swizzle.
    let mut group = c.benchmark_group("object_fault");
    group.sample_size(20);
    group.bench_function("one_object", |b| {
        b.iter_batched(
            || {
                let w = payload_list(2, SIZE);
                let root = w
                    .world
                    .site(w.consumer)
                    .get(&w.head, ReplicationMode::incremental(1))
                    .unwrap();
                (w, root)
            },
            |(w, root)| {
                // next_value faults node 2 in and invokes it.
                w.world
                    .site(w.consumer)
                    .invoke(root, "touch", ObiValue::Null)
                    .unwrap();
                w.world
                    .site(w.consumer)
                    .invoke(ObjRef::new(w.nodes[1].id()), "index", ObiValue::Null)
                    .unwrap()
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_steps,
    bench_transitive_closure,
    bench_single_fault
);
criterion_main!(benches);

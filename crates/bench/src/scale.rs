//! Many-site scale-out bench: concurrent `RmiServer` dispatch over the
//! sharded object space.
//!
//! One provider process hosts a large object population (thousands of
//! payload chains); a fleet of client sites hammers it over the threaded
//! [`MemTransport`] with a contended mixed workload — demand walks
//! (`GetRequest` with an incremental batch, following the returned
//! frontier) and mutating `set_index` invocations on chain heads. The
//! provider
//! is registered with [`MemTransport::register_with_workers`] and the bench
//! sweeps the worker count, measuring real wall-clock ops/sec and the
//! client-observed p99 under contention.
//!
//! Each answered request costs a fixed *service delay*, slept inside the
//! handler (a scaled-down stand-in for the paper testbed's per-RMI cost —
//! §4.1 measures 2.8 ms per remote invocation). Overlapping that latency
//! is precisely what the worker pool buys: with one worker the inbox
//! drains serially and queueing dominates the tail; with M workers, M
//! requests are in service at once. On a multi-core host the CPU part of
//! handling (decode, shard-striped batch building, encode) parallelizes
//! too; the sleep keeps the shape reproducible on small CI boxes.
//!
//! Unlike the virtual-time benches, these numbers are real time and vary
//! machine to machine; the *ratio* between worker counts is the figure.

use bytes::Bytes;
use obiwan_core::demo::{self, PayloadNode};
use obiwan_core::{ClassRegistry, ObiProcess, ObiValue, NAME_SERVER_SITE};
use obiwan_net::{MemTransport, MessageHandler, Transport};
use obiwan_util::{Clock, ClockMode, CostModel, Histogram, ObjId, RequestId, SiteId};
use obiwan_wire::{Message, WireMode};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The provider's site id (clients are unregistered caller sites).
const PROVIDER: SiteId = SiteId::new(1);

/// First client site id; clients occupy a contiguous range above it.
const CLIENT_BASE: u32 = 1000;

/// Announce an acknowledgement horizon for the issuing site after this
/// many requests, keeping the provider's reply cache ahead of LRU
/// pressure (mirrors the client-side `HorizonTracker` cadence).
const ACK_EVERY: u64 = 8;

/// Shape of one scale-bench run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of payload chains created at the provider.
    pub chains: usize,
    /// Objects per chain (total objects = `chains * chain_len`).
    pub chain_len: usize,
    /// Payload bytes per object.
    pub payload_bytes: usize,
    /// Concurrent client threads issuing requests.
    pub client_threads: usize,
    /// Distinct caller site ids per client thread (total sites =
    /// `client_threads * sites_per_thread`).
    pub sites_per_thread: usize,
    /// Requests each client thread issues per worker-count point.
    pub ops_per_thread: usize,
    /// Incremental batch size of demand-walk gets.
    pub get_batch: u32,
    /// Every `put_every`-th op is a mutating `touch` instead of a get.
    pub put_every: usize,
    /// Modeled per-request service latency, slept in the handler.
    pub service_delay: Duration,
    /// Worker counts to sweep (the first is the baseline).
    pub workers: Vec<usize>,
}

impl ScaleConfig {
    /// The full many-site world: ~1M objects, 128 caller sites.
    pub fn full() -> Self {
        ScaleConfig {
            chains: 10_000,
            chain_len: 100,
            payload_bytes: 32,
            client_threads: 16,
            sites_per_thread: 8,
            ops_per_thread: 400,
            get_batch: 10,
            put_every: 10,
            service_delay: Duration::from_micros(500),
            workers: vec![1, 2, 4, 8],
        }
    }

    /// A reduced world for CI smoke runs: same shape, ~3k objects.
    pub fn smoke() -> Self {
        ScaleConfig {
            chains: 64,
            chain_len: 50,
            payload_bytes: 32,
            client_threads: 8,
            sites_per_thread: 13,
            ops_per_thread: 120,
            get_batch: 10,
            put_every: 10,
            service_delay: Duration::from_micros(500),
            workers: vec![1, 2, 4, 8],
        }
    }

    /// Total objects created at the provider.
    pub fn objects(&self) -> usize {
        self.chains * self.chain_len
    }

    /// Total caller site ids in the world.
    pub fn sites(&self) -> usize {
        self.client_threads * self.sites_per_thread
    }

    /// Requests issued per worker-count point.
    pub fn ops_per_point(&self) -> usize {
        self.client_threads * self.ops_per_thread
    }
}

/// One measured point: the workload at one worker count.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Worker threads draining the provider's inbox.
    pub workers: usize,
    /// Wall-clock time for the whole point.
    pub elapsed: Duration,
    /// Requests completed.
    pub ops: u64,
    /// Requests that failed (expected 0; a timeout would land here).
    pub errors: u64,
    /// Client-observed per-request latency (queueing included).
    pub latency: Histogram,
}

impl ScalePoint {
    /// Completed requests per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// Delays every answered request by a fixed service time, modeling the
/// per-RMI cost of a loaded provider. The sleep happens *after* the
/// wrapped handler returns — outside every lock it took — so only the
/// reply, not the provider's internal state, is held back. One-way frames
/// (acks, invalidations) are not delayed.
struct ServiceDelay {
    inner: Arc<dyn MessageHandler>,
    delay: Duration,
}

impl MessageHandler for ServiceDelay {
    fn handle(&self, from: SiteId, frame: Bytes) -> Option<Bytes> {
        let reply = self.inner.handle(from, frame);
        if reply.is_some() && !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        reply
    }
}

/// Builds the provider world: one process over a [`MemTransport`], with
/// `chains` linked payload chains. Returns the transport, the process and
/// the chain heads.
fn build_world(cfg: &ScaleConfig) -> (MemTransport, ObiProcess, Vec<ObjId>) {
    let transport = MemTransport::new();
    let registry = ClassRegistry::new();
    demo::register_all(&registry);
    let process = ObiProcess::new(
        PROVIDER,
        Arc::new(transport.clone()) as Arc<dyn Transport>,
        Clock::new(ClockMode::VirtualOnly),
        CostModel::free(),
        registry,
        NAME_SERVER_SITE,
    );
    let mut heads = Vec::with_capacity(cfg.chains);
    for c in 0..cfg.chains {
        let mut next = None;
        for i in (0..cfg.chain_len).rev() {
            let mut node =
                PayloadNode::sized((c * cfg.chain_len + i) as i64, cfg.payload_bytes);
            node.set_next(next);
            next = Some(process.create(node));
        }
        heads.push(next.expect("chain_len > 0").id());
    }
    (transport, process, heads)
}

/// One client thread's run: `ops` requests against the provider, walking
/// chains by demand (following the reply's frontier edge) with a mutating
/// `set_index` every `put_every`-th op. Returns its latency histogram and
/// error count.
#[allow(clippy::too_many_arguments)]
fn client_run(
    transport: &MemTransport,
    cfg: &ScaleConfig,
    heads: &[ObjId],
    thread_idx: usize,
) -> (Histogram, u64) {
    let sites: Vec<SiteId> = (0..cfg.sites_per_thread)
        .map(|k| {
            SiteId::new(CLIENT_BASE + (thread_idx * cfg.sites_per_thread + k) as u32)
        })
        .collect();
    // Spread threads across chains; a large odd stride decorrelates them.
    let mut chain = (thread_idx * 7919) % heads.len();
    let mut cursor = heads[chain];
    let mut latency = Histogram::new();
    let mut errors = 0u64;
    let mut seq = 0u64;
    for op in 0..cfg.ops_per_thread {
        let from = sites[op % sites.len()];
        seq += 1;
        let request = RequestId::new(from, seq);
        let is_put = (op + 1).is_multiple_of(cfg.put_every);
        let frame = if is_put {
            // A mutating invocation on the chain head: contends with every
            // reader walking that chain through the same shard.
            Message::InvokeRequest {
                request,
                target: heads[chain],
                method: "set_index".into(),
                args: ObiValue::I64(op as i64),
            }
            .encode()
        } else {
            Message::GetRequest {
                request,
                target: cursor,
                mode: WireMode::Incremental {
                    batch: cfg.get_batch,
                },
            }
            .encode()
        };
        let t0 = Instant::now();
        match transport.call(from, PROVIDER, frame) {
            Ok(reply) => {
                latency.record(t0.elapsed());
                if let Ok(Message::GetReply {
                    result: Ok(batch), ..
                }) = Message::decode(&reply)
                {
                    // Continue the demand walk along the frontier; at the
                    // chain's end, hop to the next chain.
                    match batch.frontier.first() {
                        Some(edge) => cursor = edge.target,
                        None => {
                            chain = (chain + 1) % heads.len();
                            cursor = heads[chain];
                        }
                    }
                }
            }
            Err(_) => errors += 1,
        }
        if seq.is_multiple_of(ACK_EVERY) {
            let ack = Message::AckHorizon { up_to: seq }.encode();
            let _ = transport.cast(from, PROVIDER, ack);
        }
    }
    (latency, errors)
}

/// Runs the sweep: the same workload once per worker count in
/// `cfg.workers`, re-registering the provider's handler with the new pool
/// size between points (the world and its objects are built once).
pub fn scale_bench(cfg: &ScaleConfig) -> Vec<ScalePoint> {
    assert!(cfg.chains > 0 && cfg.chain_len > 0, "world must have objects");
    assert!(!cfg.workers.is_empty(), "nothing to sweep");
    let (transport, process, heads) = build_world(cfg);
    let heads = Arc::new(heads);
    let cfg = Arc::new(cfg.clone());
    let mut points = Vec::with_capacity(cfg.workers.len());
    for &workers in &cfg.workers {
        transport.register_with_workers(
            PROVIDER,
            Arc::new(ServiceDelay {
                inner: process.message_handler(),
                delay: cfg.service_delay,
            }),
            workers,
        );
        let started = Instant::now();
        let joins: Vec<_> = (0..cfg.client_threads)
            .map(|t| {
                let transport = transport.clone();
                let cfg = cfg.clone();
                let heads = heads.clone();
                std::thread::spawn(move || client_run(&transport, &cfg, &heads, t))
            })
            .collect();
        let mut latency = Histogram::new();
        let mut errors = 0u64;
        for j in joins {
            let (l, e) = j.join().expect("client thread");
            latency.merge(&l);
            errors += e;
        }
        points.push(ScalePoint {
            workers,
            elapsed: started.elapsed(),
            ops: latency.len(),
            errors,
            latency,
        });
    }
    transport.shutdown();
    points
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// `BENCH_scale.json` contents (schema `obiwan-bench-scale/1`).
///
/// `clock` is `"real"`: absolute numbers vary by machine; compare the
/// `speedup_vs_1` column, not the raw ops/sec.
pub fn bench_scale_json(cfg: &ScaleConfig) -> String {
    use std::fmt::Write as _;
    let points = scale_bench(cfg);
    let base_ops = points[0].ops_per_sec();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"obiwan-bench-scale/1\",\n");
    out.push_str("  \"clock\": \"real\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"sites\": {}, \"objects\": {}, \"chains\": {}, \"chain_len\": {}, \
         \"payload_bytes\": {}, \"client_threads\": {}, \"ops_per_point\": {}, \
         \"get_batch\": {}, \"put_every\": {}, \"service_delay_us\": {}}},",
        cfg.sites(),
        cfg.objects(),
        cfg.chains,
        cfg.chain_len,
        cfg.payload_bytes,
        cfg.client_threads,
        cfg.ops_per_point(),
        cfg.get_batch,
        cfg.put_every,
        cfg.service_delay.as_micros(),
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"workers\": {}, \"elapsed_ms\": {:.1}, \"ops\": {}, \"errors\": {}, \
             \"ops_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"speedup_vs_1\": {:.2}}}",
            p.workers,
            ms(p.elapsed),
            p.ops,
            p.errors,
            p.ops_per_sec(),
            ms(p.latency.quantile(0.5)),
            ms(p.latency.quantile(0.99)),
            p.ops_per_sec() / base_ops.max(f64::MIN_POSITIVE),
        );
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_scale.json` into `dir`; returns the path written.
pub fn write_scale_file(
    dir: &std::path::Path,
    cfg: &ScaleConfig,
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join("BENCH_scale.json");
    std::fs::write(&path, bench_scale_json(cfg))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny sweep that still exercises every moving part: multi-worker
    /// dispatch, demand walks across chain hops, puts, and ack casts.
    fn tiny() -> ScaleConfig {
        ScaleConfig {
            chains: 8,
            chain_len: 10,
            payload_bytes: 16,
            client_threads: 4,
            sites_per_thread: 2,
            ops_per_thread: 40,
            get_batch: 4,
            put_every: 5,
            service_delay: Duration::ZERO,
            workers: vec![1, 2],
        }
    }

    #[test]
    fn scale_bench_completes_every_op_without_errors() {
        let cfg = tiny();
        let points = scale_bench(&cfg);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.errors, 0, "workers={}", p.workers);
            assert_eq!(p.ops, cfg.ops_per_point() as u64, "workers={}", p.workers);
            assert!(!p.latency.is_empty());
            assert!(p.latency.quantile(0.99) >= p.latency.quantile(0.5));
            assert!(p.ops_per_sec() > 0.0);
        }
    }

    #[test]
    fn scale_json_is_structurally_sound() {
        let json = bench_scale_json(&tiny());
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"schema\": \"obiwan-bench-scale/1\""));
        assert!(json.contains("\"clock\": \"real\""));
        assert!(json.contains("\"speedup_vs_1\""));
        assert!(json.contains("\"workers\": 1"));
        assert!(json.contains("\"workers\": 2"));
    }

    /// With a real service delay, more workers must raise throughput: the
    /// whole point of concurrent dispatch is overlapping service latency.
    #[test]
    fn more_workers_overlap_service_latency() {
        let cfg = ScaleConfig {
            service_delay: Duration::from_millis(2),
            ops_per_thread: 30,
            workers: vec![1, 4],
            ..tiny()
        };
        let points = scale_bench(&cfg);
        let speedup = points[1].ops_per_sec() / points[0].ops_per_sec();
        assert!(
            speedup > 1.5,
            "4 workers vs 1: speedup {speedup:.2} (elapsed {:?} vs {:?})",
            points[1].elapsed,
            points[0].elapsed
        );
    }
}

//! WAL durability bench: append throughput vs group-commit batch size,
//! and recovery (snapshot + log replay) time vs log length.
//!
//! Both sweeps run against the in-memory [`MemStorage`] backend, so the
//! numbers measure the durability machinery itself — framing, CRC,
//! group-commit batching, replay decoding — not a particular disk. The
//! *sync counts* are deterministic (they follow from record count and
//! batch size and are what group commit exists to shrink); elapsed times
//! are real wall-clock and vary machine to machine, so compare ratios,
//! not absolutes.

use bytes::Bytes;
use obiwan_store::{Durable, DurableOptions, MemStorage, Wal, WalOptions};
use obiwan_util::{ObjId, SiteId};
use obiwan_wire::ReplicaState;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The site id objects in the recovery sweep claim as their master.
const PROVIDER: SiteId = SiteId::new(1);

/// Distinct dirty objects the recovery log cycles over: enough that the
/// recovered dirty map is a real map, few enough that replay time is
/// dominated by log length, which is the axis under test.
const RECOVERY_OBJECTS: u64 = 256;

/// Shape of one WAL-bench run.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Payload bytes per appended record.
    pub payload_bytes: usize,
    /// Records appended per group-commit point.
    pub append_records: usize,
    /// Group-commit batch sizes to sweep (1 = sync every append).
    pub group_commits: Vec<usize>,
    /// Log lengths (record counts) to sweep in the recovery bench.
    pub recovery_lens: Vec<usize>,
}

impl WalConfig {
    /// The full sweep.
    pub fn full() -> Self {
        WalConfig {
            payload_bytes: 64,
            append_records: 50_000,
            group_commits: vec![1, 4, 16, 64],
            recovery_lens: vec![1_000, 10_000, 50_000, 100_000],
        }
    }

    /// A reduced sweep for CI smoke runs: same shape, ~10x smaller.
    pub fn smoke() -> Self {
        WalConfig {
            payload_bytes: 64,
            append_records: 5_000,
            group_commits: vec![1, 8, 64],
            recovery_lens: vec![500, 2_000, 8_000],
        }
    }
}

/// One append-bench point: `records` appends at one group-commit size.
#[derive(Debug, Clone)]
pub struct AppendPoint {
    /// Appends buffered per sync.
    pub group_commit: usize,
    /// Records appended.
    pub records: u64,
    /// Bytes written, frame headers included.
    pub bytes: u64,
    /// Sync (fsync-equivalent) calls issued — deterministic:
    /// `ceil(records / group_commit)`.
    pub syncs: u64,
    /// Wall-clock time for the whole point.
    pub elapsed: Duration,
}

impl AppendPoint {
    /// Records appended per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        self.records as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Payload + framing megabytes per wall-clock second.
    pub fn mb_per_sec(&self) -> f64 {
        (self.bytes as f64 / 1e6) / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

/// One recovery-bench point: a cold [`Durable::open`] over a log of
/// `records` object-delta records.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// WAL records replayed.
    pub records: u64,
    /// WAL bytes on "disk" at open time.
    pub wal_bytes: u64,
    /// Dirty replicas in the recovered state (bounded by
    /// `RECOVERY_OBJECTS`: later deltas supersede earlier ones).
    pub dirty_objects: usize,
    /// Wall-clock time for the open (replay + mirror rebuild).
    pub elapsed: Duration,
}

impl RecoveryPoint {
    /// Records replayed per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        self.records as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

fn delta(i: u64, payload_bytes: usize) -> ReplicaState {
    ReplicaState {
        id: ObjId::new(PROVIDER, i % RECOVERY_OBJECTS),
        class: "bench.Payload".into(),
        version: i,
        state: Bytes::from(vec![(i % 251) as u8; payload_bytes]),
    }
}

/// Appends `cfg.append_records` fixed-size records once per group-commit
/// size, measuring throughput and the sync count the batching buys down.
pub fn append_bench(cfg: &WalConfig) -> Vec<AppendPoint> {
    assert!(!cfg.group_commits.is_empty(), "nothing to sweep");
    let payload = vec![0xA5u8; cfg.payload_bytes];
    cfg.group_commits
        .iter()
        .map(|&group_commit| {
            let storage = Arc::new(MemStorage::new());
            let wal = Wal::new(
                storage as Arc<_>,
                "wal",
                WalOptions { group_commit },
            );
            let started = Instant::now();
            for _ in 0..cfg.append_records {
                wal.append(&payload).expect("append");
            }
            wal.commit().expect("final sync");
            AppendPoint {
                group_commit,
                records: wal.stats().appends(),
                bytes: wal.stats().bytes(),
                syncs: wal.stats().syncs(),
                elapsed: started.elapsed(),
            }
        })
        .collect()
}

/// Builds a log of `len` object-delta records (auto-compaction disabled so
/// the tail actually grows), then measures a cold [`Durable::open`] over
/// it — the crash-recovery path.
pub fn recovery_bench(cfg: &WalConfig) -> Vec<RecoveryPoint> {
    assert!(!cfg.recovery_lens.is_empty(), "nothing to sweep");
    cfg.recovery_lens
        .iter()
        .map(|&len| {
            let storage = Arc::new(MemStorage::new());
            let wal_bytes;
            {
                let (d, recovered) = Durable::open(
                    storage.clone(),
                    DurableOptions {
                        group_commit: 64,
                        compact_every: 0,
                        checkpoint_every_rpcs: 0,
                    },
                )
                .expect("open fresh");
                assert!(recovered.is_empty(), "fresh storage recovered state");
                for i in 0..len as u64 {
                    d.log_dirty(PROVIDER, delta(i, cfg.payload_bytes))
                        .expect("log_dirty");
                }
                d.commit().expect("commit");
                wal_bytes = d.wal_len().expect("wal_len");
            }
            let started = Instant::now();
            let (_d, recovered) = Durable::open(
                storage,
                DurableOptions {
                    group_commit: 64,
                    compact_every: 0,
                    checkpoint_every_rpcs: 0,
                },
            )
            .expect("reopen");
            let elapsed = started.elapsed();
            RecoveryPoint {
                records: recovered.wal_records,
                wal_bytes,
                dirty_objects: recovered.dirty.len(),
                elapsed,
            }
        })
        .collect()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// `BENCH_wal.json` contents (schema `obiwan-bench-wal/1`).
///
/// `clock` is `"real"`: absolute numbers vary by machine; the deterministic
/// columns are `syncs` and `bytes`, and the figure of interest is how
/// throughput scales with `group_commit` and recovery time with `records`.
pub fn bench_wal_json(cfg: &WalConfig) -> String {
    use std::fmt::Write as _;
    let appends = append_bench(cfg);
    let recoveries = recovery_bench(cfg);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"obiwan-bench-wal/1\",\n");
    out.push_str("  \"clock\": \"real\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"payload_bytes\": {}, \"append_records\": {}, \
         \"recovery_objects\": {}}},",
        cfg.payload_bytes, cfg.append_records, RECOVERY_OBJECTS,
    );
    out.push_str("  \"append\": [\n");
    for (i, p) in appends.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"group_commit\": {}, \"records\": {}, \"bytes\": {}, \"syncs\": {}, \
             \"elapsed_ms\": {:.1}, \"records_per_sec\": {:.1}, \"mb_per_sec\": {:.2}}}",
            p.group_commit,
            p.records,
            p.bytes,
            p.syncs,
            ms(p.elapsed),
            p.records_per_sec(),
            p.mb_per_sec(),
        );
        out.push_str(if i + 1 < appends.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"recovery\": [\n");
    for (i, p) in recoveries.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"records\": {}, \"wal_bytes\": {}, \"dirty_objects\": {}, \
             \"recovery_ms\": {:.2}, \"records_per_sec\": {:.1}}}",
            p.records,
            p.wal_bytes,
            p.dirty_objects,
            ms(p.elapsed),
            p.records_per_sec(),
        );
        out.push_str(if i + 1 < recoveries.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes `BENCH_wal.json` into `dir`; returns the path written.
pub fn write_wal_file(
    dir: &std::path::Path,
    cfg: &WalConfig,
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join("BENCH_wal.json");
    std::fs::write(&path, bench_wal_json(cfg))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WalConfig {
        WalConfig {
            payload_bytes: 16,
            append_records: 200,
            group_commits: vec![1, 8],
            recovery_lens: vec![50, 400],
        }
    }

    #[test]
    fn group_commit_divides_the_sync_count() {
        let points = append_bench(&tiny());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.records, 200);
            assert!(p.bytes > 200 * 16, "frame headers add to payload bytes");
            assert!(p.records_per_sec() > 0.0);
        }
        // Deterministic: ceil(200/1) and ceil(200/8) syncs.
        assert_eq!(points[0].syncs, 200);
        assert_eq!(points[1].syncs, 25);
    }

    #[test]
    fn recovery_replays_the_whole_log_and_supersedes_deltas() {
        let points = recovery_bench(&tiny());
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].records, 50);
        assert_eq!(points[1].records, 400);
        // 50 deltas over 256 ids: all distinct. 400 deltas: capped at 256.
        assert_eq!(points[0].dirty_objects, 50);
        assert_eq!(points[1].dirty_objects, RECOVERY_OBJECTS as usize);
        assert!(points[1].wal_bytes > points[0].wal_bytes);
    }

    #[test]
    fn emitted_json_is_structurally_sound() {
        let json = bench_wal_json(&tiny());
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.contains("\"schema\": \"obiwan-bench-wal/1\""));
        assert!(json.contains("\"append\""));
        assert!(json.contains("\"recovery\""));
    }

    #[test]
    fn write_wal_file_creates_the_file() {
        let dir = std::env::temp_dir().join("obiwan_bench_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_wal_file(&dir, &tiny()).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\""));
    }
}

//! The `BENCH_*.json` perf-trajectory emitter.
//!
//! Every run of `cargo run -p obiwan-bench --bin figures -- bench` rewrites
//! `BENCH_demand.json` and `BENCH_rpc.json` in the current directory (the
//! repo root, in CI). The numbers are deterministic virtual-time figures on
//! the paper-testbed model, so two runs on different machines produce the
//! same files — a diff against the committed copies *is* the perf
//! trajectory of the change under review.
//!
//! Schemas (documented in DESIGN.md §Observability):
//!
//! * `obiwan-bench-demand/1` — the paper's list walk per incremental step:
//!   ops/sec, demand/invoke p50/p99, and round-trips per demand batch.
//! * `obiwan-bench-rpc/1` — the RPC path per network scenario: ops/sec,
//!   caller-observed p50/p99, retries and reply-cache hits.

use crate::workload::{payload_list, single_object};
use crate::LIST_LEN;
use obiwan_core::{ObiValue, ReplicationMode, RetryPolicy};
use obiwan_net::conditions;
use obiwan_util::Histogram;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Payload size used by both benches, bytes.
pub const PAYLOAD_BYTES: usize = 64;

/// Incremental steps the demand bench sweeps. 100 and 250 exercise the
/// streaming reply path well past one chunk (8 objects per frame).
pub const DEMAND_STEPS: [usize; 5] = [1, 10, 50, 100, 250];

/// Payload sizes the demand bench sweeps at [`PAYLOAD_SWEEP_STEP`].
pub const PAYLOAD_SWEEP: [usize; 3] = [64, 256, 1024];

/// Incremental step held fixed for the payload sweep.
pub const PAYLOAD_SWEEP_STEP: usize = 50;

/// Calls per RPC scenario.
pub const RPC_CALLS: usize = 300;

/// One demand-bench point: a full list walk at one incremental step.
#[derive(Debug, Clone)]
pub struct DemandPoint {
    /// Objects fetched per demand batch.
    pub step: usize,
    /// Total virtual time for the walk.
    pub elapsed: Duration,
    /// Invocations performed (= list length).
    pub invocations: u64,
    /// Object faults taken.
    pub object_faults: u64,
    /// Demand round-trips spent (get/get_many exchanges).
    pub round_trips: u64,
    /// Demand (fault-resolution) latency distribution.
    pub demand: Histogram,
    /// Caller-observed invocation latency distribution.
    pub invoke: Histogram,
}

impl DemandPoint {
    /// Invocations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        self.invocations as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }

    /// Demand round-trips per fault batch (1.0 = no retries, no waste).
    pub fn round_trips_per_batch(&self) -> f64 {
        self.round_trips as f64 / (self.object_faults as f64).max(1.0)
    }
}

/// One full list walk at `step` with `payload`-byte nodes, reading the
/// per-site latency recorders and counters afterwards.
fn demand_walk(step: usize, payload: usize) -> DemandPoint {
    let w = payload_list(LIST_LEN, payload);
    let site = w.world.site(w.consumer);
    let before = site.metrics().snapshot();
    let root = site
        .get(&w.head, ReplicationMode::incremental(step))
        .expect("initial get");
    let mut cur = root;
    let mut invocations = 0u64;
    loop {
        let out = site.invoke(cur, "touch", ObiValue::Null).expect("touch");
        invocations += 1;
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
    let delta = site.metrics().snapshot().since(&before);
    let latency = site.metrics().latency_snapshot();
    DemandPoint {
        step,
        elapsed: w.world.clock().elapsed(),
        invocations,
        // The initial `get` is a demand round-trip too, but not an
        // object fault; count it on both sides of the ratio.
        object_faults: delta.object_faults + 1,
        round_trips: delta.demand_round_trips,
        demand: latency.demand,
        invoke: latency.invoke,
    }
}

/// Walks the paper's list once per step in [`DEMAND_STEPS`].
pub fn demand_bench() -> Vec<DemandPoint> {
    DEMAND_STEPS
        .iter()
        .map(|&step| demand_walk(step, PAYLOAD_BYTES))
        .collect()
}

/// Walks the list at [`PAYLOAD_SWEEP_STEP`] once per payload size in
/// [`PAYLOAD_SWEEP`]; returns `(payload_bytes, point)` pairs.
pub fn demand_payload_sweep() -> Vec<(usize, DemandPoint)> {
    PAYLOAD_SWEEP
        .iter()
        .map(|&payload| (payload, demand_walk(PAYLOAD_SWEEP_STEP, payload)))
        .collect()
}

/// One RPC-bench scenario: repeated RMIs under one network condition.
#[derive(Debug, Clone)]
pub struct RpcScenario {
    /// Scenario name (`clean_lan`, `lossy_lan_10pct`).
    pub name: &'static str,
    /// Calls issued.
    pub calls: u64,
    /// Total virtual time.
    pub elapsed: Duration,
    /// Caller-observed per-call latency.
    pub latency: Histogram,
    /// Request attempts re-issued after loss/timeout.
    pub retries: u64,
    /// Duplicate requests the server answered from its reply cache.
    pub cached_replies: u64,
}

impl RpcScenario {
    /// Calls per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        self.calls as f64 / self.elapsed.as_secs_f64().max(f64::MIN_POSITIVE)
    }
}

fn rpc_scenario(name: &'static str, loss: f64, reply_loss: f64) -> RpcScenario {
    let w = single_object(PAYLOAD_BYTES);
    if loss > 0.0 || reply_loss > 0.0 {
        // Deterministic loss stream: same seed, same drops, same JSON.
        w.world.transport().reseed(0xBE0C_0DE5);
        w.world.transport().with_topology_mut(|t| {
            t.set_link_symmetric(
                w.consumer,
                w.provider,
                conditions::paper_lan()
                    .with_loss(loss)
                    .with_reply_loss(reply_loss),
            );
        });
        w.world.site(w.consumer).set_rpc_policy(RetryPolicy {
            max_retries: 10,
            ..RetryPolicy::default()
        });
    }
    let site = w.world.site(w.consumer);
    let before = site.metrics().snapshot();
    // Reply-cache hits are counted by the *answering* side: read them from
    // the provider's counters, not the caller's.
    let provider_before = w.world.site(w.provider).metrics().snapshot();
    let mut latency = Histogram::new();
    for _ in 0..RPC_CALLS {
        let t0 = w.world.clock().elapsed();
        site.invoke_rmi(&w.object, "touch", ObiValue::Null)
            .expect("rmi");
        latency.record(w.world.clock().elapsed() - t0);
    }
    let delta = site.metrics().snapshot().since(&before);
    let provider_delta = w
        .world
        .site(w.provider)
        .metrics()
        .snapshot()
        .since(&provider_before);
    RpcScenario {
        name,
        calls: RPC_CALLS as u64,
        elapsed: w.world.clock().elapsed(),
        latency,
        retries: delta.rpc_retries,
        cached_replies: provider_delta.cached_replies,
    }
}

/// Runs the RPC scenarios: a clean paper LAN, the same link at 10% frame
/// loss, and a link that only loses *replies* (10%) — the asymmetric
/// failure where every retry reaches a server that already executed the
/// request, so the reply cache answers it.
pub fn rpc_bench() -> Vec<RpcScenario> {
    vec![
        rpc_scenario("clean_lan", 0.0, 0.0),
        rpc_scenario("lossy_lan_10pct", 0.10, 0.0),
        rpc_scenario("lossy_lan_reply_loss", 0.0, 0.10),
    ]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn num(v: f64) -> String {
    // Stable, diff-friendly fixed precision.
    format!("{v:.4}")
}

fn demand_point_json(p: &DemandPoint) -> String {
    format!(
        "{{\"step\": {}, \"elapsed_ms\": {}, \"invocations\": {}, \"ops_per_sec\": {}, \
         \"object_faults\": {}, \"demand_round_trips\": {}, \"round_trips_per_batch\": {}, \
         \"demand_p50_ms\": {}, \"demand_p99_ms\": {}, \
         \"invoke_p50_ms\": {}, \"invoke_p99_ms\": {}}}",
        p.step,
        num(ms(p.elapsed)),
        p.invocations,
        num(p.ops_per_sec()),
        p.object_faults,
        p.round_trips,
        num(p.round_trips_per_batch()),
        num(ms(p.demand.quantile(0.5))),
        num(ms(p.demand.quantile(0.99))),
        num(ms(p.invoke.quantile(0.5))),
        num(ms(p.invoke.quantile(0.99))),
    )
}

/// `BENCH_demand.json` contents (schema `obiwan-bench-demand/2`: adds the
/// payload sweep and the 100/250 streaming steps).
pub fn bench_demand_json() -> String {
    let points = demand_bench();
    let sweep = demand_payload_sweep();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"obiwan-bench-demand/2\",\n");
    out.push_str("  \"clock\": \"virtual\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"list_len\": {LIST_LEN}, \"payload_bytes\": {PAYLOAD_BYTES}}},"
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(out, "    {}", demand_point_json(p));
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"payload_sweep_step\": {PAYLOAD_SWEEP_STEP},"
    );
    out.push_str("  \"payload_sweep\": [\n");
    for (i, (payload, p)) in sweep.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"payload_bytes\": {payload}, \"point\": {}}}",
            demand_point_json(p)
        );
        out.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// `BENCH_rpc.json` contents (schema `obiwan-bench-rpc/1`).
pub fn bench_rpc_json() -> String {
    let scenarios = rpc_bench();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"obiwan-bench-rpc/1\",\n");
    out.push_str("  \"clock\": \"virtual\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"calls\": {RPC_CALLS}, \"payload_bytes\": {PAYLOAD_BYTES}}},"
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"calls\": {}, \"elapsed_ms\": {}, \"ops_per_sec\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"retries\": {}, \"cached_replies\": {}}}",
            s.name,
            s.calls,
            num(ms(s.elapsed)),
            num(s.ops_per_sec()),
            num(ms(s.latency.quantile(0.5))),
            num(ms(s.latency.quantile(0.99))),
            s.retries,
            s.cached_replies,
        );
        out.push_str(if i + 1 < scenarios.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes both `BENCH_*.json` files into `dir`; returns the paths written.
pub fn write_bench_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let demand = dir.join("BENCH_demand.json");
    std::fs::write(&demand, bench_demand_json())?;
    let rpc = dir.join("BENCH_rpc.json");
    std::fs::write(&rpc, bench_rpc_json())?;
    Ok(vec![demand, rpc])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_bench_round_trips_shrink_with_bigger_steps() {
        let points = demand_bench();
        assert_eq!(points.len(), DEMAND_STEPS.len());
        for p in &points {
            assert_eq!(p.invocations, LIST_LEN as u64);
            assert!(p.elapsed > Duration::ZERO);
            assert!(p.ops_per_sec() > 0.0);
            assert!(!p.demand.is_empty(), "demand recorder must have samples");
            assert!(!p.invoke.is_empty(), "invoke recorder must have samples");
            assert!(p.round_trips_per_batch() >= 0.99, "{}", p.round_trips_per_batch());
        }
        // Bigger steps mean fewer round-trips and more throughput.
        for w in points.windows(2) {
            assert!(
                w[0].round_trips > w[1].round_trips,
                "step {} -> {}: round trips must shrink",
                w[0].step,
                w[1].step
            );
        }
        assert!(points.last().unwrap().ops_per_sec() > points[0].ops_per_sec());
    }

    /// The tentpole property: streaming the reply keeps the caller-visible
    /// tail flat as the batch grows. One chunk materializes inside the
    /// fault window regardless of step, so the step-50 p99 stays within 2x
    /// of step 10 — and each batch still costs one round trip.
    #[test]
    fn streaming_keeps_big_step_tails_near_the_small_step_tail() {
        let points = demand_bench();
        let p99_at = |step: usize| {
            points
                .iter()
                .find(|p| p.step == step)
                .expect("step present")
                .invoke
                .quantile(0.99)
        };
        assert!(
            p99_at(50) <= 2 * p99_at(10),
            "invoke p99 step 50 ({:?}) > 2x step 10 ({:?})",
            p99_at(50),
            p99_at(10)
        );
        for p in &points {
            let r = p.round_trips_per_batch();
            assert!(
                (0.99..=1.05).contains(&r),
                "step {}: {r} round trips per batch",
                p.step
            );
        }
    }

    #[test]
    fn payload_sweep_covers_every_size_at_the_fixed_step() {
        let sweep = demand_payload_sweep();
        assert_eq!(sweep.len(), PAYLOAD_SWEEP.len());
        for ((payload, point), expect) in sweep.iter().zip(PAYLOAD_SWEEP) {
            assert_eq!(*payload, expect);
            assert_eq!(point.step, PAYLOAD_SWEEP_STEP);
            assert_eq!(point.invocations, LIST_LEN as u64);
        }
        // Bigger payloads cost serialize/install time: the walk slows down.
        assert!(sweep[0].1.elapsed < sweep.last().unwrap().1.elapsed);
    }

    #[test]
    fn rpc_bench_reports_retries_only_under_loss() {
        let scenarios = rpc_bench();
        assert_eq!(scenarios.len(), 3);
        let clean = &scenarios[0];
        let lossy = &scenarios[1];
        assert_eq!(clean.retries, 0);
        assert_eq!(clean.cached_replies, 0);
        assert!(lossy.retries > 0, "10% loss must force retries");
        assert!(clean.ops_per_sec() > lossy.ops_per_sec());
        // Retried calls stretch the tail past the clean p99.
        assert!(lossy.latency.quantile(0.99) > clean.latency.quantile(0.99));
    }

    /// The reply-loss scenario exists to light up the reply cache: the
    /// request executes, only the answer is lost, so every retry is a
    /// duplicate the server answers from cache.
    #[test]
    fn reply_loss_scenario_exercises_the_reply_cache() {
        let scenarios = rpc_bench();
        let reply_lossy = &scenarios[2];
        assert_eq!(reply_lossy.name, "lossy_lan_reply_loss");
        assert!(reply_lossy.retries > 0, "lost replies must force retries");
        assert!(
            reply_lossy.cached_replies > 0,
            "every retry after a lost reply is a cache hit"
        );
        // With no forward loss, every retried request reached the server
        // the first time: retries and cache hits must agree.
        assert_eq!(reply_lossy.cached_replies, reply_lossy.retries);
    }

    #[test]
    fn emitted_json_is_structurally_sound() {
        for json in [bench_demand_json(), bench_rpc_json()] {
            assert!(json.starts_with("{\n"));
            assert!(json.ends_with("}\n"));
            assert_eq!(
                json.matches('{').count(),
                json.matches('}').count(),
                "balanced braces"
            );
            assert!(json.contains("\"ops_per_sec\""));
            assert!(json.contains("\"clock\": \"virtual\""));
            // Determinism: a second run emits byte-identical output.
        }
        assert_eq!(bench_rpc_json(), bench_rpc_json());
    }

    #[test]
    fn write_bench_files_creates_both_files() {
        let dir = std::env::temp_dir().join("obiwan_bench_emit_test");
        std::fs::create_dir_all(&dir).unwrap();
        let paths = write_bench_files(&dir).unwrap();
        assert_eq!(paths.len(), 2);
        for p in &paths {
            let body = std::fs::read_to_string(p).unwrap();
            assert!(body.contains("\"schema\""), "{p:?}");
        }
    }
}

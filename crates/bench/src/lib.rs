//! The OBIWAN benchmark harness.
//!
//! Regenerates every experimental artifact in the paper's evaluation
//! (§4): the LMI/RMI constants quoted in §4.1, the RMI-vs-LMI curves of
//! Figure 4, the incremental-replication curves of Figure 5, and the
//! cluster-replication curves of Figure 6 — plus shape checks asserting the
//! paper's qualitative conclusions hold on this implementation.
//!
//! Run `cargo run -p obiwan-bench --bin figures -- all` to print every
//! table, or see the Criterion benches for real-CPU microbenchmarks.
//!
//! Experiments run in deterministic virtual time
//! ([`ClockMode::VirtualOnly`](obiwan_util::ClockMode)): network physics
//! follow the paper's 10 Mb/s LAN link model and CPU costs follow the
//! calibrated [`CostModel`](obiwan_util::CostModel), so the *shapes* (who
//! wins, by what factor, where crossovers fall) are reproducible on any
//! machine.

pub mod churn;
pub mod emit;
pub mod experiments;
pub mod report;
pub mod scale;
pub mod wal;
pub mod workload;

pub use emit::{
    bench_demand_json, bench_rpc_json, demand_bench, rpc_bench, write_bench_files, DemandPoint,
    RpcScenario,
};
pub use churn::{
    bench_churn_json, churn_bench, write_churn_file, ChurnConfig, ChurnReport, ChurnTick,
};
pub use scale::{bench_scale_json, scale_bench, write_scale_file, ScaleConfig, ScalePoint};
pub use wal::{
    append_bench, bench_wal_json, recovery_bench, write_wal_file, AppendPoint, RecoveryPoint,
    WalConfig,
};
pub use experiments::{
    e1_constants, e6_prefetch, e7_latency_distributions, fig4, fig5_series, fig6_series,
    verify_shapes, E1Result, E6Result, E7Row,
    Fig4Row, SeriesPoint, ShapeReport, FIG4_COUNTS, FIG4_SIZES, FIG56_SIZES, FIG56_STEPS, LIST_LEN,
};
pub use workload::{single_object, payload_list, ListWorkload, SingleWorkload};

//! Membership-churn bench: a site joins a live world and mastership is
//! handed off, while the rest of the world keeps serving.
//!
//! The world is the paper testbed (deterministic virtual time, 10 Mb/s
//! LAN, RMI ≈ 2.8 ms). One provider masters a set of counters; a fleet of
//! client sites replicates them and runs a steady `incr` + `put`
//! write-back workload, measured in ticks. The scenario then scripts the
//! two churn events the acceptance criteria name:
//!
//! * **Join.** After a warmup, a new site joins over a lossy link
//!   (default 20% frame loss) and bootstraps every exported counter
//!   through the ordinary demand pipeline — `join` → `lookup` → `get` —
//!   a few counters per tick, while the veterans keep putting. The bench
//!   records the joiner's *time to first serve* (virtual time from the
//!   `join` call to its first successful local read) and the throughput
//!   dip its bootstrap traffic causes.
//! * **Handoff.** After the join phase, the provider hands mastership of
//!   one counter to a successor site over a link degraded to the same
//!   loss rate. Clients keep writing that counter throughout: their next
//!   put is answered with `MovedMaster` and transparently redirected.
//!
//! Put accounting is by *version continuity*: every acknowledged put
//! advances the master version of its counter by exactly one, so for each
//! counter `final_version == 1 + acked_puts` iff no put was lost (applied
//! nowhere) or duplicated (applied twice). The summary reports `lost` and
//! `duplicated` across the handoff — both must be zero.
//!
//! All numbers are deterministic virtual time: shapes and ratios are
//! reproducible on any machine for a given seed.

use obiwan_core::demo::Counter;
use obiwan_core::{ObiProcess, ObiValue, ObiWorld, ReplicationMode, RetryPolicy};
use obiwan_net::conditions;
use obiwan_util::{ObjId, SiteId};

/// Shape of one churn-bench run.
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total sites in the world once the joiner has arrived: one
    /// provider, one handoff successor, one joiner, and the rest steady
    /// clients (the name server rides outside this count).
    pub sites: usize,
    /// Counters mastered at the provider (the joiner bootstraps all of
    /// them; counter 0 is the one handed off).
    pub counters: usize,
    /// Steady-state ticks before the join — the throughput baseline.
    pub warmup_ticks: usize,
    /// Ticks of the join phase; the joiner's bootstrap is spread across
    /// them, a few counters per tick.
    pub join_ticks: usize,
    /// Ticks after the handoff (the handoff itself is scripted at the
    /// start of the first post tick).
    pub post_ticks: usize,
    /// Write-backs per steady client per tick (the joiner ramps up at
    /// one put per bootstrapped replica per tick instead).
    pub ops_per_tick: usize,
    /// Frame-loss probability on the joiner's links and on the
    /// provider–successor link during the handoff.
    pub loss: f64,
    /// Seed for the transport's loss/jitter stream.
    pub seed: u64,
}

impl ChurnConfig {
    /// The acceptance-criteria world: 128 sites, 20% loss.
    pub fn full() -> Self {
        ChurnConfig {
            sites: 128,
            counters: 8,
            warmup_ticks: 5,
            join_ticks: 5,
            post_ticks: 5,
            ops_per_tick: 1,
            loss: 0.2,
            seed: 42,
        }
    }

    /// A reduced world for CI smoke runs: same phases, 12 sites.
    pub fn smoke() -> Self {
        ChurnConfig {
            sites: 12,
            counters: 4,
            warmup_ticks: 3,
            join_ticks: 3,
            post_ticks: 3,
            ops_per_tick: 6,
            loss: 0.2,
            seed: 42,
        }
    }

    /// Steady client sites (total minus provider, successor and joiner).
    pub fn clients(&self) -> usize {
        self.sites.saturating_sub(3)
    }

    /// Ticks in the whole run.
    pub fn total_ticks(&self) -> usize {
        self.warmup_ticks + self.join_ticks + self.post_ticks
    }
}

/// One measured tick.
#[derive(Debug, Clone)]
pub struct ChurnTick {
    /// Tick index from 0.
    pub tick: usize,
    /// `"warmup"`, `"join"` or `"post"`.
    pub phase: &'static str,
    /// Acknowledged puts in this tick.
    pub acked: u64,
    /// Virtual time the tick took.
    pub virtual_ms: f64,
    /// Acknowledged puts per virtual second.
    pub ops_per_sec: f64,
}

/// The whole run, ticks plus the summary the acceptance criteria read.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Per-tick throughput trace.
    pub ticks: Vec<ChurnTick>,
    /// Mean throughput over the warmup ticks.
    pub baseline_ops_per_sec: f64,
    /// Worst tick throughput after the join begins, as a fraction of the
    /// baseline. The acceptance floor is 0.7.
    pub min_throughput_ratio: f64,
    /// Virtual ms from the joiner's `join` call to its first successful
    /// local read of a bootstrapped replica.
    pub time_to_first_serve_ms: f64,
    /// Puts the joiner itself got acknowledged (it serves, not just
    /// bootstraps).
    pub joiner_acked: u64,
    /// `handoff` calls the provider needed under loss (retries inside
    /// the RPC layer are not counted — this is scripted-level attempts).
    pub handoff_attempts: u64,
    /// `MovedMaster` redirects clients absorbed after the handoff,
    /// summed across all sites.
    pub moved_master_redirects: u64,
    /// Puts acknowledged but never applied (version gap). Must be 0.
    pub lost_puts: u64,
    /// Puts applied more than once (version overshoot). Must be 0.
    pub duplicated_puts: u64,
    /// Puts that returned an error (expected 0 with the patient retry
    /// policy the bench installs).
    pub put_errors: u64,
}

fn patient(site: &ObiProcess) {
    // 20% per-frame loss means ~36% of calls lose a frame somewhere;
    // 25 retries push the chance of exhausting them below 0.36^26.
    site.set_rpc_policy(RetryPolicy {
        max_retries: 25,
        ..RetryPolicy::default()
    });
}

fn counter_name(i: usize) -> String {
    format!("ctr{i}")
}

fn counter_index(name: &str) -> usize {
    name.strip_prefix("ctr")
        .and_then(|s| s.parse().ok())
        .expect("bench names are ctr{i}")
}

/// Runs the scenario and returns the full report.
pub fn churn_bench(cfg: &ChurnConfig) -> ChurnReport {
    assert!(cfg.sites >= 4, "need provider, successor, joiner and a client");
    assert!(cfg.counters >= 1 && cfg.counters <= cfg.clients());
    assert!(cfg.warmup_ticks >= 1 && cfg.join_ticks >= 1 && cfg.post_ticks >= 1);

    let mut world = ObiWorld::paper_testbed();
    world.transport().reseed(cfg.seed);
    let provider = world.add_site("provider");
    let successor = world.add_site("successor");
    let clients: Vec<SiteId> = (0..cfg.clients())
        .map(|i| world.add_site(&format!("c{i}")))
        .collect();
    // Everyone enrolls, so the joiner's ack carries the live roster.
    world.site(provider).join().expect("provider join");
    world.site(successor).join().expect("successor join");
    for &c in &clients {
        world.site(c).join().expect("client join");
    }
    patient(world.site(provider));
    for &c in &clients {
        patient(world.site(c));
    }

    let roots: Vec<_> = (0..cfg.counters)
        .map(|i| {
            let root = world.site(provider).create(Counter::new(0));
            world
                .site(provider)
                .export(root, &counter_name(i))
                .expect("export");
            root
        })
        .collect();

    // Each client replicates one counter, round-robin.
    let mut workers = Vec::with_capacity(clients.len());
    for (i, &c) in clients.iter().enumerate() {
        let k = i % cfg.counters;
        let remote = world.site(c).lookup(&counter_name(k)).expect("lookup");
        let replica = world
            .site(c)
            .get(&remote, ReplicationMode::incremental(1))
            .expect("bootstrap get");
        workers.push((c, replica, k));
    }

    // Version-continuity ledger: masters are created at version 1 and
    // every acknowledged put must advance by exactly one.
    let mut acked = vec![0u64; cfg.counters];
    let mut final_version = vec![1u64; cfg.counters];
    let mut put_errors = 0u64;

    let mut joiner: Option<SiteId> = None;
    let mut joiner_replicas: Vec<(obiwan_core::ObjRef, usize)> = Vec::new();
    let mut pending: Vec<(String, ObjId)> = Vec::new();
    let boot_per_tick = cfg.counters.div_ceil(cfg.join_ticks);
    let mut first_serve_ms = f64::NAN;
    let mut join_t0 = 0u64;
    let mut joiner_acked = 0u64;
    let mut handoff_attempts = 0u64;

    let mut ticks = Vec::with_capacity(cfg.total_ticks());
    for tick in 0..cfg.total_ticks() {
        let phase = if tick < cfg.warmup_ticks {
            "warmup"
        } else if tick < cfg.warmup_ticks + cfg.join_ticks {
            "join"
        } else {
            "post"
        };
        let t_start = world.clock().virtual_nanos();
        let mut tick_acked = 0u64;

        if tick == cfg.warmup_ticks {
            // The join begins: a new site arrives over lossy links to the
            // whole world (name server included) and enrolls.
            let j = world.add_site_with_link("joiner", conditions::paper_lan().with_loss(cfg.loss));
            patient(world.site(j));
            join_t0 = world.clock().virtual_nanos();
            let info = world.site(j).join().expect("joiner join");
            pending = info.names;
            pending.reverse(); // pop() bootstraps in name order
            joiner = Some(j);
        }

        if tick == cfg.warmup_ticks + cfg.join_ticks {
            // The handoff: the provider-successor link degrades to the
            // scenario's loss rate, then mastership of counter 0 moves.
            world.transport().with_topology_mut(|t| {
                t.set_link_symmetric(
                    provider,
                    successor,
                    conditions::paper_lan().with_loss(cfg.loss),
                )
            });
            loop {
                handoff_attempts += 1;
                match world.site(provider).handoff(roots[0], successor) {
                    Ok(_version) => break,
                    Err(e) if e.is_connectivity() => continue,
                    Err(e) => panic!("handoff failed definitively: {e}"),
                }
            }
        }

        if let Some(j) = joiner {
            // Bootstrap a slice of the remaining names through the demand
            // pipeline, serving (a local read) as soon as each lands.
            for _ in 0..boot_per_tick {
                let Some((name, _id)) = pending.pop() else { break };
                let remote = world.site(j).lookup(&name).expect("joiner lookup");
                let replica = world
                    .site(j)
                    .get(&remote, ReplicationMode::incremental(1))
                    .expect("joiner get");
                world
                    .site(j)
                    .invoke(replica, "read", ObiValue::Null)
                    .expect("joiner first read");
                if first_serve_ms.is_nan() {
                    first_serve_ms =
                        (world.clock().virtual_nanos() - join_t0) as f64 / 1e6;
                }
                joiner_replicas.push((replica, counter_index(&name)));
            }
        }

        // The steady workload: every client mutates its replica and
        // writes it back; the joiner ramps at one put per replica.
        for &(c, replica, k) in &workers {
            for _ in 0..cfg.ops_per_tick {
                world
                    .site(c)
                    .invoke(replica, "incr", ObiValue::Null)
                    .expect("incr");
                match world.site(c).put(replica) {
                    Ok(version) => {
                        acked[k] += 1;
                        final_version[k] = final_version[k].max(version);
                        tick_acked += 1;
                    }
                    Err(_) => put_errors += 1,
                }
            }
        }
        if let Some(j) = joiner {
            for &(replica, k) in &joiner_replicas {
                world
                    .site(j)
                    .invoke(replica, "incr", ObiValue::Null)
                    .expect("joiner incr");
                match world.site(j).put(replica) {
                    Ok(version) => {
                        acked[k] += 1;
                        final_version[k] = final_version[k].max(version);
                        tick_acked += 1;
                        joiner_acked += 1;
                    }
                    Err(_) => put_errors += 1,
                }
            }
        }

        let virtual_ms = (world.clock().virtual_nanos() - t_start) as f64 / 1e6;
        let ops_per_sec = tick_acked as f64 / (virtual_ms / 1e3).max(f64::MIN_POSITIVE);
        ticks.push(ChurnTick {
            tick,
            phase,
            acked: tick_acked,
            virtual_ms,
            ops_per_sec,
        });
    }

    let baseline_ops_per_sec = ticks[..cfg.warmup_ticks]
        .iter()
        .map(|t| t.ops_per_sec)
        .sum::<f64>()
        / cfg.warmup_ticks as f64;
    let min_throughput_ratio = ticks[cfg.warmup_ticks..]
        .iter()
        .map(|t| t.ops_per_sec / baseline_ops_per_sec.max(f64::MIN_POSITIVE))
        .fold(f64::INFINITY, f64::min);

    let mut lost_puts = 0u64;
    let mut duplicated_puts = 0u64;
    for k in 0..cfg.counters {
        let expected = 1 + acked[k];
        lost_puts += expected.saturating_sub(final_version[k]);
        duplicated_puts += final_version[k].saturating_sub(expected);
    }
    let mut moved_master_redirects = world
        .site(provider)
        .metrics()
        .snapshot()
        .moved_master_redirects;
    moved_master_redirects += world
        .site(successor)
        .metrics()
        .snapshot()
        .moved_master_redirects;
    for &c in &clients {
        moved_master_redirects += world.site(c).metrics().snapshot().moved_master_redirects;
    }
    if let Some(j) = joiner {
        moved_master_redirects += world.site(j).metrics().snapshot().moved_master_redirects;
    }

    ChurnReport {
        ticks,
        baseline_ops_per_sec,
        min_throughput_ratio,
        time_to_first_serve_ms: first_serve_ms,
        joiner_acked,
        handoff_attempts,
        moved_master_redirects,
        lost_puts,
        duplicated_puts,
        put_errors,
    }
}

/// `BENCH_churn.json` contents (schema `obiwan-bench-churn/1`).
///
/// `clock` is `"virtual"`: every number is deterministic for a given
/// seed, so the summary fields are comparable across machines.
pub fn bench_churn_json(cfg: &ChurnConfig) -> String {
    use std::fmt::Write as _;
    let report = churn_bench(cfg);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"obiwan-bench-churn/1\",\n");
    out.push_str("  \"clock\": \"virtual\",\n");
    let _ = writeln!(
        out,
        "  \"workload\": {{\"sites\": {}, \"counters\": {}, \"warmup_ticks\": {}, \
         \"join_ticks\": {}, \"post_ticks\": {}, \"ops_per_tick\": {}, \"loss\": {}, \
         \"seed\": {}}},",
        cfg.sites,
        cfg.counters,
        cfg.warmup_ticks,
        cfg.join_ticks,
        cfg.post_ticks,
        cfg.ops_per_tick,
        cfg.loss,
        cfg.seed,
    );
    out.push_str("  \"ticks\": [\n");
    for (i, t) in report.ticks.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"tick\": {}, \"phase\": \"{}\", \"acked\": {}, \"virtual_ms\": {:.3}, \
             \"ops_per_sec\": {:.1}}}",
            t.tick, t.phase, t.acked, t.virtual_ms, t.ops_per_sec,
        );
        out.push_str(if i + 1 < report.ticks.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"summary\": {{\"baseline_ops_per_sec\": {:.1}, \"min_throughput_ratio\": {:.3}, \
         \"time_to_first_serve_ms\": {:.3}, \"joiner_acked\": {}, \"handoff_attempts\": {}, \
         \"moved_master_redirects\": {}, \"lost_puts\": {}, \"duplicated_puts\": {}, \
         \"put_errors\": {}}}",
        report.baseline_ops_per_sec,
        report.min_throughput_ratio,
        report.time_to_first_serve_ms,
        report.joiner_acked,
        report.handoff_attempts,
        report.moved_master_redirects,
        report.lost_puts,
        report.duplicated_puts,
        report.put_errors,
    );
    out.push_str("}\n");
    out
}

/// Writes `BENCH_churn.json` into `dir`; returns the path written.
pub fn write_churn_file(
    dir: &std::path::Path,
    cfg: &ChurnConfig,
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join("BENCH_churn.json");
    std::fs::write(&path, bench_churn_json(cfg))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_meets_the_acceptance_floors() {
        let cfg = ChurnConfig::smoke();
        let report = churn_bench(&cfg);
        assert_eq!(report.ticks.len(), cfg.total_ticks());
        assert_eq!(report.put_errors, 0);
        // The joiner served while the world kept putting...
        assert!(report.time_to_first_serve_ms > 0.0);
        assert!(report.joiner_acked > 0);
        // ...and the dip its bootstrap caused stayed above the floor.
        assert!(
            report.min_throughput_ratio >= 0.7,
            "throughput dipped to {:.3} of baseline",
            report.min_throughput_ratio
        );
        // The handoff under loss moved counter 0 exactly-once: version
        // continuity holds for every counter.
        assert!(report.handoff_attempts >= 1);
        assert!(report.moved_master_redirects >= 1, "no client was redirected");
        assert_eq!(report.lost_puts, 0);
        assert_eq!(report.duplicated_puts, 0);
    }

    #[test]
    fn churn_is_deterministic_for_a_seed() {
        let cfg = ChurnConfig {
            sites: 6,
            counters: 2,
            warmup_ticks: 2,
            join_ticks: 2,
            post_ticks: 2,
            ops_per_tick: 3,
            loss: 0.2,
            seed: 7,
        };
        let a = bench_churn_json(&cfg);
        let b = bench_churn_json(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_json_is_structurally_sound() {
        let json = bench_churn_json(&ChurnConfig {
            sites: 5,
            counters: 2,
            warmup_ticks: 1,
            join_ticks: 1,
            post_ticks: 1,
            ops_per_tick: 2,
            loss: 0.1,
            seed: 3,
        });
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"schema\": \"obiwan-bench-churn/1\""));
        assert!(json.contains("\"clock\": \"virtual\""));
        assert!(json.contains("\"phase\": \"warmup\""));
        assert!(json.contains("\"phase\": \"join\""));
        assert!(json.contains("\"phase\": \"post\""));
        assert!(json.contains("\"min_throughput_ratio\""));
        assert!(json.contains("\"time_to_first_serve_ms\""));
        assert!(json.contains("\"lost_puts\": 0"));
        assert!(json.contains("\"duplicated_puts\": 0"));
    }
}

//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p obiwan-bench --bin figures -- [e1|fig4|fig5|fig6|verify|bench|scale|churn|wal|all]
//! ```
//!
//! `bench` writes the machine-readable perf trajectory (`BENCH_demand.json`
//! and `BENCH_rpc.json`) into the current directory instead of printing.
//! `scale` writes `BENCH_scale.json` (many-site worker-pool sweep, real
//! wall-clock time); `scale smoke` runs the reduced CI-sized world.
//! `wal` writes `BENCH_wal.json` (WAL append throughput vs group-commit
//! size and recovery time vs log length); `wal smoke` runs the reduced
//! sweep. `churn` writes `BENCH_churn.json` (live join + mastership
//! handoff under loss, virtual time); `churn smoke` runs the CI-sized
//! world.
//!
//! All numbers are deterministic virtual-time milliseconds on the
//! paper-testbed model (10 Mb/s LAN, LMI ≈ 2 µs, RMI ≈ 2.8 ms).

use obiwan_bench::report::{fmt_ms, Table};
use obiwan_bench::{
    e1_constants, e6_prefetch, e7_latency_distributions, fig4, fig5_series, fig6_series,
    verify_shapes, FIG56_SIZES, FIG56_STEPS, FIG4_SIZES, LIST_LEN,
};
use std::time::Duration;

fn print_e1() {
    let e1 = e1_constants();
    println!("## E1 — §4.1 constants (paper: LMI = 2 us, RMI = 2.8 ms)\n");
    let mut t = Table::new(["invocation kind", "paper", "measured"]);
    t.row([
        "LMI (local, on replica)",
        "0.002 ms",
        &format!("{} ms", fmt_ms(e1.lmi)),
    ]);
    t.row(["RMI (remote)", "2.8 ms", &format!("{} ms", fmt_ms(e1.rmi))]);
    println!("{}", t.render());
}

fn print_fig4() {
    println!("## Figure 4 — RMI vs LMI, total time (ms) vs number of invocations\n");
    println!("LMI includes replica creation and the final put back to the master.\n");
    let rows = fig4();
    let mut header: Vec<String> = vec!["invocations".into(), "RMI".into()];
    for s in FIG4_SIZES {
        header.push(format!("LMI {}", size_label(*s)));
    }
    let mut t = Table::new(header);
    for row in &rows {
        let mut cells: Vec<String> = vec![row.invocations.to_string(), fmt_ms(row.rmi)];
        for (_, d) in &row.lmi {
            cells.push(fmt_ms(*d));
        }
        t.row(cells);
    }
    println!("{}", t.render());
}

fn size_label(bytes: usize) -> String {
    if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}K", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

fn print_series(
    title: &str,
    note: &str,
    series_fn: impl Fn(usize, usize) -> Vec<obiwan_bench::SeriesPoint>,
) {
    println!("{title}\n");
    println!("{note}\n");
    for &size in FIG56_SIZES {
        println!("### {} objects, list of {LIST_LEN}\n", size_label(size));
        let curves: Vec<(usize, Vec<obiwan_bench::SeriesPoint>)> = FIG56_STEPS
            .iter()
            .map(|&step| (step, series_fn(size, step)))
            .collect();
        let mut header: Vec<String> = vec!["invocation".into()];
        for (step, _) in &curves {
            header.push(format!("step {step}"));
        }
        let mut t = Table::new(header);
        let checkpoints: Vec<usize> = (1..=10).map(|i| i * LIST_LEN / 10).collect();
        let mut rows_iter = std::iter::once(1usize).chain(checkpoints);
        // Deduplicate if LIST_LEN/10 == 1.
        let mut seen = std::collections::BTreeSet::new();
        for cp in &mut rows_iter {
            if !seen.insert(cp) {
                continue;
            }
            let mut cells: Vec<String> = vec![cp.to_string()];
            for (_, series) in &curves {
                cells.push(fmt_ms(series[cp - 1].cumulative));
            }
            t.row(cells);
        }
        println!("{}", t.render());
        let mut totals = Table::new(["step", "total (ms)", "time to 1st invocation (ms)"]);
        for (step, series) in &curves {
            totals.row([
                step.to_string(),
                fmt_ms(series.last().unwrap().cumulative),
                fmt_ms(series[0].cumulative),
            ]);
        }
        println!("{}", totals.render());
    }
}

fn print_e6() {
    println!("## E6 (extension) — prefetching during think time (paper §2.1, footnote)\n");
    println!("64 B objects, list of {LIST_LEN}, step 10. Latency = what one invocation");
    println!("costs the caller; prefetch moves fetch work into think time.\n");
    let r = e6_prefetch();
    let mut t = Table::new(["strategy", "worst invocation latency", "total elapsed"]);
    t.row([
        "fault on demand",
        &format!("{} ms", fmt_ms(r.on_demand_worst)),
        &format!("{} ms", fmt_ms(r.on_demand_total)),
    ]);
    t.row([
        "prefetch ahead",
        &format!("{} ms", fmt_ms(r.prefetch_worst)),
        &format!("{} ms", fmt_ms(r.prefetch_total)),
    ]);
    println!("{}", t.render());
}

fn print_e7() {
    println!("## E7 (extension) — per-invocation latency distributions (ms)\n");
    println!("64 B objects, list of {LIST_LEN}: what one invocation costs the caller,");
    println!("across strategies. Figure 5's cumulative view hides these tails.\n");
    let rows = e7_latency_distributions();
    let mut t = Table::new(["strategy", "p50", "p90", "p99", "max", "mean"]);
    for r in &rows {
        t.row([
            r.strategy.clone(),
            fmt_ms(r.latency.quantile(0.5)),
            fmt_ms(r.latency.quantile(0.9)),
            fmt_ms(r.latency.quantile(0.99)),
            fmt_ms(r.latency.max()),
            fmt_ms(r.latency.mean()),
        ]);
    }
    println!("{}", t.render());
}

/// Tidy machine-readable dump of every curve, for external plotting:
/// `experiment,size_bytes,series,x,ms`.
fn print_csv() {
    println!("experiment,size_bytes,series,x,ms");
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    for row in fig4() {
        println!("fig4,0,RMI,{},{}", row.invocations, ms(row.rmi));
        for (size, d) in &row.lmi {
            println!("fig4,{size},LMI,{},{}", row.invocations, ms(*d));
        }
    }
    for &size in FIG56_SIZES {
        for &step in FIG56_STEPS {
            for p in fig5_series(size, step) {
                println!("fig5,{size},step{step},{},{}", p.invocation, ms(p.cumulative));
            }
            for p in fig6_series(size, step) {
                println!("fig6,{size},step{step},{},{}", p.invocation, ms(p.cumulative));
            }
        }
    }
}

fn print_verify() -> bool {
    println!("## E5 — shape verification (the paper's §4 conclusions)\n");
    let report = verify_shapes();
    let mut t = Table::new(["ok", "claim", "evidence"]);
    for c in &report.checks {
        t.row([
            if c.pass { "PASS" } else { "FAIL" },
            c.claim.as_str(),
            c.evidence.as_str(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "{} of {} checks passed\n",
        report.checks.iter().filter(|c| c.pass).count(),
        report.checks.len()
    );
    report.all_pass()
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let started = std::time::Instant::now();
    let mut ok = true;
    match which.as_str() {
        "e1" => print_e1(),
        "fig4" => print_fig4(),
        "fig5" => print_series(
            "## Figure 5 — incremental replication (per-object proxy pairs), cumulative ms",
            "Each object carries its own proxy-in/proxy-out pair and can be individually updated.",
            fig5_series,
        ),
        "fig6" => print_series(
            "## Figure 6 — cluster replication (one proxy pair per cluster), cumulative ms",
            "Objects are replicated in clusters sharing a single proxy pair; members cannot be individually updated.",
            fig6_series,
        ),
        "e6" => print_e6(),
        "e7" => print_e7(),
        "csv" => {
            print_csv();
            return;
        }
        "verify" => ok = print_verify(),
        "bench" => {
            let cwd = std::env::current_dir().expect("cwd");
            let paths = obiwan_bench::write_bench_files(&cwd).expect("write BENCH_*.json");
            for p in &paths {
                println!("wrote {}", p.display());
            }
        }
        "scale" => {
            let cfg = match std::env::args().nth(2).as_deref() {
                Some("smoke") => obiwan_bench::ScaleConfig::smoke(),
                _ => obiwan_bench::ScaleConfig::full(),
            };
            println!(
                "scale: {} sites, {} objects, {} ops/point, workers {:?} (real time)",
                cfg.sites(),
                cfg.objects(),
                cfg.ops_per_point(),
                cfg.workers
            );
            let cwd = std::env::current_dir().expect("cwd");
            let path = obiwan_bench::write_scale_file(&cwd, &cfg).expect("write BENCH_scale.json");
            println!("wrote {}", path.display());
        }
        "churn" => {
            let cfg = match std::env::args().nth(2).as_deref() {
                Some("smoke") => obiwan_bench::ChurnConfig::smoke(),
                _ => obiwan_bench::ChurnConfig::full(),
            };
            println!(
                "churn: {} sites, {} counters, {} ticks, loss {} (virtual time)",
                cfg.sites,
                cfg.counters,
                cfg.total_ticks(),
                cfg.loss
            );
            let cwd = std::env::current_dir().expect("cwd");
            let path = obiwan_bench::write_churn_file(&cwd, &cfg).expect("write BENCH_churn.json");
            println!("wrote {}", path.display());
        }
        "wal" => {
            let cfg = match std::env::args().nth(2).as_deref() {
                Some("smoke") => obiwan_bench::WalConfig::smoke(),
                _ => obiwan_bench::WalConfig::full(),
            };
            println!(
                "wal: {} appends x group_commit {:?}, recovery sweep {:?} (real time)",
                cfg.append_records, cfg.group_commits, cfg.recovery_lens
            );
            let cwd = std::env::current_dir().expect("cwd");
            let path = obiwan_bench::write_wal_file(&cwd, &cfg).expect("write BENCH_wal.json");
            println!("wrote {}", path.display());
        }
        "all" => {
            print_e1();
            print_fig4();
            print_series(
                "## Figure 5 — incremental replication (per-object proxy pairs), cumulative ms",
                "Each object carries its own proxy-in/proxy-out pair and can be individually updated.",
                fig5_series,
            );
            print_series(
                "## Figure 6 — cluster replication (one proxy pair per cluster), cumulative ms",
                "Objects are replicated in clusters sharing a single proxy pair; members cannot be individually updated.",
                fig6_series,
            );
            print_e6();
            print_e7();
            ok = print_verify();
        }
        other => {
            eprintln!("unknown experiment `{other}`; expected e1|fig4|fig5|fig6|e6|e7|csv|verify|bench|scale|churn|wal|all");
            std::process::exit(2);
        }
    }
    let elapsed = started.elapsed();
    println!(
        "(regenerated in {} of real time)",
        human(elapsed)
    );
    if !ok {
        std::process::exit(1);
    }
}

fn human(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.1} s", d.as_secs_f64())
    } else {
        format!("{} ms", d.as_millis())
    }
}

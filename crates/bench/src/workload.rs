//! Workload builders matching the paper's evaluation setup.
//!
//! §4.2: "We use a list with 1000 objects (all with the same size) that is
//! created in site S2. This list is then replicated into another site S1."
//! These builders create exactly that world: a consumer site S1, a provider
//! site S2, and a payload list exported under a well-known name.

use obiwan_core::demo::PayloadNode;
use obiwan_core::{ObiWorld, ObjRef};
use obiwan_rmi::RemoteRef;
use obiwan_util::SiteId;

/// Name the list head is exported under.
pub const LIST_NAME: &str = "list";

/// A consumer/provider pair with an exported payload list.
pub struct ListWorkload {
    /// The world (paper-testbed conditions).
    pub world: ObiWorld,
    /// The replicating site (the paper's S1).
    pub consumer: SiteId,
    /// The providing site (the paper's S2).
    pub provider: SiteId,
    /// Remote reference to the list head.
    pub head: RemoteRef,
    /// Local (provider-side) references to every node, head first.
    pub nodes: Vec<ObjRef>,
    /// List length.
    pub n: usize,
    /// Payload bytes per object.
    pub size: usize,
}

/// Builds the paper's list workload: `n` [`PayloadNode`]s of `size` bytes
/// each, created at the provider and exported under [`LIST_NAME`].
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn payload_list(n: usize, size: usize) -> ListWorkload {
    assert!(n > 0, "list must have at least one node");
    let mut world = ObiWorld::paper_testbed();
    let consumer = world.add_site("S1");
    let provider = world.add_site("S2");

    let mut nodes: Vec<ObjRef> = Vec::with_capacity(n);
    let mut next: Option<ObjRef> = None;
    for i in (0..n).rev() {
        let mut node = PayloadNode::sized(i as i64, size);
        node.set_next(next);
        let r = world.site(provider).create(node);
        next = Some(r);
        nodes.push(r);
    }
    nodes.reverse();
    world
        .site(provider)
        .export(nodes[0], LIST_NAME)
        .expect("export list head");
    let head = world
        .site(consumer)
        .lookup(LIST_NAME)
        .expect("lookup list head");
    // Setup traffic (binds, lookups) must not pollute measurements.
    world.clock().reset();
    ListWorkload {
        world,
        consumer,
        provider,
        head,
        nodes,
        n,
        size,
    }
}

/// A consumer/provider pair with a single exported payload object.
pub struct SingleWorkload {
    /// The world (paper-testbed conditions).
    pub world: ObiWorld,
    /// The invoking site.
    pub consumer: SiteId,
    /// The object's home site.
    pub provider: SiteId,
    /// Remote reference to the object.
    pub object: RemoteRef,
    /// Provider-side reference.
    pub master: ObjRef,
}

/// Builds the single-object workload of §4.1: one [`PayloadNode`] of
/// `size` bytes exported from the provider.
pub fn single_object(size: usize) -> SingleWorkload {
    let mut world = ObiWorld::paper_testbed();
    let consumer = world.add_site("S1");
    let provider = world.add_site("S2");
    let master = world.site(provider).create(PayloadNode::sized(0, size));
    world
        .site(provider)
        .export(master, "object")
        .expect("export object");
    let object = world
        .site(consumer)
        .lookup("object")
        .expect("lookup object");
    world.clock().reset();
    SingleWorkload {
        world,
        consumer,
        provider,
        object,
        master,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_core::{ObiValue, ReplicationMode};

    #[test]
    fn list_workload_links_all_nodes() {
        let w = payload_list(5, 64);
        assert_eq!(w.nodes.len(), 5);
        assert_eq!(w.head.id(), w.nodes[0].id());
        // Walk the list at the provider.
        let mut cur = w.nodes[0];
        let mut seen = 0;
        loop {
            let out = w
                .world
                .site(w.provider)
                .invoke(cur, "touch", ObiValue::Null)
                .unwrap();
            seen += 1;
            match out.as_ref_id() {
                Some(id) => cur = id.into(),
                None => break,
            }
        }
        assert_eq!(seen, 5);
    }

    #[test]
    fn workload_clock_starts_at_zero() {
        let w = payload_list(3, 64);
        assert_eq!(w.world.clock().virtual_nanos(), 0);
        let s = single_object(64);
        assert_eq!(s.world.clock().virtual_nanos(), 0);
    }

    #[test]
    fn single_workload_round_trips() {
        let s = single_object(1024);
        let replica = s
            .world
            .site(s.consumer)
            .get(&s.object, ReplicationMode::incremental(1))
            .unwrap();
        let len = s
            .world
            .site(s.consumer)
            .invoke(replica, "payload_len", ObiValue::Null)
            .unwrap();
        assert_eq!(len, ObiValue::I64(1024));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_list_is_rejected() {
        let _ = payload_list(0, 64);
    }
}

//! Plain-text table rendering for the figures binary.

use std::fmt::Write as _;
use std::time::Duration;

/// Formats a duration as milliseconds with sensible precision.
pub fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// A simple fixed-width table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with right-aligned numeric-looking columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cell.len();
                // Right-align everything but the first column.
                if i == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "{}{cell}", " ".repeat(pad));
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ms_precision_bands() {
        assert_eq!(fmt_ms(Duration::from_micros(2)), "0.0020");
        assert_eq!(fmt_ms(Duration::from_micros(2800)), "2.80");
        assert_eq!(fmt_ms(Duration::from_millis(350)), "350");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(["step", "time"]);
        t.row(["1", "3300"]);
        t.row(["1000", "9"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("step"));
        assert!(lines[2].ends_with("3300"));
        assert!(lines[3].ends_with("   9"));
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}

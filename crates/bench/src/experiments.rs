//! The paper's experiments, one function per table/figure.
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`e1_constants`] | §4.1 text: LMI = 2 µs, RMI = 2.8 ms |
//! | [`fig4`] | Figure 4: RMI vs LMI over invocation counts and sizes |
//! | [`fig5_series`] | Figure 5: incremental replication, per-object proxies |
//! | [`fig6_series`] | Figure 6: cluster replication, one proxy pair per cluster |
//! | [`verify_shapes`] | §4's bullet conclusions, asserted |

use crate::workload::{payload_list, single_object};
use obiwan_core::{ObiValue, ObjRef, ReplicationMode};
use std::time::Duration;

/// List length used by Figures 5 and 6 (paper: 1000).
pub const LIST_LEN: usize = 1000;

/// Object sizes of Figure 4 (paper: 16 B … 64 KB).
pub const FIG4_SIZES: &[usize] = &[16, 1024, 4096, 16384, 65536];

/// Invocation counts of Figure 4.
pub const FIG4_COUNTS: &[usize] = &[1, 10, 100, 1000, 10000];

/// Object sizes of Figures 5 and 6 (paper: 64 B, 1 KB, 16 KB).
pub const FIG56_SIZES: &[usize] = &[64, 1024, 16384];

/// Step sizes (objects replicated per fault) of Figures 5 and 6.
pub const FIG56_STEPS: &[usize] = &[1, 10, 100, 1000];

/// §4.1's two constants, measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E1Result {
    /// One local method invocation on a replica.
    pub lmi: Duration,
    /// One remote method invocation.
    pub rmi: Duration,
}

/// Measures the §4.1 constants on the paper-testbed world.
pub fn e1_constants() -> E1Result {
    // LMI: invoke on an existing local replica.
    let w = single_object(64);
    let replica = w
        .world
        .site(w.consumer)
        .get(&w.object, ReplicationMode::incremental(1))
        .expect("replicate");
    w.world.clock().reset();
    w.world
        .site(w.consumer)
        .invoke(replica, "index", ObiValue::Null)
        .expect("lmi");
    let lmi = w.world.clock().elapsed();

    // RMI: invoke the master remotely.
    let w = single_object(64);
    w.world
        .site(w.consumer)
        .invoke_rmi(&w.object, "index", ObiValue::Null)
        .expect("rmi");
    let rmi = w.world.clock().elapsed();
    E1Result { lmi, rmi }
}

/// One row of Figure 4: a fixed invocation count, the RMI total, and the
/// LMI total per object size.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Row {
    /// Number of invocations performed.
    pub invocations: usize,
    /// Total time invoking via RMI (size-independent).
    pub rmi: Duration,
    /// Total time per size via LMI, *including replica creation and the
    /// final put back to the master* (paper: "the execution time of LMI
    /// includes the cost due to the creation of the replica and to update
    /// it back in the master site").
    pub lmi: Vec<(usize, Duration)>,
}

/// Regenerates Figure 4.
pub fn fig4() -> Vec<Fig4Row> {
    FIG4_COUNTS
        .iter()
        .map(|&count| {
            // RMI series: object size is irrelevant (only the invocation
            // crosses the wire); use the smallest.
            let w = single_object(16);
            for _ in 0..count {
                w.world
                    .site(w.consumer)
                    .invoke_rmi(&w.object, "index", ObiValue::Null)
                    .expect("rmi");
            }
            let rmi = w.world.clock().elapsed();

            let lmi = FIG4_SIZES
                .iter()
                .map(|&size| {
                    let w = single_object(size);
                    let replica = w
                        .world
                        .site(w.consumer)
                        .get(&w.object, ReplicationMode::incremental(1))
                        .expect("replicate");
                    for _ in 0..count {
                        w.world
                            .site(w.consumer)
                            .invoke(replica, "index", ObiValue::Null)
                            .expect("lmi");
                    }
                    // Mark dirty so the put carries real state, as in the
                    // paper's update-back-to-master accounting.
                    w.world
                        .site(w.consumer)
                        .invoke(replica, "set_index", ObiValue::I64(1))
                        .expect("dirty");
                    w.world.site(w.consumer).put(replica).expect("put");
                    (size, w.world.clock().elapsed())
                })
                .collect();
            Fig4Row {
                invocations: count,
                rmi,
                lmi,
            }
        })
        .collect()
}

/// One point of a Figure 5/6 curve: cumulative time after the i-th list
/// invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesPoint {
    /// 1-based invocation index.
    pub invocation: usize,
    /// Cumulative elapsed time at that point.
    pub cumulative: Duration,
}

fn walk_series(size: usize, mode: ReplicationMode) -> Vec<SeriesPoint> {
    let w = payload_list(LIST_LEN, size);
    let site = w.world.site(w.consumer);
    let root = site.get(&w.head, mode).expect("initial get");
    let mut points = Vec::with_capacity(LIST_LEN);
    let mut cur: ObjRef = root;
    for i in 1..=LIST_LEN {
        let out = site.invoke(cur, "touch", ObiValue::Null).expect("touch");
        points.push(SeriesPoint {
            invocation: i,
            cumulative: w.world.clock().elapsed(),
        });
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
    assert_eq!(points.len(), LIST_LEN, "walked the whole list");
    points
}

/// Regenerates one Figure 5 curve: incremental replication (per-object
/// proxy pairs), objects of `size` bytes, `step` objects per fault.
pub fn fig5_series(size: usize, step: usize) -> Vec<SeriesPoint> {
    walk_series(size, ReplicationMode::incremental(step))
}

/// Regenerates one Figure 6 curve: cluster replication (one proxy pair per
/// cluster), objects of `size` bytes, clusters of `step` objects.
pub fn fig6_series(size: usize, step: usize) -> Vec<SeriesPoint> {
    walk_series(size, ReplicationMode::cluster(step))
}

/// One shape check: name, pass/fail, human-readable evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeCheck {
    /// What the paper claims.
    pub claim: String,
    /// Whether this implementation reproduces it.
    pub pass: bool,
    /// The numbers behind the verdict.
    pub evidence: String,
}

/// The collected verdicts over every §4 conclusion.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShapeReport {
    /// Individual checks, in paper order.
    pub checks: Vec<ShapeCheck>,
}

impl ShapeReport {
    fn check(&mut self, claim: &str, pass: bool, evidence: String) {
        self.checks.push(ShapeCheck {
            claim: claim.to_owned(),
            pass,
            evidence,
        });
    }

    /// True when every check passed.
    pub fn all_pass(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Asserts the paper's qualitative conclusions (§4.1–§4.3) against fresh
/// runs of every experiment.
pub fn verify_shapes() -> ShapeReport {
    let mut report = ShapeReport::default();

    // --- §4.1 constants -----------------------------------------------------
    let e1 = e1_constants();
    report.check(
        "§4.1: one LMI costs about 2 µs",
        e1.lmi >= Duration::from_micros(1) && e1.lmi <= Duration::from_micros(10),
        format!("measured {:?}", e1.lmi),
    );
    report.check(
        "§4.1: one RMI costs about 2.8 ms",
        e1.rmi >= Duration::from_micros(2200) && e1.rmi <= Duration::from_micros(3500),
        format!("measured {:?}", e1.rmi),
    );

    // --- Figure 4 -----------------------------------------------------------
    let rows = fig4();
    let by_count = |c: usize| rows.iter().find(|r| r.invocations == c).unwrap();
    let lmi_at = |row: &Fig4Row, size: usize| {
        row.lmi
            .iter()
            .find(|(s, _)| *s == size)
            .map(|(_, d)| *d)
            .unwrap()
    };

    let r1k = by_count(1000);
    let r10k = by_count(10000);
    let linear_ratio = ms(r10k.rmi) / ms(r1k.rmi);
    report.check(
        "Fig 4: RMI time grows linearly with invocation count",
        (8.0..=12.0).contains(&linear_ratio),
        format!("t(10000)/t(1000) = {linear_ratio:.2}"),
    );

    let lmi_small_10k = lmi_at(r10k, 16);
    report.check(
        "Fig 4: LMI beats RMI for many invocations and small objects",
        ms(r10k.rmi) / ms(lmi_small_10k) > 10.0,
        format!(
            "RMI {:.1} ms vs LMI(16 B) {:.1} ms at 10000 invocations",
            ms(r10k.rmi),
            ms(lmi_small_10k)
        ),
    );

    let r1 = by_count(1);
    let lmi_small_1 = lmi_at(r1, 16);
    let few_ratio = ms(lmi_small_1) / ms(r1.rmi);
    report.check(
        "Fig 4: for small objects and few invocations RMI and LMI are comparable",
        (0.5..=5.0).contains(&few_ratio),
        format!(
            "LMI(16 B) {:.2} ms vs RMI {:.2} ms at 1 invocation (ratio {few_ratio:.2})",
            ms(lmi_small_1),
            ms(r1.rmi)
        ),
    );

    let lmi_large_1 = lmi_at(r1, 65536);
    report.check(
        "Fig 4: replica creation dominates for large objects at few invocations",
        lmi_large_1 > r1.rmi * 5,
        format!(
            "LMI(64 KB) {:.1} ms vs RMI {:.2} ms at 1 invocation",
            ms(lmi_large_1),
            ms(r1.rmi)
        ),
    );

    // RMI is size-independent: compare two single-object RMI runs.
    let (small, large) = {
        let w = single_object(16);
        for _ in 0..100 {
            w.world
                .site(w.consumer)
                .invoke_rmi(&w.object, "index", ObiValue::Null)
                .unwrap();
        }
        let small = w.world.clock().elapsed();
        let w = single_object(65536);
        for _ in 0..100 {
            w.world
                .site(w.consumer)
                .invoke_rmi(&w.object, "index", ObiValue::Null)
                .unwrap();
        }
        (small, w.world.clock().elapsed())
    };
    let size_ratio = ms(large) / ms(small);
    report.check(
        "Fig 4: with RMI, object size has no influence on invocation time",
        (0.95..=1.05).contains(&size_ratio),
        format!("100 RMIs: 64 KB/16 B time ratio = {size_ratio:.3}"),
    );

    // --- Figure 5 -----------------------------------------------------------
    let totals_64: Vec<(usize, Duration)> = FIG56_STEPS
        .iter()
        .map(|&s| (s, fig5_series(64, s).last().unwrap().cumulative))
        .collect();
    let total = |steps: &[(usize, Duration)], s: usize| {
        steps.iter().find(|(k, _)| *k == s).map(|(_, d)| *d).unwrap()
    };
    let t1 = total(&totals_64, 1);
    let t10 = total(&totals_64, 10);
    let t100 = total(&totals_64, 100);
    let t1000 = total(&totals_64, 1000);
    report.check(
        "Fig 5: replicating one object per fault is the least efficient",
        t1 > t10 && t1 > t100 && t1 > t1000,
        format!(
            "64 B totals: step1 {:.0} ms, step10 {:.0} ms, step100 {:.0} ms, step1000 {:.0} ms",
            ms(t1),
            ms(t10),
            ms(t100),
            ms(t1000)
        ),
    );
    report.check(
        "Fig 5: 10-100 objects per fault is the most efficient regime",
        t10.min(t100) < t1 && t10.min(t100) < t1000,
        format!(
            "min(step10, step100) = {:.0} ms vs step1 {:.0} ms, step1000 {:.0} ms",
            ms(t10.min(t100)),
            ms(t1),
            ms(t1000)
        ),
    );
    report.check(
        "Fig 5: very large steps pay a proxy-pair creation penalty",
        t1000 > t100,
        format!("step1000 {:.0} ms > step100 {:.0} ms", ms(t1000), ms(t100)),
    );
    let first_1 = fig5_series(64, 1)[0].cumulative;
    let first_1000 = fig5_series(64, 1000)[0].cumulative;
    report.check(
        "Fig 5 (motivation §2.1): incremental replication lowers first-invocation latency",
        first_1 * 5 < first_1000,
        format!(
            "time to first invocation: step1 {:.1} ms vs step1000 {:.1} ms",
            ms(first_1),
            ms(first_1000)
        ),
    );

    // --- Figure 6 -----------------------------------------------------------
    let c_totals_64: Vec<(usize, Duration)> = FIG56_STEPS
        .iter()
        .map(|&s| (s, fig6_series(64, s).last().unwrap().cumulative))
        .collect();
    let c10 = total(&c_totals_64, 10);
    let c100 = total(&c_totals_64, 100);
    let c1000 = total(&c_totals_64, 1000);
    report.check(
        "Fig 6: clustering beats per-object proxies at the same step size",
        c10 < t10 && c100 < t100 && c1000 < t1000,
        format!(
            "64 B totals, cluster vs incremental: step10 {:.0}/{:.0} ms, step100 {:.0}/{:.0} ms, step1000 {:.0}/{:.0} ms",
            ms(c10),
            ms(t10),
            ms(c100),
            ms(t100),
            ms(c1000),
            ms(t1000)
        ),
    );
    // "The curves are closer": the absolute spread across steps 10..1000
    // (the vertical distance between the curves, as drawn on the paper's
    // shared axis scale) shrinks with clustering because the dominant
    // per-pair cost is gone.
    let spread = |hi: Duration, lo: Duration| ms(hi) - ms(lo);
    let inc_spread = spread(t10.max(t100).max(t1000), t10.min(t100).min(t1000));
    let clu_spread = spread(c10.max(c100).max(c1000), c10.min(c100).min(c1000));
    report.check(
        "Fig 6: the curves are closer than Fig 5's (less sensitive to step size)",
        clu_spread < inc_spread,
        format!(
            "spread over steps 10-1000: cluster {clu_spread:.0} ms vs incremental {inc_spread:.0} ms"
        ),
    );

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reproduces_the_section_4_1_constants() {
        let e1 = e1_constants();
        assert_eq!(e1.lmi, Duration::from_micros(2));
        assert!(e1.rmi > Duration::from_millis(2), "{:?}", e1.rmi);
        assert!(e1.rmi < Duration::from_micros(3500), "{:?}", e1.rmi);
    }

    #[test]
    fn fig4_has_full_grid() {
        let rows = fig4();
        assert_eq!(rows.len(), FIG4_COUNTS.len());
        for row in &rows {
            assert_eq!(row.lmi.len(), FIG4_SIZES.len());
            assert!(row.rmi > Duration::ZERO);
        }
        // Totals increase with invocation count.
        for pair in rows.windows(2) {
            assert!(pair[1].rmi > pair[0].rmi);
        }
    }

    #[test]
    fn fig5_series_shows_steps_at_batch_boundaries() {
        let series = fig5_series(64, 100);
        assert_eq!(series.len(), LIST_LEN);
        // Step 100 exceeds the reply chunk size, so the batch boundary is
        // a two-invocation ramp: invocation 101 takes the fault (round
        // trip + first chunk installed inline), invocation 102 pumps the
        // parked tail chunks, and from 103 on the walk is plain LMI.
        let fault_jump = series[100].cumulative - series[99].cumulative;
        let pump = series[101].cumulative - series[100].cumulative;
        let smooth = series[103].cumulative - series[102].cumulative;
        assert!(
            fault_jump > smooth * 100,
            "fault {fault_jump:?} vs smooth {smooth:?}"
        );
        assert!(
            pump > fault_jump,
            "materializing the 92-object parked tail ({pump:?}) is the bulk \
             of the batch, deferred out of the fault window ({fault_jump:?})"
        );
    }

    #[test]
    fn series_are_deterministic() {
        let a = fig5_series(64, 10);
        let b = fig5_series(64, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn cluster_series_beats_incremental_for_same_step() {
        let inc = fig5_series(64, 10).last().unwrap().cumulative;
        let clu = fig6_series(64, 10).last().unwrap().cumulative;
        assert!(clu < inc, "cluster {clu:?} vs incremental {inc:?}");
    }

    #[test]
    fn all_shapes_hold() {
        let report = verify_shapes();
        for c in &report.checks {
            assert!(c.pass, "FAILED: {} — {}", c.claim, c.evidence);
        }
        assert!(report.checks.len() >= 10);
    }
}

/// E6 (extension): prefetching during think time eliminates fault latency.
///
/// The paper's footnote to §2.1 claims "a perfect mechanism of pre-fetching
/// in the background can completely eliminate the latency" of incremental
/// replication. We walk the Figure-5 list (64 B objects, step 10) twice:
/// faulting on demand, and prefetching one step ahead during think time.
/// Reported per-invocation latency excludes think time — exactly what the
/// application user experiences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E6Result {
    /// Worst per-invocation latency, faulting on demand (≈ one batch fetch).
    pub on_demand_worst: Duration,
    /// Worst per-invocation latency with prefetch-ahead (≈ pure LMI).
    pub prefetch_worst: Duration,
    /// Total elapsed time on demand (faults included).
    pub on_demand_total: Duration,
    /// Total elapsed with prefetch (prefetch time included — the work does
    /// not disappear, it moves out of the invocation path).
    pub prefetch_total: Duration,
}

/// Runs the E6 prefetch experiment.
pub fn e6_prefetch() -> E6Result {
    const STEP: usize = 10;

    // On demand.
    let w = payload_list(LIST_LEN, 64);
    let site = w.world.site(w.consumer);
    let mut cur = site.get(&w.head, ReplicationMode::incremental(STEP)).expect("get");
    let mut on_demand_worst = Duration::ZERO;
    loop {
        let before = w.world.clock().elapsed();
        let out = site.invoke(cur, "touch", ObiValue::Null).expect("touch");
        on_demand_worst = on_demand_worst.max(w.world.clock().elapsed() - before);
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
    let on_demand_total = w.world.clock().elapsed();

    // Prefetch-ahead: fetch the next step during think time, then invoke.
    let w = payload_list(LIST_LEN, 64);
    let site = w.world.site(w.consumer);
    let root = site.get(&w.head, ReplicationMode::incremental(STEP)).expect("get");
    let mut cur: ObjRef = root;
    let mut prefetch_worst = Duration::ZERO;
    loop {
        // Think time: pull one step ahead (charged to the clock, but not to
        // the invocation latency the user perceives).
        let _ = site.prefetch(root, STEP);
        let before = w.world.clock().elapsed();
        let out = site.invoke(cur, "touch", ObiValue::Null).expect("touch");
        prefetch_worst = prefetch_worst.max(w.world.clock().elapsed() - before);
        match out.as_ref_id() {
            Some(id) => cur = id.into(),
            None => break,
        }
    }
    let prefetch_total = w.world.clock().elapsed();

    E6Result {
        on_demand_worst,
        prefetch_worst,
        on_demand_total,
        prefetch_total,
    }
}

#[cfg(test)]
mod e6_tests {
    use super::*;

    #[test]
    fn prefetch_eliminates_fault_latency() {
        let r = e6_prefetch();
        // On demand, the worst invocation pays a whole batch fetch (tens of
        // ms); with prefetch it pays only LMI (µs).
        assert!(r.on_demand_worst > Duration::from_millis(10), "{r:?}");
        assert!(r.prefetch_worst < Duration::from_micros(50), "{r:?}");
        // The work itself does not vanish: totals are comparable.
        let ratio =
            r.prefetch_total.as_secs_f64() / r.on_demand_total.as_secs_f64();
        assert!((0.8..1.6).contains(&ratio), "total ratio {ratio}");
    }
}

/// E7 (extension): per-invocation latency distributions.
///
/// The paper's Figure 5 shows *cumulative* time, which hides what a user
/// feels: most invocations are 2 µs LMIs, but the faulting ones stall for a
/// whole batch fetch. This experiment reports the full latency
/// distribution per replication strategy (64 B objects, 1000-element
/// list) — the long-tail view of the same data.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Strategy label.
    pub strategy: String,
    /// Latency distribution over all 1000 invocations.
    pub latency: obiwan_util::Histogram,
}

/// Runs the E7 latency-distribution experiment.
pub fn e7_latency_distributions() -> Vec<E7Row> {
    let mut rows = Vec::new();
    let strategies: Vec<(String, ReplicationMode, bool)> = vec![
        ("incremental step 1".into(), ReplicationMode::incremental(1), false),
        ("incremental step 10".into(), ReplicationMode::incremental(10), false),
        ("cluster step 100".into(), ReplicationMode::cluster(100), false),
        ("transitive".into(), ReplicationMode::transitive(), false),
        ("incremental 10 + prefetch".into(), ReplicationMode::incremental(10), true),
    ];
    for (strategy, mode, prefetch) in strategies {
        let w = payload_list(LIST_LEN, 64);
        let site = w.world.site(w.consumer);
        let root = site.get(&w.head, mode).expect("get");
        let mut latency = obiwan_util::Histogram::new();
        let mut cur: ObjRef = root;
        loop {
            if prefetch {
                let _ = site.prefetch(root, 10);
            }
            let before = w.world.clock().elapsed();
            let out = site.invoke(cur, "touch", ObiValue::Null).expect("touch");
            latency.record(w.world.clock().elapsed() - before);
            match out.as_ref_id() {
                Some(id) => cur = id.into(),
                None => break,
            }
        }
        rows.push(E7Row { strategy, latency });
    }
    rows
}

#[cfg(test)]
mod e7_tests {
    use super::*;

    #[test]
    fn latency_distributions_show_the_expected_tails() {
        let rows = e7_latency_distributions();
        let by_name = |n: &str| {
            rows.iter()
                .find(|r| r.strategy.starts_with(n))
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        for r in &rows {
            assert_eq!(r.latency.len(), LIST_LEN as u64);
        }
        // With step 1 every `touch` of a new node faults, so even the
        // median is a whole fetch.
        let s1 = by_name("incremental step 1");
        assert!(s1.latency.quantile(0.5) > Duration::from_millis(1));
        // For every other strategy the median is a plain LMI.
        for r in &rows {
            if r.strategy.starts_with("incremental step 1 ")
                || r.strategy == "incremental step 1"
            {
                continue;
            }
            assert!(
                r.latency.quantile(0.5) < Duration::from_micros(10),
                "{}: median {:?}",
                r.strategy,
                r.latency.quantile(0.5)
            );
        }
        // Step 10: the tail is a batch fetch, the median is an LMI.
        let s10 = by_name("incremental step 10");
        assert!(s10.latency.quantile(0.99) > Duration::from_millis(5));
        // Transitive and prefetch have no fault tail at all.
        let t = by_name("transitive");
        assert!(t.latency.max() < Duration::from_micros(50));
        let p = by_name("incremental 10 + prefetch");
        assert!(p.latency.max() < Duration::from_micros(50));
    }
}

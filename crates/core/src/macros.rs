//! The `obi_class!` macro — our `obicomp`.
//!
//! The original OBIWAN shipped a compiler that augmented programmer-written
//! Java classes with the replication interfaces and generated the proxy
//! classes. Rust has no reflection, so the augmentation happens at macro
//! expansion time instead: the programmer declares fields and methods, and
//! the macro generates the struct, constructors, the full
//! [`ObiObject`](crate::ObiObject) implementation (state serialization,
//! out-edge enumeration, dynamic dispatch) and a registry hook.
//!
//! ```
//! use obiwan_core::{obi_class, ObjRef, ObiValue, ClassRegistry};
//!
//! obi_class! {
//!     /// A minimal replicable pair.
//!     pub class Pair {
//!         fields {
//!             left: i64,
//!             right: i64,
//!         }
//!         methods {
//!             fn sum(this, _ctx, _args) {
//!                 Ok(ObiValue::I64(this.left + this.right))
//!             }
//!         }
//!         mutating {
//!             fn set_left(this, _ctx, args) {
//!                 this.left = args.as_i64().ok_or_else(|| {
//!                     obiwan_core::ObiError::BadArguments("expected i64".into())
//!                 })?;
//!                 Ok(ObiValue::Null)
//!             }
//!         }
//!     }
//! }
//!
//! let registry = ClassRegistry::new();
//! Pair::register(&registry);
//! assert!(registry.knows("Pair"));
//! ```
//!
//! Method bodies receive three names chosen by the caller: the object
//! (`this` above), the [`InvokeCtx`](crate::InvokeCtx), and the argument
//! [`ObiValue`](crate::ObiValue). Methods in the `mutating` block
//! automatically call [`InvokeCtx::mark_modified`](crate::InvokeCtx::mark_modified)
//! before running, which is what bumps master versions and dirties replicas.

/// Declares a replicable OBIWAN class. See the [module docs](self) for the
/// grammar and an example.
#[macro_export]
macro_rules! obi_class {
    (
        $(#[$meta:meta])*
        pub class $name:ident {
            fields { $( $(#[$fmeta:meta])* $fname:ident : $fty:ty ),* $(,)? }
            $(methods { $( $(#[$mmeta:meta])* fn $mname:ident($mself:ident, $mctx:ident, $margs:ident) $mbody:block )* })?
            $(mutating { $( $(#[$umeta:meta])* fn $uname:ident($uself:ident, $uctx:ident, $uargs:ident) $ubody:block )* })?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name {
            $( $(#[$fmeta])* pub $fname : $fty, )*
        }

        impl $name {
            /// The class name used in registries and on the wire.
            pub const CLASS: &'static str = stringify!($name);

            /// Constructs an instance from all fields, in declaration order.
            #[allow(clippy::too_many_arguments)]
            pub fn from_fields($( $fname : $fty ),*) -> Self {
                Self { $( $fname ),* }
            }

            /// Registers this class's decoder with `registry` so replicas
            /// can be materialized on this site.
            pub fn register(registry: &$crate::ClassRegistry) {
                registry.register(
                    Self::CLASS,
                    ::std::sync::Arc::new(|state| {
                        let decoded =
                            <$name as $crate::DecodableObject>::decode_state(state)?;
                        Ok(Box::new(decoded) as Box<dyn $crate::ObiObject>)
                    }),
                );
            }
        }

        impl $crate::DecodableObject for $name {
            fn decode_state(state: &$crate::ObiValue) -> $crate::Result<Self> {
                Ok(Self {
                    $(
                        $fname: $crate::value_fields::field_from_map::<$fty>(
                            state,
                            stringify!($fname),
                        )?,
                    )*
                })
            }
        }

        impl $crate::ObiObject for $name {
            fn class_name(&self) -> &'static str {
                Self::CLASS
            }

            fn state(&self) -> $crate::ObiValue {
                $crate::ObiValue::Map(vec![
                    $(
                        (
                            stringify!($fname).to_owned(),
                            $crate::value_fields::FieldValue::to_value(&self.$fname),
                        ),
                    )*
                ])
            }

            fn refs(&self) -> Vec<$crate::ObjRef> {
                #[allow(unused_mut)]
                let mut out = Vec::new();
                $(
                    $crate::value_fields::FieldValue::collect_obj_refs(
                        &self.$fname,
                        &mut out,
                    );
                )*
                out
            }

            fn invoke(
                &mut self,
                ctx: &mut $crate::InvokeCtx<'_>,
                method: &str,
                args: &$crate::ObiValue,
            ) -> $crate::Result<$crate::ObiValue> {
                match method {
                    $($(
                        stringify!($mname) => {
                            #[allow(unused_variables)]
                            let $mself = &mut *self;
                            #[allow(unused_variables)]
                            let $mctx = &mut *ctx;
                            #[allow(unused_variables)]
                            let $margs = args;
                            $mbody
                        }
                    )*)?
                    $($(
                        stringify!($uname) => {
                            ctx.mark_modified();
                            #[allow(unused_variables)]
                            let $uself = &mut *self;
                            #[allow(unused_variables)]
                            let $uctx = &mut *ctx;
                            #[allow(unused_variables)]
                            let $uargs = args;
                            $ubody
                        }
                    )*)?
                    other => Err($crate::ObiError::NoSuchMethod {
                        object: ctx.self_id(),
                        method: other.to_owned(),
                    }),
                }
            }
        }
    };
}

//! [`ObiWorld`]: a convenience container wiring sites, transport, clock and
//! name server together.
//!
//! A world is the in-process equivalent of "a network of machines in which
//! one or more processes run" (§2): it owns a [`SimTransport`], hosts a
//! dedicated name-server site, and hands out [`ObiProcess`]es.

use crate::demo;
use crate::object::ClassRegistry;
use crate::process::ObiProcess;
use obiwan_net::{conditions, LinkModel, SimTransport, Transport};
use obiwan_rmi::{NameServer, NameServerService, RmiServer};
use obiwan_util::{Clock, ClockMode, CostModel, SiteId};
use std::collections::HashMap;
use std::sync::Arc;

/// The site id reserved for the world's name server.
pub const NAME_SERVER_SITE: SiteId = SiteId::new(0);

/// A self-contained network of OBIWAN sites over a simulated transport.
///
/// # Examples
///
/// ```
/// use obiwan_core::{ObiWorld, ReplicationMode};
/// use obiwan_core::demo::Counter;
///
/// # fn main() -> obiwan_util::Result<()> {
/// let mut world = ObiWorld::paper_testbed();
/// let s1 = world.add_site("S1");
/// let s2 = world.add_site("S2");
///
/// let counter = world.site(s2).create(Counter::new(0));
/// world.site(s2).export(counter, "hits")?;
///
/// let remote = world.site(s1).lookup("hits")?;
/// let replica = world.site(s1).get(&remote, ReplicationMode::incremental(1))?;
/// assert!(world.site(s1).is_replicated(replica));
/// # Ok(())
/// # }
/// ```
pub struct ObiWorld {
    transport: Arc<SimTransport>,
    clock: Clock,
    costs: CostModel,
    registry: ClassRegistry,
    processes: HashMap<SiteId, ObiProcess>,
    site_names: HashMap<SiteId, String>,
    next_site: u32,
}

impl std::fmt::Debug for ObiWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObiWorld")
            .field("sites", &self.processes.len())
            .field("virtual_nanos", &self.clock.virtual_nanos())
            .finish()
    }
}

impl ObiWorld {
    /// A world with an explicit clock mode, link model and cost model.
    ///
    /// The demo classes ([`crate::demo`]) are pre-registered; register
    /// application classes through [`ObiWorld::registry`].
    pub fn new(mode: ClockMode, link: LinkModel, costs: CostModel) -> Self {
        let clock = Clock::new(mode);
        let transport = Arc::new(SimTransport::new(clock.clone(), link));
        let registry = ClassRegistry::new();
        demo::register_all(&registry);
        let ns = Arc::new(NameServerService::new(NameServer::new()));
        transport.register(NAME_SERVER_SITE, Arc::new(RmiServer::new(ns)));
        ObiWorld {
            transport,
            clock,
            costs,
            registry,
            processes: HashMap::new(),
            site_names: HashMap::new(),
            next_site: 1,
        }
    }

    /// The paper's testbed: deterministic virtual time, 10 Mb/s LAN,
    /// calibrated cost model (LMI ≈ 2 µs, RMI ≈ 2.8 ms).
    pub fn paper_testbed() -> Self {
        ObiWorld::new(
            ClockMode::VirtualOnly,
            conditions::paper_lan(),
            CostModel::paper_testbed(),
        )
    }

    /// Like [`ObiWorld::paper_testbed`] but with real CPU time (for
    /// Criterion benches): network stays virtual, compute is measured.
    pub fn hybrid_testbed() -> Self {
        ObiWorld::new(
            ClockMode::Hybrid,
            conditions::paper_lan(),
            CostModel::paper_testbed(),
        )
    }

    /// A free world: zero network cost, zero modeled CPU cost. Useful in
    /// tests that assert protocol behaviour rather than timing.
    pub fn loopback() -> Self {
        ObiWorld::new(
            ClockMode::VirtualOnly,
            conditions::loopback(),
            CostModel::free(),
        )
    }

    /// Adds a site named `name` whose links to every existing site use
    /// `link` (e.g. a GPRS device joining a LAN world).
    pub fn add_site_with_link(&mut self, name: &str, link: LinkModel) -> SiteId {
        let existing: Vec<SiteId> = self.sites();
        let site = self.add_site(name);
        self.transport.with_topology_mut(|t| {
            t.set_link_symmetric(site, NAME_SERVER_SITE, link.clone());
            for other in existing {
                t.set_link_symmetric(site, other, link.clone());
            }
        });
        site
    }

    /// Adds a site named `name`, returning its id.
    pub fn add_site(&mut self, name: &str) -> SiteId {
        let site = SiteId::new(self.next_site);
        self.next_site += 1;
        let process = ObiProcess::new(
            site,
            self.transport.clone() as Arc<dyn Transport>,
            self.clock.clone(),
            self.costs.clone(),
            self.registry.clone(),
            NAME_SERVER_SITE,
        );
        self.transport.register(site, process.message_handler());
        self.site_names.insert(site, name.to_owned());
        self.processes.insert(site, process);
        site
    }

    /// Simulates a crash-and-restart of `site`: the old process (with all
    /// its in-memory state — replicas, exports, request counters) is
    /// dropped and a fresh one takes over the same site id, name, and
    /// links. Registering the new message handler replaces the old one.
    ///
    /// The caller re-attaches durability and replays recovered state (see
    /// `ObiProcess::attach_durability` / `ObiProcess::recover_from`); a
    /// restart without a durability log models a site that lost
    /// everything.
    ///
    /// # Panics
    ///
    /// Panics when the site was not created by this world.
    pub fn restart_site(&mut self, site: SiteId) -> &ObiProcess {
        assert!(
            self.processes.contains_key(&site),
            "unknown site {site}"
        );
        let process = ObiProcess::new(
            site,
            self.transport.clone() as Arc<dyn Transport>,
            self.clock.clone(),
            self.costs.clone(),
            self.registry.clone(),
            NAME_SERVER_SITE,
        );
        self.transport.register(site, process.message_handler());
        self.processes.insert(site, process);
        self.site(site)
    }

    /// Removes `site` from the world entirely: its process (with all
    /// in-memory state) is dropped and its transport registration removed,
    /// so frames addressed to it fail like any unreachable site. This is
    /// the world-side half of a departure — call
    /// [`ObiProcess::leave`](crate::ObiProcess::leave) first for a graceful
    /// one, or skip it to model a crash-leave. Site ids are never reused;
    /// a returning site joins as a new one via [`ObiWorld::add_site`].
    ///
    /// # Panics
    ///
    /// Panics when the site was not created by this world.
    pub fn retire_site(&mut self, site: SiteId) {
        assert!(self.processes.contains_key(&site), "unknown site {site}");
        self.processes.remove(&site);
        self.site_names.remove(&site);
        self.transport.deregister(site);
    }

    /// The process running at `site`.
    ///
    /// # Panics
    ///
    /// Panics when the site was not created by this world.
    pub fn site(&self, site: SiteId) -> &ObiProcess {
        self.processes
            .get(&site)
            .unwrap_or_else(|| panic!("unknown site {site}"))
    }

    /// The human name given to `site` at creation.
    pub fn site_name(&self, site: SiteId) -> Option<&str> {
        self.site_names.get(&site).map(String::as_str)
    }

    /// All site ids, in creation order.
    pub fn sites(&self) -> Vec<SiteId> {
        let mut ids: Vec<SiteId> = self.processes.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The shared clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The underlying transport (topology edits, traces, metrics).
    pub fn transport(&self) -> &SimTransport {
        &self.transport
    }

    /// The shared class registry.
    pub fn registry(&self) -> &ClassRegistry {
        &self.registry
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Disconnects a site from the network (mobility: loss of coverage or a
    /// voluntary disconnection).
    pub fn disconnect(&self, site: SiteId) {
        self.transport.disconnect(site);
    }

    /// Reconnects a site and immediately delivers any one-way traffic that
    /// queued at its peers.
    pub fn reconnect(&self, site: SiteId) {
        self.transport.reconnect(site);
        self.pump();
    }

    /// Drains every process's deferred one-way messages (invalidations and
    /// pushes that arrived while a process was busy). Frames held back by
    /// reorder fault injection are released first so the drain sees them.
    pub fn pump(&self) {
        self.transport.flush_reordered();
        for process in self.processes.values() {
            process.drain_inbox();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::Counter;

    #[test]
    fn sites_get_distinct_ids_starting_after_name_server() {
        let mut w = ObiWorld::loopback();
        let a = w.add_site("a");
        let b = w.add_site("b");
        assert_ne!(a, b);
        assert_ne!(a, NAME_SERVER_SITE);
        assert_eq!(w.sites(), vec![a, b]);
        assert_eq!(w.site_name(a), Some("a"));
    }

    #[test]
    fn export_and_lookup_through_world_name_server() {
        let mut w = ObiWorld::loopback();
        let s1 = w.add_site("S1");
        let s2 = w.add_site("S2");
        let c = w.site(s2).create(Counter::new(5));
        w.site(s2).export(c, "counter").unwrap();
        let found = w.site(s1).lookup("counter").unwrap();
        assert_eq!(found.id(), c.id());
        assert_eq!(found.host(), s2);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn unknown_site_panics() {
        let w = ObiWorld::loopback();
        let _ = w.site(SiteId::new(42));
    }

    #[test]
    fn constructor_variants_differ_as_documented() {
        use obiwan_util::ClockMode;
        assert_eq!(
            ObiWorld::paper_testbed().clock().mode(),
            ClockMode::VirtualOnly
        );
        assert_eq!(ObiWorld::hybrid_testbed().clock().mode(), ClockMode::Hybrid);
        // Loopback charges nothing for a lookup; the paper testbed does.
        let mut free = ObiWorld::loopback();
        let s = free.add_site("s");
        let _ = free.site(s).lookup("x");
        assert_eq!(free.clock().virtual_nanos(), 0);
        let mut paid = ObiWorld::paper_testbed();
        let s = paid.add_site("s");
        let _ = paid.site(s).lookup("x");
        assert!(paid.clock().virtual_nanos() > 0);
    }

    #[test]
    fn add_site_with_link_degrades_every_edge() {
        use obiwan_net::conditions;
        let mut w = ObiWorld::paper_testbed();
        let lan = w.add_site("lan");
        let pda = w.add_site_with_link("pda", conditions::gprs());
        // LAN->LAN round trip is milliseconds; anything touching the PDA
        // takes at least the 300 ms GPRS latency each way.
        let before = w.clock().virtual_nanos();
        let _ = w.site(lan).ping(pda);
        let gprs_rtt = w.clock().virtual_nanos() - before;
        assert!(gprs_rtt >= 600_000_000, "rtt {gprs_rtt} ns");
        // Even the PDA's name-server traffic is slow.
        let before = w.clock().virtual_nanos();
        let _ = w.site(pda).lookup("nothing");
        assert!(w.clock().virtual_nanos() - before >= 600_000_000);
    }

    #[test]
    fn disconnect_blocks_lookup() {
        let mut w = ObiWorld::loopback();
        let s1 = w.add_site("S1");
        w.disconnect(s1);
        assert!(w.site(s1).lookup("anything").unwrap_err().is_connectivity());
        w.reconnect(s1);
        // Now fails with NameNotBound instead of a connectivity error.
        assert!(!w.site(s1).lookup("anything").unwrap_err().is_connectivity());
    }
}

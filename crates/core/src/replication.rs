//! Provider-side replication: building replica batches (paper §2.2, §4.3).

use crate::space::{Resolution, SpaceView};
use obiwan_util::{ClusterId, ObiError, ObjId, Result};
use obiwan_wire::{Encoder, FrontierEdge, ReplicaBatch, ReplicaState, WireMode};
use std::collections::HashSet;

/// The application-facing replication mode (the `mode` argument of
/// `IProvideRemote::get(mode)`).
///
/// # Examples
///
/// ```
/// use obiwan_core::ReplicationMode;
///
/// let m = ReplicationMode::incremental(10);
/// assert_eq!(m.objects_per_step(), Some(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplicationMode {
    /// Replicate `batch` objects per step; every object gets its own
    /// proxy-in/proxy-out pair and can be individually updated.
    Incremental {
        /// Objects per step (≥ 1; clamped on construction).
        batch: usize,
    },
    /// Replicate clusters of `size` objects per step; one proxy pair per
    /// cluster, members cannot be individually updated.
    Cluster {
        /// Objects per cluster (≥ 1; clamped on construction).
        size: usize,
    },
    /// Replicate the whole reachability graph in one step.
    TransitiveClosure,
}

impl ReplicationMode {
    /// Incremental replication of `batch` objects per fault.
    pub fn incremental(batch: usize) -> Self {
        ReplicationMode::Incremental { batch: batch.max(1) }
    }

    /// Cluster replication of `size`-object clusters.
    pub fn cluster(size: usize) -> Self {
        ReplicationMode::Cluster { size: size.max(1) }
    }

    /// Whole-graph replication.
    pub fn transitive() -> Self {
        ReplicationMode::TransitiveClosure
    }

    /// Objects materialized per step, or `None` for the whole graph.
    pub fn objects_per_step(&self) -> Option<usize> {
        match self {
            ReplicationMode::Incremental { batch } => Some(*batch),
            ReplicationMode::Cluster { size } => Some(*size),
            ReplicationMode::TransitiveClosure => None,
        }
    }

    /// True for cluster mode (single proxy pair per step).
    pub fn is_cluster(&self) -> bool {
        matches!(self, ReplicationMode::Cluster { .. })
    }

    /// Wire representation.
    pub fn to_wire(self) -> WireMode {
        match self {
            ReplicationMode::Incremental { batch } => WireMode::Incremental {
                batch: batch.min(u32::MAX as usize) as u32,
            },
            ReplicationMode::Cluster { size } => WireMode::Cluster {
                size: size.min(u32::MAX as usize) as u32,
            },
            ReplicationMode::TransitiveClosure => WireMode::Transitive,
        }
    }

    /// From the wire representation (clamping zero to one).
    pub fn from_wire(mode: WireMode) -> Self {
        match mode {
            WireMode::Incremental { batch } => ReplicationMode::incremental(batch as usize),
            WireMode::Cluster { size } => ReplicationMode::cluster(size as usize),
            WireMode::Transitive => ReplicationMode::TransitiveClosure,
        }
    }
}

impl Default for ReplicationMode {
    fn default() -> Self {
        ReplicationMode::incremental(1)
    }
}

/// Builds the replica batch answering `get(root, mode)` against a provider's
/// object space.
///
/// The traversal is breadth-first from `root` over live objects, stopping at
/// the mode's step size. Frontier edges (references leaving the batch) are
/// reported so the requester can create proxy-outs; in cluster mode the
/// caller supplies a fresh [`ClusterId`] via `next_cluster` and all frontier
/// proxies will share one pair.
///
/// # Errors
///
/// [`ObiError::NoSuchObject`] when `root` is not a live object here (this
/// site cannot *provide* objects it only holds proxies for).
pub fn build_batch<S: SpaceView>(
    space: &S,
    root: ObjId,
    mode: WireMode,
    next_cluster: impl FnOnce() -> ClusterId,
) -> Result<ReplicaBatch> {
    build_batch_many(space, &[root], mode, next_cluster)
}

/// Builds one merged replica batch rooted at every live object in `targets`
/// — the provider side of `get_many` (the batched demand pipeline).
///
/// The traversal is a multi-source BFS seeded with all live targets, so the
/// roots are materialized first (in request order) before any of their
/// referents. The step limit scales with the number of live roots: a
/// `get_many` of N targets in `Incremental { batch }` mode yields up to
/// `N × batch` objects, exactly what N separate `get`s would have, in one
/// round-trip. Targets this site cannot provide (proxies, absent ids) are
/// silently skipped; the reply's `root` is the first live target.
///
/// # Errors
///
/// [`ObiError::NoSuchObject`] when *no* target is a live object here (the
/// id reported is the first target, or a nil id for an empty request).
pub fn build_batch_many<S: SpaceView>(
    space: &S,
    targets: &[ObjId],
    mode: WireMode,
    next_cluster: impl FnOnce() -> ClusterId,
) -> Result<ReplicaBatch> {
    let mut included_set: HashSet<ObjId> = HashSet::new();
    let live: Vec<ObjId> = targets
        .iter()
        .copied()
        .filter(|&t| {
            matches!(space.resolve(t), Resolution::Object(_)) && included_set.insert(t)
        })
        .collect();
    let Some(&root) = live.first() else {
        let blamed = targets
            .first()
            .copied()
            .unwrap_or_else(|| ObjId::new(space.site(), 0));
        return Err(ObiError::NoSuchObject(blamed));
    };
    let mode = ReplicationMode::from_wire(mode);
    let limit = mode
        .objects_per_step()
        .map_or(usize::MAX, |step| step.saturating_mul(live.len()));

    let mut included: Vec<ObjId> = Vec::new();
    let mut queue: std::collections::VecDeque<ObjId> = live.into_iter().collect();

    // BFS over objects this site can actually provide.
    while let Some(id) = queue.pop_front() {
        included.push(id);
        if included.len() >= limit {
            break;
        }
        let refs = space.with_object(id, |o, _| o.refs())?;
        for r in refs {
            let target = r.id();
            if included_set.contains(&target) {
                continue;
            }
            if matches!(space.resolve(target), Resolution::Object(_)) {
                included_set.insert(target);
                queue.push_back(target);
            }
        }
    }

    // Remaining queue entries were admitted but not materialized; they are
    // frontier, together with edges out of materialized objects.
    let materialized: HashSet<ObjId> = included.iter().copied().collect();
    let mut frontier: Vec<FrontierEdge> = Vec::new();
    let mut frontier_seen: HashSet<ObjId> = HashSet::new();
    let mut add_frontier = |space: &S, target: ObjId, out: &mut Vec<FrontierEdge>| {
        if frontier_seen.insert(target) {
            let class = match space.resolve(target) {
                Resolution::Object(_) | Resolution::Busy => space
                    .with_object(target, |o, _| o.class_name().to_owned())
                    .unwrap_or_default(),
                Resolution::Proxy(p) => p.class,
                Resolution::Absent => return, // dangling reference: skip
            };
            out.push(FrontierEdge { target, class });
        }
    };
    for id in &included {
        let refs = space.with_object(*id, |o, _| o.refs())?;
        for r in refs {
            let target = r.id();
            if !materialized.contains(&target) {
                add_frontier(space, target, &mut frontier);
            }
        }
    }

    let mut replicas = Vec::with_capacity(included.len());
    for id in &included {
        let state = space.with_object(*id, |o, m| ReplicaState {
            id: *id,
            class: o.class_name().to_owned(),
            version: m.version,
            state: {
                let mut enc = Encoder::new();
                enc.put_value(&o.state());
                enc.finish()
            },
        })?;
        replicas.push(state);
    }

    let cluster = if mode.is_cluster() {
        Some(next_cluster())
    } else {
        None
    };

    Ok(ReplicaBatch {
        root,
        replicas,
        frontier,
        cluster,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::LinkedItem;
    use crate::objref::ObjRef;
    use crate::space::ObjectSpace;
    use obiwan_util::SiteId;

    fn list_space(n: usize) -> (ObjectSpace, Vec<ObjRef>) {
        let mut space = ObjectSpace::new(SiteId::new(2));
        let mut refs: Vec<ObjRef> = Vec::new();
        let mut next: Option<ObjRef> = None;
        for i in (0..n).rev() {
            let mut item = LinkedItem::new(i as i64, format!("n{i}"));
            if let Some(nx) = next {
                item.set_next(Some(nx));
            }
            let r = space.create(Box::new(item));
            next = Some(r);
            refs.push(r);
        }
        refs.reverse();
        (space, refs)
    }

    fn cid() -> ClusterId {
        ClusterId::new(SiteId::new(2), 1)
    }

    #[test]
    fn incremental_batch_takes_exactly_n_with_one_frontier_edge() {
        let (space, refs) = list_space(10);
        let batch = build_batch(
            &space,
            refs[0].id(),
            WireMode::Incremental { batch: 3 },
            cid,
        )
        .unwrap();
        assert_eq!(batch.replicas.len(), 3);
        assert_eq!(batch.root, refs[0].id());
        assert_eq!(batch.replicas[0].id, refs[0].id());
        assert_eq!(batch.frontier.len(), 1);
        assert_eq!(batch.frontier[0].target, refs[3].id());
        assert_eq!(batch.frontier[0].class, "LinkedItem");
        assert_eq!(batch.cluster, None);
    }

    #[test]
    fn batch_larger_than_graph_has_empty_frontier() {
        let (space, refs) = list_space(4);
        let batch = build_batch(
            &space,
            refs[0].id(),
            WireMode::Incremental { batch: 100 },
            cid,
        )
        .unwrap();
        assert_eq!(batch.replicas.len(), 4);
        assert!(batch.frontier.is_empty());
    }

    #[test]
    fn transitive_takes_everything() {
        let (space, refs) = list_space(50);
        let batch = build_batch(&space, refs[0].id(), WireMode::Transitive, cid).unwrap();
        assert_eq!(batch.replicas.len(), 50);
        assert!(batch.frontier.is_empty());
    }

    #[test]
    fn cluster_mode_stamps_cluster_id() {
        let (space, refs) = list_space(10);
        let batch = build_batch(&space, refs[0].id(), WireMode::Cluster { size: 4 }, cid).unwrap();
        assert_eq!(batch.replicas.len(), 4);
        assert_eq!(batch.cluster, Some(cid()));
        assert_eq!(batch.frontier.len(), 1);
    }

    #[test]
    fn mid_list_root_serves_the_suffix() {
        let (space, refs) = list_space(10);
        let batch = build_batch(
            &space,
            refs[7].id(),
            WireMode::Incremental { batch: 5 },
            cid,
        )
        .unwrap();
        // Only 3 objects remain from index 7.
        assert_eq!(batch.replicas.len(), 3);
        assert!(batch.frontier.is_empty());
    }

    #[test]
    fn versions_travel_with_replicas() {
        let (mut space, refs) = list_space(2);
        space.meta_mut(refs[0].id()).unwrap().version = 9;
        let batch = build_batch(
            &space,
            refs[0].id(),
            WireMode::Incremental { batch: 1 },
            cid,
        )
        .unwrap();
        assert_eq!(batch.replicas[0].version, 9);
    }

    #[test]
    fn absent_root_is_rejected() {
        let (space, _) = list_space(2);
        let ghost = ObjId::new(SiteId::new(9), 9);
        assert!(matches!(
            build_batch(&space, ghost, WireMode::Transitive, cid),
            Err(ObiError::NoSuchObject(_))
        ));
    }

    #[test]
    fn dangling_references_are_skipped_in_frontier() {
        let mut space = ObjectSpace::new(SiteId::new(2));
        let ghost = ObjRef::new(ObjId::new(SiteId::new(9), 77));
        let head = space.create(Box::new(LinkedItem::with_next(1, "h", ghost)));
        let batch = build_batch(&space, head.id(), WireMode::Incremental { batch: 1 }, cid).unwrap();
        assert!(batch.frontier.is_empty());
    }

    #[test]
    fn mode_conversions_roundtrip_and_clamp() {
        for m in [
            ReplicationMode::incremental(7),
            ReplicationMode::cluster(3),
            ReplicationMode::transitive(),
        ] {
            assert_eq!(ReplicationMode::from_wire(m.to_wire()), m);
        }
        assert_eq!(ReplicationMode::incremental(0).objects_per_step(), Some(1));
        assert_eq!(ReplicationMode::cluster(0).objects_per_step(), Some(1));
        assert_eq!(
            ReplicationMode::from_wire(WireMode::Incremental { batch: 0 }),
            ReplicationMode::incremental(1)
        );
        assert!(ReplicationMode::cluster(2).is_cluster());
        assert!(!ReplicationMode::default().is_cluster());
    }

    #[test]
    fn multi_root_batch_serves_all_roots_first() {
        let (space, refs) = list_space(10);
        // Three scattered roots, batch 2 each: 6 objects total, roots first.
        let targets = [refs[0].id(), refs[4].id(), refs[8].id()];
        let batch = build_batch_many(
            &space,
            &targets,
            WireMode::Incremental { batch: 2 },
            cid,
        )
        .unwrap();
        assert_eq!(batch.root, refs[0].id());
        assert_eq!(batch.replicas.len(), 6);
        let ids: Vec<ObjId> = batch.replicas.iter().map(|r| r.id).collect();
        assert_eq!(&ids[..3], &targets);
    }

    #[test]
    fn multi_root_batch_merges_overlapping_traversals() {
        let (space, refs) = list_space(6);
        // Adjacent roots: the shared suffix is materialized once.
        let targets = [refs[0].id(), refs[1].id()];
        let batch = build_batch_many(
            &space,
            &targets,
            WireMode::Incremental { batch: 4 },
            cid,
        )
        .unwrap();
        let ids: Vec<ObjId> = batch.replicas.iter().map(|r| r.id).collect();
        let unique: HashSet<ObjId> = ids.iter().copied().collect();
        assert_eq!(ids.len(), unique.len(), "no duplicate replicas");
        assert_eq!(ids.len(), 6, "whole list fits under the scaled limit");
        assert!(batch.frontier.is_empty());
    }

    #[test]
    fn multi_root_skips_dead_targets_and_dedupes() {
        let (space, refs) = list_space(4);
        let ghost = ObjId::new(SiteId::new(9), 9);
        let targets = [ghost, refs[2].id(), refs[2].id()];
        let batch = build_batch_many(
            &space,
            &targets,
            WireMode::Incremental { batch: 1 },
            cid,
        )
        .unwrap();
        // Only one live, deduped root → limit 1.
        assert_eq!(batch.root, refs[2].id());
        assert_eq!(batch.replicas.len(), 1);
    }

    #[test]
    fn multi_root_with_no_live_targets_is_rejected() {
        let (space, _) = list_space(2);
        let ghost = ObjId::new(SiteId::new(9), 9);
        assert!(matches!(
            build_batch_many(&space, &[ghost], WireMode::Transitive, cid),
            Err(ObiError::NoSuchObject(id)) if id == ghost
        ));
        assert!(matches!(
            build_batch_many(&space, &[], WireMode::Transitive, cid),
            Err(ObiError::NoSuchObject(_))
        ));
    }

    #[test]
    fn branching_graph_bfs_order() {
        // root -> (a, b); a -> c. BFS with batch 3 = root, a, b; frontier = c.
        let mut space = ObjectSpace::new(SiteId::new(2));
        let c = space.create(Box::new(LinkedItem::new(3, "c")));
        let a = space.create(Box::new(LinkedItem::with_next(1, "a", c)));
        let b = space.create(Box::new(LinkedItem::new(2, "b")));
        let mut root_item = LinkedItem::new(0, "root");
        root_item.set_next(Some(a));
        root_item.set_extra(vec![b]);
        let root = space.create(Box::new(root_item));
        let batch = build_batch(&space, root.id(), WireMode::Incremental { batch: 3 }, cid).unwrap();
        let ids: Vec<ObjId> = batch.replicas.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![root.id(), a.id(), b.id()]);
        assert_eq!(batch.frontier.len(), 1);
        assert_eq!(batch.frontier[0].target, c.id());
    }
}

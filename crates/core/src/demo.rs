//! Demo object classes shared by examples, tests and benchmarks.
//!
//! These play the role of the "objects A, B and C … created by the
//! programmer" in the paper's running example, plus the list workloads of
//! its evaluation section:
//!
//! * [`LinkedItem`] — a small list node (the A→B→C graph);
//! * [`PayloadNode`] — a list node with a sized byte payload (the 64 B–16 KB
//!   lists of Figures 5 and 6);
//! * [`Counter`] — a tiny mutable object for consistency tests;
//! * [`Document`] — a titled text body for the collaborative examples;
//! * [`TreeNode`] — a branching graph for non-list replication tests.

use crate::obi_class;
use crate::object::ClassRegistry;
use crate::objref::ObjRef;
use bytes::Bytes;
use obiwan_wire::ObiValue;

obi_class! {
    /// A linked-list node with a value, a label and optional out-edges.
    pub class LinkedItem {
        fields {
            value: i64,
            label: String,
            next: Option<ObjRef>,
            extra: Vec<ObjRef>,
        }
        methods {
            /// Returns the node's value.
            fn value(this, _ctx, _args) {
                Ok(ObiValue::I64(this.value))
            }
            /// Returns the node's label.
            fn label(this, _ctx, _args) {
                Ok(ObiValue::Str(this.label.clone()))
            }
            /// Returns the next node's reference, or `Null` at the tail.
            fn next_ref(this, _ctx, _args) {
                Ok(match this.next {
                    Some(n) => ObiValue::Ref(n.id()),
                    None => ObiValue::Null,
                })
            }
            /// Reads a field (the paper's "access to a variable" method)
            /// and returns the next reference for list walking.
            fn touch(this, _ctx, _args) {
                let _observed = this.value;
                Ok(match this.next {
                    Some(n) => ObiValue::Ref(n.id()),
                    None => ObiValue::Null,
                })
            }
            /// Invokes `value` on the next node — a cross-object call that
            /// faults the next node in when it is not yet replicated.
            fn next_value(this, ctx, _args) {
                match this.next {
                    Some(n) => ctx.invoke(n, "value", &ObiValue::Null),
                    None => Ok(ObiValue::Null),
                }
            }
            /// Sums this node's value with the rest of the list,
            /// recursively (each hop may fault).
            fn sum_rest(this, ctx, _args) {
                let mut total = this.value;
                if let Some(n) = this.next {
                    let rest = ctx.invoke(n, "sum_rest", &ObiValue::Null)?;
                    total += rest.as_i64().unwrap_or(0);
                }
                Ok(ObiValue::I64(total))
            }
        }
        mutating {
            /// Sets the value.
            fn set_value(this, _ctx, args) {
                this.value = args.as_i64().ok_or_else(|| {
                    crate::ObiError::BadArguments("set_value expects i64".into())
                })?;
                Ok(ObiValue::Null)
            }
            /// Sets the label.
            fn set_label(this, _ctx, args) {
                this.label = args
                    .as_str()
                    .ok_or_else(|| {
                        crate::ObiError::BadArguments("set_label expects str".into())
                    })?
                    .to_owned();
                Ok(ObiValue::Null)
            }
        }
    }
}

impl LinkedItem {
    /// A node with no out-edges.
    pub fn new(value: i64, label: impl Into<String>) -> Self {
        LinkedItem {
            value,
            label: label.into(),
            next: None,
            extra: Vec::new(),
        }
    }

    /// A node pointing at `next`.
    pub fn with_next(value: i64, label: impl Into<String>, next: ObjRef) -> Self {
        LinkedItem {
            value,
            label: label.into(),
            next: Some(next),
            extra: Vec::new(),
        }
    }

    /// Sets the next edge (builder-side; at run time use the `set_value`
    /// style mutating methods).
    pub fn set_next(&mut self, next: Option<ObjRef>) {
        self.next = next;
    }

    /// Sets additional out-edges (for branching graphs).
    pub fn set_extra(&mut self, extra: Vec<ObjRef>) {
        self.extra = extra;
    }
}

obi_class! {
    /// A list node carrying an opaque payload of configurable size — the
    /// workload object of the paper's Figures 4–6.
    pub class PayloadNode {
        fields {
            index: i64,
            payload: Bytes,
            next: Option<ObjRef>,
        }
        methods {
            /// The node's position in its list.
            fn index(this, _ctx, _args) {
                Ok(ObiValue::I64(this.index))
            }
            /// The payload length in bytes.
            fn payload_len(this, _ctx, _args) {
                Ok(ObiValue::I64(this.payload.len() as i64))
            }
            /// Reads the payload (first and last byte — "an access to a
            /// variable of the object, so it is not an empty method") and
            /// returns the next reference for list walking.
            fn touch(this, _ctx, _args) {
                let _first = this.payload.first().copied().unwrap_or(0);
                let _last = this.payload.last().copied().unwrap_or(0);
                Ok(match this.next {
                    Some(n) => ObiValue::Ref(n.id()),
                    None => ObiValue::Null,
                })
            }
        }
        mutating {
            /// Overwrites the node index.
            fn set_index(this, _ctx, args) {
                this.index = args.as_i64().ok_or_else(|| {
                    crate::ObiError::BadArguments("set_index expects i64".into())
                })?;
                Ok(ObiValue::Null)
            }
        }
    }
}

impl PayloadNode {
    /// A node with `size` deterministic payload bytes.
    pub fn sized(index: i64, size: usize) -> Self {
        let payload: Vec<u8> = (0..size).map(|i| (i ^ index as usize) as u8).collect();
        PayloadNode {
            index,
            payload: Bytes::from(payload),
            next: None,
        }
    }

    /// Sets the next edge.
    pub fn set_next(&mut self, next: Option<ObjRef>) {
        self.next = next;
    }
}

obi_class! {
    /// A shared counter.
    pub class Counter {
        fields {
            count: i64,
        }
        methods {
            /// Reads the count.
            fn read(this, _ctx, _args) {
                Ok(ObiValue::I64(this.count))
            }
        }
        mutating {
            /// Adds one.
            fn incr(this, _ctx, _args) {
                this.count += 1;
                Ok(ObiValue::I64(this.count))
            }
            /// Adds an arbitrary delta.
            fn add(this, _ctx, args) {
                let delta = args.as_i64().ok_or_else(|| {
                    crate::ObiError::BadArguments("add expects i64".into())
                })?;
                this.count += delta;
                Ok(ObiValue::I64(this.count))
            }
        }
    }
}

impl Counter {
    /// A counter starting at `count`.
    pub fn new(count: i64) -> Self {
        Counter { count }
    }
}

obi_class! {
    /// A titled text document, for the collaborative-work examples.
    pub class Document {
        fields {
            title: String,
            content: String,
        }
        methods {
            /// The document title.
            fn title(this, _ctx, _args) {
                Ok(ObiValue::Str(this.title.clone()))
            }
            /// The full content.
            fn content(this, _ctx, _args) {
                Ok(ObiValue::Str(this.content.clone()))
            }
            /// Content length in bytes.
            fn len(this, _ctx, _args) {
                Ok(ObiValue::I64(this.content.len() as i64))
            }
        }
        mutating {
            /// Replaces the content.
            fn set_content(this, _ctx, args) {
                this.content = args
                    .as_str()
                    .ok_or_else(|| {
                        crate::ObiError::BadArguments("set_content expects str".into())
                    })?
                    .to_owned();
                Ok(ObiValue::Null)
            }
            /// Appends a paragraph.
            fn append(this, _ctx, args) {
                let para = args.as_str().ok_or_else(|| {
                    crate::ObiError::BadArguments("append expects str".into())
                })?;
                if !this.content.is_empty() {
                    this.content.push('\n');
                }
                this.content.push_str(para);
                Ok(ObiValue::Null)
            }
        }
    }
}

impl Document {
    /// An empty document.
    pub fn new(title: impl Into<String>) -> Self {
        Document {
            title: title.into(),
            content: String::new(),
        }
    }
}

obi_class! {
    /// A node in a branching object graph.
    pub class TreeNode {
        fields {
            label: String,
            children: Vec<ObjRef>,
        }
        methods {
            /// The node label.
            fn label(this, _ctx, _args) {
                Ok(ObiValue::Str(this.label.clone()))
            }
            /// Number of direct children.
            fn child_count(this, _ctx, _args) {
                Ok(ObiValue::I64(this.children.len() as i64))
            }
            /// References to all children.
            fn children(this, _ctx, _args) {
                Ok(ObiValue::List(
                    this.children.iter().map(|c| ObiValue::Ref(c.id())).collect(),
                ))
            }
            /// Total nodes in this subtree (recursive; faults children in).
            fn deep_count(this, ctx, _args) {
                let mut total = 1i64;
                let children = this.children.clone();
                for c in children {
                    let sub = ctx.invoke(c, "deep_count", &ObiValue::Null)?;
                    total += sub.as_i64().unwrap_or(0);
                }
                Ok(ObiValue::I64(total))
            }
        }
        mutating {
            /// Renames the node.
            fn set_label(this, _ctx, args) {
                this.label = args
                    .as_str()
                    .ok_or_else(|| {
                        crate::ObiError::BadArguments("set_label expects str".into())
                    })?
                    .to_owned();
                Ok(ObiValue::Null)
            }
        }
    }
}

impl TreeNode {
    /// A leaf node.
    pub fn new(label: impl Into<String>) -> Self {
        TreeNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// A node with children.
    pub fn with_children(label: impl Into<String>, children: Vec<ObjRef>) -> Self {
        TreeNode {
            label: label.into(),
            children,
        }
    }
}

/// Registers every demo class with `registry`.
pub fn register_all(registry: &ClassRegistry) {
    LinkedItem::register(registry);
    PayloadNode::register(registry);
    Counter::register(registry);
    Document::register(registry);
    TreeNode::register(registry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObiObject;
    use crate::DecodableObject;

    #[test]
    fn linked_item_state_roundtrips() {
        let mut item = LinkedItem::new(5, "x");
        item.set_next(Some(ObjRef::new(obiwan_util::ObjId::new(
            obiwan_util::SiteId::new(1),
            2,
        ))));
        let state = item.state();
        let back = LinkedItem::decode_state(&state).unwrap();
        assert_eq!(back, item);
        assert_eq!(back.refs().len(), 1);
    }

    #[test]
    fn payload_node_sized_payload_is_deterministic() {
        let a = PayloadNode::sized(3, 64);
        let b = PayloadNode::sized(3, 64);
        assert_eq!(a, b);
        assert_eq!(a.payload.len(), 64);
        assert!(a.payload_size() >= 64);
    }

    #[test]
    fn register_all_registers_five_classes() {
        let reg = ClassRegistry::new();
        register_all(&reg);
        for class in ["LinkedItem", "PayloadNode", "Counter", "Document", "TreeNode"] {
            assert!(reg.knows(class), "{class} missing");
        }
        assert_eq!(reg.len(), 5);
    }

    #[test]
    fn tree_node_refs_enumerate_children() {
        let c1 = ObjRef::new(obiwan_util::ObjId::new(obiwan_util::SiteId::new(1), 1));
        let c2 = ObjRef::new(obiwan_util::ObjId::new(obiwan_util::SiteId::new(1), 2));
        let t = TreeNode::with_children("root", vec![c1, c2]);
        assert_eq!(t.refs(), vec![c1, c2]);
    }

    #[test]
    fn document_starts_empty() {
        let d = Document::new("t");
        assert_eq!(d.title, "t");
        assert!(d.content.is_empty());
        assert_eq!(d.class_name(), "Document");
    }
}

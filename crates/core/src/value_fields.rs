//! Field (de)serialization helpers used by generated classes.
//!
//! Every field type usable inside [`obi_class!`](crate::obi_class) implements
//! [`FieldValue`]: conversion to/from [`ObiValue`] plus enumeration of the
//! object references it contains.

use crate::objref::ObjRef;
use bytes::Bytes;
use obiwan_util::{ObiError, Result};
use obiwan_wire::ObiValue;

/// A type that can live in an OBIWAN object field.
pub trait FieldValue: Sized {
    /// Converts the field into a wire value.
    fn to_value(&self) -> ObiValue;

    /// Restores the field from a wire value.
    ///
    /// # Errors
    ///
    /// [`ObiError::Decode`] when the value's shape does not match.
    fn from_value(v: &ObiValue) -> Result<Self>;

    /// Appends every [`ObjRef`] contained in the field to `out`.
    fn collect_obj_refs(&self, out: &mut Vec<ObjRef>) {
        let _ = out;
    }
}

fn mismatch(expected: &str, got: &ObiValue) -> ObiError {
    ObiError::Decode(format!("expected {expected}, got {}", got.kind()))
}

impl FieldValue for bool {
    fn to_value(&self) -> ObiValue {
        ObiValue::Bool(*self)
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_bool().ok_or_else(|| mismatch("bool", v))
    }
}

impl FieldValue for i64 {
    fn to_value(&self) -> ObiValue {
        ObiValue::I64(*self)
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_i64().ok_or_else(|| mismatch("i64", v))
    }
}

impl FieldValue for u64 {
    fn to_value(&self) -> ObiValue {
        ObiValue::I64(*self as i64)
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_i64()
            .map(|x| x as u64)
            .ok_or_else(|| mismatch("i64", v))
    }
}

impl FieldValue for f64 {
    fn to_value(&self) -> ObiValue {
        ObiValue::F64(*self)
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_f64().ok_or_else(|| mismatch("f64", v))
    }
}

impl FieldValue for String {
    fn to_value(&self) -> ObiValue {
        ObiValue::Str(self.clone())
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_str().map(str::to_owned).ok_or_else(|| mismatch("str", v))
    }
}

impl FieldValue for Bytes {
    fn to_value(&self) -> ObiValue {
        ObiValue::Bytes(self.clone())
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_bytes().cloned().ok_or_else(|| mismatch("bytes", v))
    }
}

impl FieldValue for ObjRef {
    fn to_value(&self) -> ObiValue {
        ObiValue::Ref(self.id())
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        v.as_ref_id().map(ObjRef::new).ok_or_else(|| mismatch("ref", v))
    }

    fn collect_obj_refs(&self, out: &mut Vec<ObjRef>) {
        out.push(*self);
    }
}

impl<T: FieldValue> FieldValue for Option<T> {
    fn to_value(&self) -> ObiValue {
        match self {
            None => ObiValue::Null,
            Some(inner) => inner.to_value(),
        }
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }

    fn collect_obj_refs(&self, out: &mut Vec<ObjRef>) {
        if let Some(inner) = self {
            inner.collect_obj_refs(out);
        }
    }
}

impl<T: FieldValue> FieldValue for Vec<T> {
    fn to_value(&self) -> ObiValue {
        ObiValue::List(self.iter().map(FieldValue::to_value).collect())
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        match v {
            ObiValue::List(items) => items.iter().map(T::from_value).collect(),
            other => Err(mismatch("list", other)),
        }
    }

    fn collect_obj_refs(&self, out: &mut Vec<ObjRef>) {
        for item in self {
            item.collect_obj_refs(out);
        }
    }
}

impl FieldValue for ObiValue {
    fn to_value(&self) -> ObiValue {
        self.clone()
    }

    fn from_value(v: &ObiValue) -> Result<Self> {
        Ok(v.clone())
    }

    fn collect_obj_refs(&self, out: &mut Vec<ObjRef>) {
        let mut ids = Vec::new();
        self.collect_refs(&mut ids);
        out.extend(ids.into_iter().map(ObjRef::new));
    }
}

/// Extracts a named field from an encoded state map.
///
/// # Errors
///
/// [`ObiError::Decode`] when the key is missing or the shape mismatches.
pub fn field_from_map<T: FieldValue>(state: &ObiValue, key: &str) -> Result<T> {
    let v = state
        .get(key)
        .ok_or_else(|| ObiError::Decode(format!("missing field `{key}`")))?;
    T::from_value(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_util::{ObjId, SiteId};

    fn rref(l: u64) -> ObjRef {
        ObjRef::new(ObjId::new(SiteId::new(1), l))
    }

    fn roundtrip<T: FieldValue + PartialEq + std::fmt::Debug>(v: T) {
        let wire = v.to_value();
        assert_eq!(T::from_value(&wire).unwrap(), v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(true);
        roundtrip(-42i64);
        roundtrip(42u64);
        roundtrip(2.5f64);
        roundtrip("hi".to_string());
        roundtrip(Bytes::from_static(b"abc"));
        roundtrip(rref(9));
    }

    #[test]
    fn options_and_vectors_roundtrip() {
        roundtrip(Option::<ObjRef>::None);
        roundtrip(Some(rref(3)));
        roundtrip(vec![1i64, 2, 3]);
        roundtrip(vec![rref(1), rref(2)]);
        roundtrip(Vec::<String>::new());
        roundtrip(Some(vec![Some(rref(1)), None]));
    }

    #[test]
    fn ref_collection_covers_nesting() {
        let field = vec![Some(rref(1)), None, Some(rref(2))];
        let mut out = Vec::new();
        field.collect_obj_refs(&mut out);
        assert_eq!(out, vec![rref(1), rref(2)]);

        let raw = ObiValue::List(vec![ObiValue::Ref(rref(5).id())]);
        let mut out = Vec::new();
        raw.collect_obj_refs(&mut out);
        assert_eq!(out, vec![rref(5)]);

        let mut out = Vec::new();
        7i64.collect_obj_refs(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn shape_mismatch_is_a_decode_error() {
        assert!(i64::from_value(&ObiValue::Str("x".into())).is_err());
        assert!(String::from_value(&ObiValue::I64(1)).is_err());
        assert!(Vec::<i64>::from_value(&ObiValue::I64(1)).is_err());
        assert!(ObjRef::from_value(&ObiValue::Null).is_err());
        // But Option accepts Null.
        assert_eq!(Option::<ObjRef>::from_value(&ObiValue::Null).unwrap(), None);
    }

    #[test]
    fn field_from_map_reads_named_fields() {
        let state = ObiValue::Map(vec![
            ("a".into(), ObiValue::I64(1)),
            ("b".into(), ObiValue::Str("x".into())),
        ]);
        assert_eq!(field_from_map::<i64>(&state, "a").unwrap(), 1);
        assert_eq!(field_from_map::<String>(&state, "b").unwrap(), "x");
        assert!(field_from_map::<i64>(&state, "missing").is_err());
        assert!(field_from_map::<i64>(&state, "b").is_err());
    }
}

//! The per-process object space.
//!
//! Each OBIWAN process holds its objects in an [`ObjectSpace`]: a table from
//! [`ObjId`] to [`Slot`]s. A slot holds either a live object (master or
//! replica), a [`ProxyOut`] awaiting its first fault, or a `Busy` marker
//! while the object is taken out for a method invocation.
//!
//! Resolution through the table is what makes swizzling cheap: replacing a
//! proxy slot with a replica slot instantly redirects every reference in
//! every object, because references are handles resolved on use.

use crate::object::ObiObject;
use crate::objref::ObjRef;
use crate::proxy::ProxyOut;
use obiwan_util::{ClusterId, ObiError, ObjId, Result, SiteId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Whether a live object is the master copy or a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaKind {
    /// The authoritative copy, created locally.
    Master,
    /// A copy fetched from `provider`'s proxy-in.
    Replica {
        /// The site holding the master (where `put`/refresh go).
        provider: SiteId,
    },
}

impl ReplicaKind {
    /// True for the master copy.
    pub fn is_master(self) -> bool {
        matches!(self, ReplicaKind::Master)
    }
}

/// Metadata carried by every live object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// The object's identity.
    pub id: ObjId,
    /// Master or replica.
    pub kind: ReplicaKind,
    /// Masters: bumped on every accepted mutation. Replicas: the master
    /// version the replica state was fetched at (the `put` base version).
    pub version: u64,
    /// Replicas only: locally modified since fetch/refresh/put.
    pub dirty: bool,
    /// Replicas only: an invalidation arrived; the state is known stale.
    pub stale: bool,
    /// Set when the object arrived as part of a cluster batch; cluster
    /// members cannot be individually `put` (paper §4.3).
    pub cluster: Option<ClusterId>,
    /// Monotonic usage stamp maintained by the space (bumped on insert and
    /// on every invocation); drives least-recently-used eviction.
    pub last_used: u64,
}

impl ObjectMeta {
    /// Metadata for a freshly created master.
    pub fn master(id: ObjId) -> Self {
        ObjectMeta {
            id,
            kind: ReplicaKind::Master,
            version: 1,
            dirty: false,
            stale: false,
            cluster: None,
            last_used: 0,
        }
    }

    /// Metadata for a replica fetched from `provider` at `version`.
    pub fn replica(id: ObjId, provider: SiteId, version: u64) -> Self {
        ObjectMeta {
            id,
            kind: ReplicaKind::Replica { provider },
            version,
            dirty: false,
            stale: false,
            cluster: None,
            last_used: 0,
        }
    }
}

/// A live object plus its metadata.
pub struct ObjectEntry {
    /// The object itself.
    pub object: Box<dyn ObiObject>,
    /// Its metadata.
    pub meta: ObjectMeta,
}

impl std::fmt::Debug for ObjectEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectEntry")
            .field("class", &self.object.class_name())
            .field("meta", &self.meta)
            .finish()
    }
}

/// One table entry.
#[derive(Debug)]
pub enum Slot {
    /// A live object (master or replica).
    Object(ObjectEntry),
    /// A proxy-out awaiting a fault.
    Proxy(ProxyOut),
    /// The object is temporarily out of the table for an invocation; the
    /// metadata stays readable.
    Busy(ObjectMeta),
}

/// What a handle currently resolves to (cheap, copyable view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// A live local object.
    Object(ObjectMeta),
    /// A proxy-out: invoking will fault.
    Proxy(ProxyOut),
    /// Currently being invoked higher up the stack.
    Busy,
    /// Unknown to this space.
    Absent,
}

/// Statistics returned by [`ObjectSpace::collect_garbage`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcStats {
    /// Proxy-out slots reclaimed.
    pub proxies_reclaimed: usize,
    /// Clean replica slots reclaimed (only with `collect_replicas`).
    pub replicas_reclaimed: usize,
    /// Slots that survived.
    pub live: usize,
}

/// Read-only view of an object table, as batch building needs it.
///
/// Implemented by [`ObjectSpace`] (the single-table reference
/// implementation) and by [`ShardedSpace`](crate::shards::ShardedSpace)
/// (the striped production table), so the provider-side batch builder in
/// [`crate::replication`] works against either without holding more than
/// one shard lock at a time.
pub trait SpaceView {
    /// The owning site.
    fn site(&self) -> SiteId;

    /// What does `id` currently resolve to?
    fn resolve(&self, id: ObjId) -> Resolution;

    /// Read-only access to a live object.
    ///
    /// # Errors
    ///
    /// [`ObiError::NoSuchObject`] when absent/proxy,
    /// [`ObiError::ReentrantInvocation`] when busy.
    fn with_object<R>(
        &self,
        id: ObjId,
        f: impl FnOnce(&dyn ObiObject, &ObjectMeta) -> R,
    ) -> Result<R>;
}

impl SpaceView for ObjectSpace {
    fn site(&self) -> SiteId {
        ObjectSpace::site(self)
    }

    fn resolve(&self, id: ObjId) -> Resolution {
        ObjectSpace::resolve(self, id)
    }

    fn with_object<R>(
        &self,
        id: ObjId,
        f: impl FnOnce(&dyn ObiObject, &ObjectMeta) -> R,
    ) -> Result<R> {
        ObjectSpace::with_object(self, id, f)
    }
}

/// The table of objects hosted by one process.
pub struct ObjectSpace {
    site: SiteId,
    next_local: u64,
    use_tick: u64,
    slots: HashMap<ObjId, Slot>,
    roots: HashSet<ObjId>,
    /// Frontier index: every id currently holding a proxy-out slot, in
    /// insertion order. `frontier_queue` may hold stale ids (cleaned lazily
    /// on pop); `frontier_set` is the authoritative membership, so prefetch
    /// finds demand candidates in O(1) instead of scanning the whole table.
    frontier_queue: VecDeque<ObjId>,
    frontier_set: HashSet<ObjId>,
}

impl std::fmt::Debug for ObjectSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectSpace")
            .field("site", &self.site)
            .field("slots", &self.slots.len())
            .field("roots", &self.roots.len())
            .finish()
    }
}

impl ObjectSpace {
    /// Creates an empty space owned by `site`.
    pub fn new(site: SiteId) -> Self {
        ObjectSpace {
            site,
            next_local: 1,
            use_tick: 1,
            slots: HashMap::new(),
            roots: HashSet::new(),
            frontier_queue: VecDeque::new(),
            frontier_set: HashSet::new(),
        }
    }

    /// The owning site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Number of slots (objects + proxies + busy markers).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the space holds nothing.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Creates a new master object, assigning it a fresh id.
    pub fn create(&mut self, object: Box<dyn ObiObject>) -> ObjRef {
        let id = ObjId::new(self.site, self.next_local);
        self.next_local += 1;
        let mut meta = ObjectMeta::master(id);
        meta.last_used = self.bump_tick();
        self.slots.insert(id, Slot::Object(ObjectEntry { object, meta }));
        ObjRef::new(id)
    }

    fn bump_tick(&mut self) -> u64 {
        self.use_tick += 1;
        self.use_tick
    }

    /// Inserts (or replaces) a live object under an explicit id — used when
    /// materializing replicas.
    pub fn insert_object(&mut self, mut entry: ObjectEntry) {
        entry.meta.last_used = self.bump_tick();
        let id = entry.meta.id;
        self.frontier_set.remove(&id);
        self.slots.insert(id, Slot::Object(entry));
    }

    /// Marks `id` as just-used (freshens it against LRU eviction) without
    /// invoking it.
    pub fn touch(&mut self, id: ObjId) {
        let tick = self.bump_tick();
        if let Some(Slot::Object(entry)) = self.slots.get_mut(&id) {
            entry.meta.last_used = tick;
        }
    }

    /// Inserts a proxy-out slot for a frontier edge. Existing live objects
    /// are never downgraded to proxies; the insert is skipped.
    pub fn insert_proxy(&mut self, proxy: ProxyOut) {
        match self.slots.get(&proxy.target) {
            Some(Slot::Object(_)) | Some(Slot::Busy(_)) => {}
            _ => {
                self.index_frontier(proxy.target);
                self.slots.insert(proxy.target, Slot::Proxy(proxy));
            }
        }
    }

    fn index_frontier(&mut self, id: ObjId) {
        if self.frontier_set.insert(id) {
            self.frontier_queue.push_back(id);
        }
    }

    /// Number of proxy-out slots currently indexed as demand candidates.
    pub fn frontier_len(&self) -> usize {
        self.frontier_set.len()
    }

    /// Up to `max` frontier proxies, oldest first, in O(max) — the feed of
    /// the batched prefetch path. Returned proxies stay in the index (they
    /// leave it when a replica materializes over the slot); repeated calls
    /// rotate through the frontier rather than re-returning the same ids.
    pub fn frontier_candidates(&mut self, max: usize) -> Vec<ProxyOut> {
        let mut out: Vec<ProxyOut> = Vec::new();
        let mut budget = self.frontier_queue.len();
        while out.len() < max && budget > 0 {
            budget -= 1;
            let Some(id) = self.frontier_queue.pop_front() else {
                break;
            };
            if !self.frontier_set.contains(&id) {
                continue; // lazily dropped: slot was materialized or removed
            }
            match self.slots.get(&id) {
                Some(Slot::Proxy(p)) => {
                    // Duplicate queue entries can appear after re-insertion;
                    // keep exactly one.
                    if out.iter().all(|c| c.target != id) {
                        out.push(p.clone());
                        self.frontier_queue.push_back(id);
                    }
                }
                _ => {
                    self.frontier_set.remove(&id);
                }
            }
        }
        out
    }

    /// What does `id` currently resolve to?
    pub fn resolve(&self, id: ObjId) -> Resolution {
        match self.slots.get(&id) {
            Some(Slot::Object(entry)) => Resolution::Object(entry.meta.clone()),
            Some(Slot::Proxy(p)) => Resolution::Proxy(p.clone()),
            Some(Slot::Busy(_)) => Resolution::Busy,
            None => Resolution::Absent,
        }
    }

    /// Metadata of a live or busy object.
    pub fn meta(&self, id: ObjId) -> Option<&ObjectMeta> {
        match self.slots.get(&id) {
            Some(Slot::Object(entry)) => Some(&entry.meta),
            Some(Slot::Busy(meta)) => Some(meta),
            _ => None,
        }
    }

    /// Mutable metadata of a live object (not busy ones: their meta is
    /// carried by the taken entry).
    pub fn meta_mut(&mut self, id: ObjId) -> Option<&mut ObjectMeta> {
        match self.slots.get_mut(&id) {
            Some(Slot::Object(entry)) => Some(&mut entry.meta),
            _ => None,
        }
    }

    /// Takes a live object out for invocation, leaving a `Busy` marker.
    ///
    /// # Errors
    ///
    /// * [`ObiError::ReentrantInvocation`] if the object is already out.
    /// * [`ObiError::NoSuchObject`] if the id is absent or a proxy.
    pub fn take_object(&mut self, id: ObjId) -> Result<ObjectEntry> {
        let tick = self.bump_tick();
        match self.slots.get_mut(&id) {
            Some(Slot::Object(entry)) => {
                entry.meta.last_used = tick;
                let meta = entry.meta.clone();
                match self.slots.insert(id, Slot::Busy(meta)) {
                    Some(Slot::Object(entry)) => Ok(entry),
                    _ => unreachable!("slot changed between get and insert"),
                }
            }
            Some(Slot::Busy(_)) => Err(ObiError::ReentrantInvocation(id)),
            _ => Err(ObiError::NoSuchObject(id)),
        }
    }

    /// Returns an object taken with [`ObjectSpace::take_object`].
    pub fn restore_object(&mut self, entry: ObjectEntry) {
        self.slots.insert(entry.meta.id, Slot::Object(entry));
    }

    /// Read-only access to a live object.
    ///
    /// # Errors
    ///
    /// [`ObiError::NoSuchObject`] when absent/proxy,
    /// [`ObiError::ReentrantInvocation`] when busy.
    pub fn with_object<R>(
        &self,
        id: ObjId,
        f: impl FnOnce(&dyn ObiObject, &ObjectMeta) -> R,
    ) -> Result<R> {
        match self.slots.get(&id) {
            Some(Slot::Object(entry)) => Ok(f(entry.object.as_ref(), &entry.meta)),
            Some(Slot::Busy(_)) => Err(ObiError::ReentrantInvocation(id)),
            _ => Err(ObiError::NoSuchObject(id)),
        }
    }

    /// Removes a slot entirely, returning whether it existed.
    pub fn remove(&mut self, id: ObjId) -> bool {
        self.frontier_set.remove(&id);
        self.slots.remove(&id).is_some()
    }

    /// Marks `id` as a GC root (exported, name-bound, or application-held).
    pub fn add_root(&mut self, id: ObjId) {
        self.roots.insert(id);
    }

    /// Unmarks a GC root.
    pub fn remove_root(&mut self, id: ObjId) {
        self.roots.remove(&id);
    }

    /// True when `id` is a root.
    pub fn is_root(&self, id: ObjId) -> bool {
        self.roots.contains(&id)
    }

    /// Ids of all live objects (masters and replicas), unordered.
    pub fn object_ids(&self) -> Vec<ObjId> {
        self.slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Object(_) | Slot::Busy(_)))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of all proxy-out slots, unordered.
    pub fn proxy_ids(&self) -> Vec<ObjId> {
        self.slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Proxy(_)))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Number of live proxy-out slots.
    pub fn proxy_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s, Slot::Proxy(_)))
            .count()
    }

    /// Approximate bytes of serialized state held by *replica* slots
    /// (masters and proxies are not counted: only replicas can be shed).
    ///
    /// This re-encodes state and is O(total replica bytes); it is meant for
    /// opt-in budget enforcement, not hot paths.
    pub fn replica_bytes(&self) -> usize {
        self.slots
            .values()
            .filter_map(|s| match s {
                Slot::Object(e) if !e.meta.kind.is_master() => Some(e.object.payload_size()),
                _ => None,
            })
            .sum()
    }

    /// Evicts least-recently-used replicas until replica state fits in
    /// `budget` bytes — the memory-pressure story for "info-appliances with
    /// limited memory" (§2.1).
    ///
    /// Eviction is the inverse of a fault: the replica's slot reverts to a
    /// proxy-out pointing at its provider, so the handle graph stays closed
    /// and the object simply faults back in on next use. Never evicted:
    /// masters, dirty replicas (un-pushed work), roots, busy slots, and
    /// cluster members (their identity lives in the shared cluster pair).
    ///
    /// `protect` lists ids that must survive this round regardless of
    /// recency (e.g. the object a fault just materialized); pinned and
    /// protected state can therefore keep the space above budget â the
    /// budget is best effort, never a correctness constraint.
    ///
    /// Returns `(replicas evicted, bytes freed)`.
    pub fn evict_replicas_to(&mut self, budget: usize, protect: &[ObjId]) -> (usize, usize) {
        let mut total = 0usize;
        let mut candidates: Vec<(u64, ObjId, usize)> = Vec::new();
        for (&id, slot) in &self.slots {
            if let Slot::Object(e) = slot {
                if e.meta.kind.is_master() {
                    continue;
                }
                let bytes = e.object.payload_size();
                total += bytes;
                let evictable = !e.meta.dirty
                    && e.meta.cluster.is_none()
                    && !self.roots.contains(&id)
                    && !protect.contains(&id);
                if evictable {
                    candidates.push((e.meta.last_used, id, bytes));
                }
            }
        }
        if total <= budget {
            return (0, 0);
        }
        candidates.sort_unstable_by_key(|(used, id, _)| (*used, *id));
        let mut evicted = 0usize;
        let mut freed = 0usize;
        for (_, id, bytes) in candidates {
            if total <= budget {
                break;
            }
            let Some(Slot::Object(e)) = self.slots.get(&id) else {
                continue;
            };
            let ReplicaKind::Replica { provider } = e.meta.kind else {
                continue;
            };
            let class = e.object.class_name().to_owned();
            self.index_frontier(id);
            self.slots.insert(
                id,
                Slot::Proxy(ProxyOut::new(
                    id,
                    class,
                    provider,
                    obiwan_wire::WireMode::Incremental { batch: 1 },
                )),
            );
            total -= bytes;
            freed += bytes;
            evicted += 1;
        }
        (evicted, freed)
    }

    /// Mark-and-sweep over the handle graph (the stand-in for the JVM GC
    /// the paper leans on to reclaim dead proxy-outs).
    ///
    /// Marking starts from the root set, all masters, and every busy slot;
    /// it follows the `refs()` of live objects. Unreachable proxies are
    /// always collected. Unreachable *clean* replicas are collected only
    /// when `collect_replicas` is set (dirty replicas hold un-pushed work
    /// and always survive).
    pub fn collect_garbage(&mut self, collect_replicas: bool) -> GcStats {
        let mut marked: HashSet<ObjId> = HashSet::new();
        let mut queue: VecDeque<ObjId> = VecDeque::new();

        // Seeds are exactly the slots guaranteed to survive the sweep:
        // everything they reference must survive too, or the handle graph
        // would dangle. In particular, when clean replicas are retained
        // (`!collect_replicas`) they must seed marking, otherwise their
        // frontier proxies would be swept out from under them.
        for (&id, slot) in &self.slots {
            let is_seed = match slot {
                Slot::Busy(_) => true,
                Slot::Object(e) => {
                    e.meta.kind.is_master()
                        || e.meta.dirty
                        || self.roots.contains(&id)
                        || !collect_replicas
                }
                Slot::Proxy(_) => self.roots.contains(&id),
            };
            if is_seed {
                queue.push_back(id);
            }
        }

        while let Some(id) = queue.pop_front() {
            if !marked.insert(id) {
                continue;
            }
            if let Some(Slot::Object(entry)) = self.slots.get(&id) {
                for r in entry.object.refs() {
                    if !marked.contains(&r.id()) {
                        queue.push_back(r.id());
                    }
                }
            }
        }

        let mut stats = GcStats::default();
        self.slots.retain(|id, slot| {
            if marked.contains(id) {
                stats.live += 1;
                return true;
            }
            match slot {
                Slot::Proxy(_) => {
                    stats.proxies_reclaimed += 1;
                    false
                }
                Slot::Object(entry)
                    if collect_replicas
                        && !entry.meta.kind.is_master()
                        && !entry.meta.dirty =>
                {
                    stats.replicas_reclaimed += 1;
                    false
                }
                _ => {
                    stats.live += 1;
                    true
                }
            }
        });
        let slots = &self.slots;
        self.frontier_set
            .retain(|id| matches!(slots.get(id), Some(Slot::Proxy(_))));
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::LinkedItem;
    use obiwan_wire::WireMode;

    fn space() -> ObjectSpace {
        ObjectSpace::new(SiteId::new(1))
    }

    fn boxed(v: i64) -> Box<dyn ObiObject> {
        Box::new(LinkedItem::new(v, "t"))
    }

    #[test]
    fn create_assigns_fresh_local_ids() {
        let mut s = space();
        let a = s.create(boxed(1));
        let b = s.create(boxed(2));
        assert_ne!(a, b);
        assert_eq!(a.id().site(), SiteId::new(1));
        assert_eq!(s.len(), 2);
        assert!(matches!(s.resolve(a.id()), Resolution::Object(m) if m.kind.is_master()));
    }

    #[test]
    fn take_and_restore_cycle() {
        let mut s = space();
        let a = s.create(boxed(1));
        let entry = s.take_object(a.id()).unwrap();
        assert!(matches!(s.resolve(a.id()), Resolution::Busy));
        // Metadata still readable while busy.
        assert_eq!(s.meta(a.id()).unwrap().version, 1);
        // Double-take is re-entrancy.
        assert!(matches!(
            s.take_object(a.id()),
            Err(ObiError::ReentrantInvocation(_))
        ));
        s.restore_object(entry);
        assert!(matches!(s.resolve(a.id()), Resolution::Object(_)));
    }

    #[test]
    fn taking_absent_or_proxy_fails() {
        let mut s = space();
        let ghost = ObjId::new(SiteId::new(9), 9);
        assert!(matches!(
            s.take_object(ghost),
            Err(ObiError::NoSuchObject(_))
        ));
        s.insert_proxy(ProxyOut::new(
            ghost,
            "LinkedItem",
            SiteId::new(9),
            WireMode::Incremental { batch: 1 },
        ));
        assert!(matches!(
            s.take_object(ghost),
            Err(ObiError::NoSuchObject(_))
        ));
        assert!(matches!(s.resolve(ghost), Resolution::Proxy(_)));
    }

    #[test]
    fn proxies_never_downgrade_live_objects() {
        let mut s = space();
        let a = s.create(boxed(1));
        s.insert_proxy(ProxyOut::new(
            a.id(),
            "LinkedItem",
            SiteId::new(2),
            WireMode::Transitive,
        ));
        assert!(matches!(s.resolve(a.id()), Resolution::Object(_)));
    }

    #[test]
    fn replica_insert_overwrites_proxy_slot() {
        // This is the swizzle: same handle, new resolution.
        let mut s = space();
        let id = ObjId::new(SiteId::new(2), 5);
        s.insert_proxy(ProxyOut::new(
            id,
            "LinkedItem",
            SiteId::new(2),
            WireMode::Incremental { batch: 1 },
        ));
        s.insert_object(ObjectEntry {
            object: boxed(5),
            meta: ObjectMeta::replica(id, SiteId::new(2), 3),
        });
        match s.resolve(id) {
            Resolution::Object(m) => {
                assert_eq!(m.version, 3);
                assert!(!m.kind.is_master());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(s.proxy_count(), 0);
    }

    #[test]
    fn gc_reclaims_unreachable_proxies_only() {
        let mut s = space();
        // head -> tail chain; head is a root. A stray proxy is unreachable.
        let tail = s.create(boxed(2));
        let head = s.create(Box::new(LinkedItem::with_next(1, "h", tail)));
        s.add_root(head.id());
        let stray = ObjId::new(SiteId::new(7), 1);
        s.insert_proxy(ProxyOut::new(
            stray,
            "LinkedItem",
            SiteId::new(7),
            WireMode::Incremental { batch: 1 },
        ));
        let stats = s.collect_garbage(false);
        assert_eq!(stats.proxies_reclaimed, 1);
        assert_eq!(stats.replicas_reclaimed, 0);
        assert!(matches!(s.resolve(stray), Resolution::Absent));
        assert!(matches!(s.resolve(tail.id()), Resolution::Object(_)));
    }

    #[test]
    fn gc_keeps_reachable_proxies() {
        let mut s = space();
        let remote = ObjId::new(SiteId::new(2), 3);
        // A replica (dirty, so it survives) references a proxy.
        let holder = s.create(Box::new(LinkedItem::with_next(
            1,
            "holder",
            ObjRef::new(remote),
        )));
        s.add_root(holder.id());
        s.insert_proxy(ProxyOut::new(
            remote,
            "LinkedItem",
            SiteId::new(2),
            WireMode::Incremental { batch: 1 },
        ));
        let stats = s.collect_garbage(false);
        assert_eq!(stats.proxies_reclaimed, 0);
        assert!(matches!(s.resolve(remote), Resolution::Proxy(_)));
        assert_eq!(stats.live, 2);
    }

    #[test]
    fn gc_replica_policy() {
        let mut s = space();
        let id_clean = ObjId::new(SiteId::new(2), 1);
        let id_dirty = ObjId::new(SiteId::new(2), 2);
        s.insert_object(ObjectEntry {
            object: boxed(1),
            meta: ObjectMeta::replica(id_clean, SiteId::new(2), 1),
        });
        let mut dirty_meta = ObjectMeta::replica(id_dirty, SiteId::new(2), 1);
        dirty_meta.dirty = true;
        s.insert_object(ObjectEntry {
            object: boxed(2),
            meta: dirty_meta,
        });
        // Without collect_replicas both survive.
        let stats = s.collect_garbage(false);
        assert_eq!(stats.replicas_reclaimed, 0);
        // With it, only the clean unreachable one goes.
        let stats = s.collect_garbage(true);
        assert_eq!(stats.replicas_reclaimed, 1);
        assert!(matches!(s.resolve(id_clean), Resolution::Absent));
        assert!(matches!(s.resolve(id_dirty), Resolution::Object(_)));
    }

    #[test]
    fn masters_always_survive_gc() {
        let mut s = space();
        let a = s.create(boxed(1)); // unreferenced, not a root
        let stats = s.collect_garbage(true);
        assert_eq!(stats.live, 1);
        assert!(matches!(s.resolve(a.id()), Resolution::Object(_)));
    }

    #[test]
    fn with_object_gives_read_access() {
        let mut s = space();
        let a = s.create(boxed(42));
        let class = s.with_object(a.id(), |o, m| {
            assert_eq!(m.version, 1);
            o.class_name().to_string()
        });
        assert_eq!(class.unwrap(), "LinkedItem");
    }

    fn proxy(id: ObjId) -> ProxyOut {
        ProxyOut::new(
            id,
            "LinkedItem",
            SiteId::new(2),
            WireMode::Incremental { batch: 1 },
        )
    }

    #[test]
    fn frontier_index_tracks_proxy_lifecycle() {
        let mut s = space();
        let a = ObjId::new(SiteId::new(2), 1);
        let b = ObjId::new(SiteId::new(2), 2);
        s.insert_proxy(proxy(a));
        s.insert_proxy(proxy(b));
        s.insert_proxy(proxy(a)); // duplicate insert does not double-count
        assert_eq!(s.frontier_len(), 2);
        // Materializing a replica over a proxy slot removes it from the
        // index; removing a slot does too.
        s.insert_object(ObjectEntry {
            object: boxed(1),
            meta: ObjectMeta::replica(a, SiteId::new(2), 1),
        });
        assert_eq!(s.frontier_len(), 1);
        s.remove(b);
        assert_eq!(s.frontier_len(), 0);
        assert!(s.frontier_candidates(10).is_empty());
    }

    #[test]
    fn frontier_candidates_are_oldest_first_and_rotate() {
        let mut s = space();
        let ids: Vec<ObjId> = (1..=4).map(|i| ObjId::new(SiteId::new(2), i)).collect();
        for &id in &ids {
            s.insert_proxy(proxy(id));
        }
        let first = s.frontier_candidates(2);
        assert_eq!(
            first.iter().map(|p| p.target).collect::<Vec<_>>(),
            vec![ids[0], ids[1]]
        );
        // Candidates stay indexed but rotate to the back, so the next call
        // surfaces the others.
        let second = s.frontier_candidates(2);
        assert_eq!(
            second.iter().map(|p| p.target).collect::<Vec<_>>(),
            vec![ids[2], ids[3]]
        );
        assert_eq!(s.frontier_len(), 4);
    }

    #[test]
    fn eviction_feeds_the_frontier_index() {
        let mut s = space();
        let id = ObjId::new(SiteId::new(2), 7);
        s.insert_object(ObjectEntry {
            object: boxed(7),
            meta: ObjectMeta::replica(id, SiteId::new(2), 1),
        });
        assert_eq!(s.frontier_len(), 0);
        let (evicted, _) = s.evict_replicas_to(0, &[]);
        assert_eq!(evicted, 1);
        assert_eq!(s.frontier_len(), 1);
        assert_eq!(s.frontier_candidates(1)[0].target, id);
    }

    #[test]
    fn gc_sweeps_the_frontier_index() {
        let mut s = space();
        let stray = ObjId::new(SiteId::new(7), 1);
        s.insert_proxy(proxy(stray));
        assert_eq!(s.frontier_len(), 1);
        s.collect_garbage(false);
        assert_eq!(s.frontier_len(), 0);
    }

    #[test]
    fn roots_toggle() {
        let mut s = space();
        let a = s.create(boxed(1));
        assert!(!s.is_root(a.id()));
        s.add_root(a.id());
        assert!(s.is_root(a.id()));
        s.remove_root(a.id());
        assert!(!s.is_root(a.id()));
    }
}

//! Consistency hooks (paper §1, item iv).
//!
//! OBIWAN deliberately "leaves the responsibility of maintaining (or not)
//! the consistency of replicas to the programmer", but provides hooks where
//! a consistency-protocol library plugs in. [`ConsistencyHook`] is that
//! hook: the master site consults it on every incoming `put`, and observes
//! every master mutation through it. The `obiwan-consistency` crate ships a
//! library of policies implementing this trait; [`AcceptAll`] is the
//! laissez-faire default.

use obiwan_util::{ObjId, Result};

/// Decides whether replica write-backs are accepted and observes master
/// mutations.
///
/// Implementations run under the process lock; they must not block on the
/// network.
pub trait ConsistencyHook: Send {
    /// A short policy name for diagnostics.
    fn name(&self) -> &'static str {
        "accept-all"
    }

    /// Called before applying a `put` of `object`: `master_version` is the
    /// master's current version, `base_version` the version the replica was
    /// based on.
    ///
    /// # Errors
    ///
    /// Returning an error (typically
    /// [`ObiError::UpdateRejected`](obiwan_util::ObiError::UpdateRejected))
    /// rejects the whole `put`.
    fn decide_put(&mut self, object: ObjId, master_version: u64, base_version: u64) -> Result<()> {
        let _ = (object, master_version, base_version);
        Ok(())
    }

    /// Called after any master mutation (local invocation or accepted
    /// `put`) with the new version.
    fn on_master_updated(&mut self, object: ObjId, new_version: u64) {
        let _ = (object, new_version);
    }
}

/// The default policy: every `put` wins (last writer wins, by arrival).
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl ConsistencyHook for AcceptAll {}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_util::SiteId;

    #[test]
    fn accept_all_accepts_everything() {
        let mut hook = AcceptAll;
        let id = ObjId::new(SiteId::new(1), 1);
        assert!(hook.decide_put(id, 10, 1).is_ok());
        assert!(hook.decide_put(id, 1, 10).is_ok());
        hook.on_master_updated(id, 11);
        assert_eq!(hook.name(), "accept-all");
    }

    #[test]
    fn hook_is_object_safe() {
        fn _takes(_: &mut dyn ConsistencyHook) {}
    }
}

//! Object references as held inside object fields.

use obiwan_util::ObjId;
use std::fmt;

/// A reference from one OBIWAN object to another.
///
/// In the original Java system a field of `A'` first points at `BProxyOut`
/// and is later *swizzled* (`updateMember`) to point directly at `B'`. In
/// Rust, arbitrary cyclic direct references are not expressible, so an
/// `ObjRef` is a stable handle (the target's [`ObjId`]) resolved through the
/// local [`ObjectSpace`](crate::space::ObjectSpace) on each use. Swizzling
/// becomes a slot replacement: the same handle that used to resolve to a
/// proxy-out resolves to the replica afterwards, with no per-field rewrite.
///
/// # Examples
///
/// ```
/// use obiwan_core::ObjRef;
/// use obiwan_util::{ObjId, SiteId};
///
/// let r = ObjRef::new(ObjId::new(SiteId::new(1), 2));
/// assert_eq!(r.id().local(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjRef(ObjId);

impl ObjRef {
    /// Wraps an object id.
    pub const fn new(id: ObjId) -> Self {
        ObjRef(id)
    }

    /// The referenced object's identity.
    pub const fn id(self) -> ObjId {
        self.0
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "&{}", self.0)
    }
}

impl From<ObjId> for ObjRef {
    fn from(id: ObjId) -> Self {
        ObjRef(id)
    }
}

impl From<ObjRef> for ObjId {
    fn from(r: ObjRef) -> Self {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_util::SiteId;

    #[test]
    fn roundtrip_through_obj_id() {
        let id = ObjId::new(SiteId::new(4), 11);
        let r: ObjRef = id.into();
        let back: ObjId = r.into();
        assert_eq!(back, id);
        assert_eq!(r.to_string(), "&S4/11");
    }
}

//! The striped object table: [`crate::space::ObjectSpace`] semantics behind per-shard
//! locks.
//!
//! [`ShardedSpace`] splits the slot table into N shards keyed by a
//! deterministic hash of the [`ObjId`], each behind its own
//! [`obiwan_util::sync::RwLock`] from the workspace lock facade (so
//! the `lockcheck` detector sees every acquisition). Single-object
//! operations — resolve, invoke take/restore, replica materialization —
//! touch exactly one shard, which is what lets many reader threads serve
//! `get` batches concurrently while writers mutate disjoint shards.
//!
//! Lock discipline (enforced by `lockcheck` at runtime and the
//! `single-shard-guard` lint rule statically):
//!
//! * a function holds at most one shard guard at a time, acquired and
//!   released before the next shard is touched (always in ascending shard
//!   index order);
//! * whole-table operations (GC, eviction) take every shard through
//!   [`obiwan_util::sync::lock_many`], the one sanctioned multi-guard path,
//!   which also acquires in index order.
//!
//! Observational equivalence with the unsharded [`crate::space::ObjectSpace`] is a tested
//! property (`tests/sharded_equivalence.rs`): for any single-threaded op
//! sequence both tables report the same resolutions, demand batches,
//! frontier pops, eviction choices and GC stats. The global frontier FIFO is
//! preserved across shards by stamping each queue entry with a process-wide
//! monotone counter and merge-sorting candidates by stamp.

use crate::object::ObiObject;
use crate::objref::ObjRef;
use crate::proxy::ProxyOut;
use crate::space::{GcStats, ObjectEntry, ObjectMeta, ReplicaKind, Resolution, Slot, SpaceView};
use obiwan_util::sync::{lock_many, RwLock};
use obiwan_util::{ObiError, ObjId, Result, SiteId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default stripe count; a power of two so the hash mix spreads evenly.
pub const DEFAULT_SHARDS: usize = 16;

/// One stripe of the table: its slots plus the shard-local slices of the
/// frontier index and root set.
struct Shard {
    slots: HashMap<ObjId, Slot>,
    /// Frontier entries as `(global stamp, id)`, oldest stamp first.
    /// Like the unsharded queue it may hold stale ids, cleaned lazily.
    frontier_queue: VecDeque<(u64, ObjId)>,
    /// Authoritative frontier membership for ids hashing to this shard.
    frontier_set: HashSet<ObjId>,
    /// GC roots hashing to this shard.
    roots: HashSet<ObjId>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            slots: HashMap::new(),
            frontier_queue: VecDeque::new(),
            frontier_set: HashSet::new(),
            roots: HashSet::new(),
        }
    }
}

/// The sharded object table hosted by one process.
///
/// API parity with [`crate::space::ObjectSpace`], except every method takes
/// `&self` (interior mutability via the shard locks) and metadata mutation
/// goes through [`ShardedSpace::update_meta`] instead of a `meta_mut`
/// borrow.
pub struct ShardedSpace {
    site: SiteId,
    shards: Vec<RwLock<Shard>>,
    next_local: AtomicU64,
    use_tick: AtomicU64,
    frontier_stamp: AtomicU64,
}

impl std::fmt::Debug for ShardedSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSpace")
            .field("site", &self.site)
            .field("shards", &self.shards.len())
            .field("slots", &self.len())
            .finish()
    }
}

impl ShardedSpace {
    /// Creates an empty space owned by `site` with [`DEFAULT_SHARDS`]
    /// stripes.
    pub fn new(site: SiteId) -> Self {
        Self::with_shards(site, DEFAULT_SHARDS)
    }

    /// Creates an empty space with an explicit stripe count (≥ 1; clamped).
    pub fn with_shards(site: SiteId, shards: usize) -> Self {
        ShardedSpace {
            site,
            shards: (0..shards.max(1)).map(|_| RwLock::new(Shard::new())).collect(),
            next_local: AtomicU64::new(1),
            use_tick: AtomicU64::new(1),
            frontier_stamp: AtomicU64::new(0),
        }
    }

    /// The owning site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Number of stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe `id` hashes to. Deterministic (not `RandomState`), so two
    /// processes shard identically and tests can target specific stripes.
    pub fn shard_index(&self, id: ObjId) -> usize {
        let mut h = id.local().wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= (id.site().as_u32() as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        ((h >> 32) as usize) % self.shards.len()
    }

    fn shard(&self, id: ObjId) -> &RwLock<Shard> {
        &self.shards[self.shard_index(id)]
    }

    fn bump_tick(&self) -> u64 {
        self.use_tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn next_stamp(&self) -> u64 {
        self.frontier_stamp.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of slots (objects + proxies + busy markers).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().slots.len()).sum()
    }

    /// True when the space holds nothing.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().slots.is_empty())
    }

    /// Creates a new master object, assigning it a fresh id.
    pub fn create(&self, object: Box<dyn ObiObject>) -> ObjRef {
        let id = ObjId::new(self.site, self.next_local.fetch_add(1, Ordering::Relaxed));
        let mut meta = ObjectMeta::master(id);
        meta.last_used = self.bump_tick();
        self.shard(id)
            .write()
            .slots
            .insert(id, Slot::Object(ObjectEntry { object, meta }));
        ObjRef::new(id)
    }

    /// Inserts (or replaces) a live object under an explicit id — used when
    /// materializing replicas.
    pub fn insert_object(&self, mut entry: ObjectEntry) {
        entry.meta.last_used = self.bump_tick();
        let id = entry.meta.id;
        let mut g = self.shard(id).write();
        g.frontier_set.remove(&id);
        g.slots.insert(id, Slot::Object(entry));
    }

    /// Marks `id` as just-used (freshens it against LRU eviction) without
    /// invoking it.
    pub fn touch(&self, id: ObjId) {
        let tick = self.bump_tick();
        if let Some(Slot::Object(entry)) = self.shard(id).write().slots.get_mut(&id) {
            entry.meta.last_used = tick;
        }
    }

    /// Inserts a proxy-out slot for a frontier edge. Existing live objects
    /// are never downgraded to proxies; the insert is skipped.
    pub fn insert_proxy(&self, proxy: ProxyOut) {
        let id = proxy.target;
        let mut g = self.shard(id).write();
        match g.slots.get(&id) {
            Some(Slot::Object(_)) | Some(Slot::Busy(_)) => {}
            _ => {
                if g.frontier_set.insert(id) {
                    let stamp = self.next_stamp();
                    g.frontier_queue.push_back((stamp, id));
                }
                g.slots.insert(id, Slot::Proxy(proxy));
            }
        }
    }

    /// Number of proxy-out slots currently indexed as demand candidates.
    pub fn frontier_len(&self) -> usize {
        self.shards.iter().map(|s| s.read().frontier_set.len()).sum()
    }

    /// Up to `max` frontier proxies, globally oldest first, rotating through
    /// the frontier exactly like the unsharded queue.
    ///
    /// Two passes, never holding more than one shard lock: pass one
    /// snapshots every queue entry shard by shard (index order) and
    /// merge-sorts by stamp to reconstruct the global FIFO; pass two applies
    /// the resulting rotations and lazy cleanups, again one shard at a time
    /// in index order.
    pub fn frontier_candidates(&self, max: usize) -> Vec<ProxyOut> {
        struct Entry {
            stamp: u64,
            id: ObjId,
            shard: usize,
            indexed: bool,
            live: Option<ProxyOut>,
        }
        let mut entries: Vec<Entry> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let g = shard.read();
            for &(stamp, id) in &g.frontier_queue {
                let indexed = g.frontier_set.contains(&id);
                let live = match g.slots.get(&id) {
                    Some(Slot::Proxy(p)) if indexed => Some(p.clone()),
                    _ => None,
                };
                entries.push(Entry {
                    stamp,
                    id,
                    shard: si,
                    indexed,
                    live,
                });
            }
        }
        entries.sort_unstable_by_key(|e| e.stamp);

        // Replay the unsharded algorithm over the merged virtual queue.
        let mut out: Vec<ProxyOut> = Vec::new();
        // Entries to delete outright, per shard: (stamp, id).
        let mut drops: Vec<Vec<(u64, ObjId)>> = vec![Vec::new(); self.shards.len()];
        // Ids to drop from the frontier set (slot no longer a proxy).
        let mut deindex: Vec<Vec<ObjId>> = vec![Vec::new(); self.shards.len()];
        // Entries to rotate to the back, in pop order: (shard, stamp, id).
        let mut rotate: Vec<(usize, u64, ObjId)> = Vec::new();
        for e in &entries {
            if out.len() >= max {
                break;
            }
            if !e.indexed {
                drops[e.shard].push((e.stamp, e.id));
                continue;
            }
            match &e.live {
                Some(p) => {
                    if out.iter().all(|c| c.target != e.id) {
                        out.push(p.clone());
                        rotate.push((e.shard, e.stamp, e.id));
                    } else {
                        // Duplicate queue entry: keep exactly one.
                        drops[e.shard].push((e.stamp, e.id));
                    }
                }
                None => {
                    drops[e.shard].push((e.stamp, e.id));
                    deindex[e.shard].push(e.id);
                }
            }
        }
        // Fresh stamps in pop order keep the rotated entries' relative
        // order at the back of the global FIFO.
        let restamped: Vec<(usize, u64, ObjId, u64)> = rotate
            .into_iter()
            .map(|(shard, stamp, id)| (shard, stamp, id, self.next_stamp()))
            .collect();

        for (si, shard) in self.shards.iter().enumerate() {
            let needs_write = !drops[si].is_empty()
                || !deindex[si].is_empty()
                || restamped.iter().any(|&(s, ..)| s == si);
            if !needs_write {
                continue;
            }
            let mut g = shard.write();
            for id in &deindex[si] {
                g.frontier_set.remove(id);
            }
            g.frontier_queue
                .retain(|entry| !drops[si].contains(entry));
            for &(s, old_stamp, id, new_stamp) in &restamped {
                if s != si {
                    continue;
                }
                // Re-validate under the write lock: a concurrent caller may
                // have rotated or removed the entry since pass one.
                let mut found = false;
                g.frontier_queue.retain(|&entry| {
                    let hit = entry == (old_stamp, id);
                    found |= hit;
                    !hit
                });
                if found && g.frontier_set.contains(&id) {
                    g.frontier_queue.push_back((new_stamp, id));
                }
            }
        }
        out
    }

    /// What does `id` currently resolve to?
    pub fn resolve(&self, id: ObjId) -> Resolution {
        match self.shard(id).read().slots.get(&id) {
            Some(Slot::Object(entry)) => Resolution::Object(entry.meta.clone()),
            Some(Slot::Proxy(p)) => Resolution::Proxy(p.clone()),
            Some(Slot::Busy(_)) => Resolution::Busy,
            None => Resolution::Absent,
        }
    }

    /// Metadata of a live or busy object (cloned out of the shard).
    pub fn meta(&self, id: ObjId) -> Option<ObjectMeta> {
        match self.shard(id).read().slots.get(&id) {
            Some(Slot::Object(entry)) => Some(entry.meta.clone()),
            Some(Slot::Busy(meta)) => Some(meta.clone()),
            _ => None,
        }
    }

    /// Runs `f` on the metadata of a live object (not busy ones: their meta
    /// is carried by the taken entry). Returns whether the object was live.
    pub fn update_meta(&self, id: ObjId, f: impl FnOnce(&mut ObjectMeta)) -> bool {
        match self.shard(id).write().slots.get_mut(&id) {
            Some(Slot::Object(entry)) => {
                f(&mut entry.meta);
                true
            }
            _ => false,
        }
    }

    /// Takes a live object out for invocation, leaving a `Busy` marker.
    ///
    /// # Errors
    ///
    /// * [`ObiError::ReentrantInvocation`] if the object is already out.
    /// * [`ObiError::NoSuchObject`] if the id is absent or a proxy.
    pub fn take_object(&self, id: ObjId) -> Result<ObjectEntry> {
        let tick = self.bump_tick();
        let mut g = self.shard(id).write();
        match g.slots.get_mut(&id) {
            Some(Slot::Object(entry)) => {
                entry.meta.last_used = tick;
                let meta = entry.meta.clone();
                match g.slots.insert(id, Slot::Busy(meta)) {
                    Some(Slot::Object(entry)) => Ok(entry),
                    _ => unreachable!("slot changed under the shard write lock"),
                }
            }
            Some(Slot::Busy(_)) => Err(ObiError::ReentrantInvocation(id)),
            _ => Err(ObiError::NoSuchObject(id)),
        }
    }

    /// Returns an object taken with [`ShardedSpace::take_object`].
    pub fn restore_object(&self, entry: ObjectEntry) {
        let id = entry.meta.id;
        self.shard(id).write().slots.insert(id, Slot::Object(entry));
    }

    /// Read-only access to a live object.
    ///
    /// # Errors
    ///
    /// [`ObiError::NoSuchObject`] when absent/proxy,
    /// [`ObiError::ReentrantInvocation`] when busy.
    pub fn with_object<R>(
        &self,
        id: ObjId,
        f: impl FnOnce(&dyn ObiObject, &ObjectMeta) -> R,
    ) -> Result<R> {
        match self.shard(id).read().slots.get(&id) {
            Some(Slot::Object(entry)) => Ok(f(entry.object.as_ref(), &entry.meta)),
            Some(Slot::Busy(_)) => Err(ObiError::ReentrantInvocation(id)),
            _ => Err(ObiError::NoSuchObject(id)),
        }
    }

    /// Removes a slot entirely, returning whether it existed.
    pub fn remove(&self, id: ObjId) -> bool {
        let mut g = self.shard(id).write();
        g.frontier_set.remove(&id);
        g.slots.remove(&id).is_some()
    }

    /// Marks `id` as a GC root (exported, name-bound, or application-held).
    pub fn add_root(&self, id: ObjId) {
        self.shard(id).write().roots.insert(id);
    }

    /// Unmarks a GC root.
    pub fn remove_root(&self, id: ObjId) {
        self.shard(id).write().roots.remove(&id);
    }

    /// True when `id` is a root.
    pub fn is_root(&self, id: ObjId) -> bool {
        self.shard(id).read().roots.contains(&id)
    }

    /// Ids of all live objects (masters and replicas), unordered.
    pub fn object_ids(&self) -> Vec<ObjId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let g = shard.read();
            out.extend(
                g.slots
                    .iter()
                    .filter(|(_, s)| matches!(s, Slot::Object(_) | Slot::Busy(_)))
                    .map(|(id, _)| *id),
            );
        }
        out
    }

    /// Ids of all proxy-out slots, unordered.
    pub fn proxy_ids(&self) -> Vec<ObjId> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let g = shard.read();
            out.extend(
                g.slots
                    .iter()
                    .filter(|(_, s)| matches!(s, Slot::Proxy(_)))
                    .map(|(id, _)| *id),
            );
        }
        out
    }

    /// Number of live proxy-out slots.
    pub fn proxy_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .slots
                    .values()
                    .filter(|slot| matches!(slot, Slot::Proxy(_)))
                    .count()
            })
            .sum()
    }

    /// Approximate bytes of serialized state held by *replica* slots.
    pub fn replica_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .slots
                    .values()
                    .filter_map(|slot| match slot {
                        Slot::Object(e) if !e.meta.kind.is_master() => {
                            Some(e.object.payload_size())
                        }
                        _ => None,
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    /// Evicts least-recently-used replicas until replica state fits in
    /// `budget` bytes. Same policy as the unsharded table (never masters,
    /// dirty replicas, roots, busy slots, cluster members, or `protect`
    /// entries); holds every shard via `lock_many` for a consistent global
    /// LRU order.
    ///
    /// Returns `(replicas evicted, bytes freed)`.
    pub fn evict_replicas_to(&self, budget: usize, protect: &[ObjId]) -> (usize, usize) {
        let mut guards = lock_many(&self.shards);
        let mut total = 0usize;
        let mut candidates: Vec<(u64, ObjId, usize)> = Vec::new();
        for g in guards.iter() {
            for (&id, slot) in &g.slots {
                if let Slot::Object(e) = slot {
                    if e.meta.kind.is_master() {
                        continue;
                    }
                    let bytes = e.object.payload_size();
                    total += bytes;
                    let evictable = !e.meta.dirty
                        && e.meta.cluster.is_none()
                        && !g.roots.contains(&id)
                        && !protect.contains(&id);
                    if evictable {
                        candidates.push((e.meta.last_used, id, bytes));
                    }
                }
            }
        }
        if total <= budget {
            return (0, 0);
        }
        candidates.sort_unstable_by_key(|(used, id, _)| (*used, *id));
        let mut evicted = 0usize;
        let mut freed = 0usize;
        for (_, id, bytes) in candidates {
            if total <= budget {
                break;
            }
            let g = &mut guards[self.shard_index(id)];
            let Some(Slot::Object(e)) = g.slots.get(&id) else {
                continue;
            };
            let ReplicaKind::Replica { provider } = e.meta.kind else {
                continue;
            };
            let class = e.object.class_name().to_owned();
            if g.frontier_set.insert(id) {
                let stamp = self.next_stamp();
                g.frontier_queue.push_back((stamp, id));
            }
            g.slots.insert(
                id,
                Slot::Proxy(ProxyOut::new(
                    id,
                    class,
                    provider,
                    obiwan_wire::WireMode::Incremental { batch: 1 },
                )),
            );
            total -= bytes;
            freed += bytes;
            evicted += 1;
        }
        (evicted, freed)
    }

    /// Mark-and-sweep over the handle graph; same seeds and sweep policy as
    /// the unsharded table. Holds every shard via `lock_many` so the marked
    /// set is a consistent snapshot.
    pub fn collect_garbage(&self, collect_replicas: bool) -> GcStats {
        let mut guards = lock_many(&self.shards);
        let mut marked: HashSet<ObjId> = HashSet::new();
        let mut queue: VecDeque<ObjId> = VecDeque::new();

        for g in guards.iter() {
            for (&id, slot) in &g.slots {
                let is_seed = match slot {
                    Slot::Busy(_) => true,
                    Slot::Object(e) => {
                        e.meta.kind.is_master()
                            || e.meta.dirty
                            || g.roots.contains(&id)
                            || !collect_replicas
                    }
                    Slot::Proxy(_) => g.roots.contains(&id),
                };
                if is_seed {
                    queue.push_back(id);
                }
            }
        }

        while let Some(id) = queue.pop_front() {
            if !marked.insert(id) {
                continue;
            }
            if let Some(Slot::Object(entry)) = guards[self.shard_index(id)].slots.get(&id) {
                for r in entry.object.refs() {
                    if !marked.contains(&r.id()) {
                        queue.push_back(r.id());
                    }
                }
            }
        }

        let mut stats = GcStats::default();
        for g in guards.iter_mut() {
            let shard: &mut Shard = g;
            shard.slots.retain(|id, slot| {
                if marked.contains(id) {
                    stats.live += 1;
                    return true;
                }
                match slot {
                    Slot::Proxy(_) => {
                        stats.proxies_reclaimed += 1;
                        false
                    }
                    Slot::Object(entry)
                        if collect_replicas
                            && !entry.meta.kind.is_master()
                            && !entry.meta.dirty =>
                    {
                        stats.replicas_reclaimed += 1;
                        false
                    }
                    _ => {
                        stats.live += 1;
                        true
                    }
                }
            });
            let slots = &shard.slots;
            shard
                .frontier_set
                .retain(|id| matches!(slots.get(id), Some(Slot::Proxy(_))));
        }
        stats
    }
}

impl SpaceView for ShardedSpace {
    fn site(&self) -> SiteId {
        self.site
    }

    fn resolve(&self, id: ObjId) -> Resolution {
        ShardedSpace::resolve(self, id)
    }

    fn with_object<R>(
        &self,
        id: ObjId,
        f: impl FnOnce(&dyn ObiObject, &ObjectMeta) -> R,
    ) -> Result<R> {
        ShardedSpace::with_object(self, id, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::LinkedItem;
    use obiwan_wire::WireMode;

    fn space() -> ShardedSpace {
        ShardedSpace::with_shards(SiteId::new(1), 4)
    }

    fn boxed(v: i64) -> Box<dyn ObiObject> {
        Box::new(LinkedItem::new(v, "t"))
    }

    fn proxy(id: ObjId) -> ProxyOut {
        ProxyOut::new(
            id,
            "LinkedItem",
            SiteId::new(2),
            WireMode::Incremental { batch: 1 },
        )
    }

    #[test]
    fn create_take_restore_cycle() {
        let s = space();
        let a = s.create(boxed(1));
        assert_eq!(a.id().site(), SiteId::new(1));
        let entry = s.take_object(a.id()).unwrap();
        assert!(matches!(s.resolve(a.id()), Resolution::Busy));
        assert_eq!(s.meta(a.id()).unwrap().version, 1);
        assert!(matches!(
            s.take_object(a.id()),
            Err(ObiError::ReentrantInvocation(_))
        ));
        s.restore_object(entry);
        assert!(matches!(s.resolve(a.id()), Resolution::Object(_)));
    }

    #[test]
    fn shard_index_is_deterministic_and_in_range() {
        let s = space();
        for i in 0..100 {
            let id = ObjId::new(SiteId::new(i % 7), u64::from(i));
            let idx = s.shard_index(id);
            assert!(idx < s.shard_count());
            assert_eq!(idx, s.shard_index(id));
        }
    }

    #[test]
    fn frontier_rotates_globally_oldest_first_across_shards() {
        let s = space();
        let ids: Vec<ObjId> = (1..=6).map(|i| ObjId::new(SiteId::new(2), i)).collect();
        for &id in &ids {
            s.insert_proxy(proxy(id));
        }
        assert_eq!(s.frontier_len(), 6);
        let first = s.frontier_candidates(3);
        assert_eq!(
            first.iter().map(|p| p.target).collect::<Vec<_>>(),
            &ids[0..3]
        );
        let second = s.frontier_candidates(3);
        assert_eq!(
            second.iter().map(|p| p.target).collect::<Vec<_>>(),
            &ids[3..6]
        );
        // Third call wraps back to the rotated entries, still in order.
        let third = s.frontier_candidates(3);
        assert_eq!(
            third.iter().map(|p| p.target).collect::<Vec<_>>(),
            &ids[0..3]
        );
    }

    #[test]
    fn materialization_leaves_the_frontier() {
        let s = space();
        let id = ObjId::new(SiteId::new(2), 5);
        s.insert_proxy(proxy(id));
        assert_eq!(s.frontier_len(), 1);
        s.insert_object(ObjectEntry {
            object: boxed(5),
            meta: ObjectMeta::replica(id, SiteId::new(2), 3),
        });
        assert_eq!(s.frontier_len(), 0);
        assert!(s.frontier_candidates(10).is_empty());
        assert!(matches!(s.resolve(id), Resolution::Object(m) if m.version == 3));
    }

    #[test]
    fn eviction_is_globally_lru_and_feeds_the_frontier() {
        let s = space();
        let a = ObjId::new(SiteId::new(2), 1);
        let b = ObjId::new(SiteId::new(2), 2);
        s.insert_object(ObjectEntry {
            object: boxed(1),
            meta: ObjectMeta::replica(a, SiteId::new(2), 1),
        });
        s.insert_object(ObjectEntry {
            object: boxed(2),
            meta: ObjectMeta::replica(b, SiteId::new(2), 1),
        });
        s.touch(a); // b is now the LRU entry
        let before = s.replica_bytes();
        let (evicted, freed) = s.evict_replicas_to(before - 1, &[]);
        assert_eq!(evicted, 1);
        assert!(freed > 0);
        assert!(matches!(s.resolve(b), Resolution::Proxy(_)));
        assert!(matches!(s.resolve(a), Resolution::Object(_)));
        assert_eq!(s.frontier_candidates(1)[0].target, b);
    }

    #[test]
    fn gc_matches_unsharded_policy() {
        let s = space();
        let tail = s.create(boxed(2));
        let head = s.create(Box::new(LinkedItem::with_next(1, "h", tail)));
        s.add_root(head.id());
        let stray = ObjId::new(SiteId::new(7), 1);
        s.insert_proxy(proxy(stray));
        let stats = s.collect_garbage(false);
        assert_eq!(stats.proxies_reclaimed, 1);
        assert_eq!(stats.live, 2);
        assert!(matches!(s.resolve(stray), Resolution::Absent));
        assert_eq!(s.frontier_len(), 0);
    }

    #[test]
    fn update_meta_reaches_live_objects_only() {
        let s = space();
        let a = s.create(boxed(1));
        assert!(s.update_meta(a.id(), |m| m.version = 9));
        assert_eq!(s.meta(a.id()).unwrap().version, 9);
        let entry = s.take_object(a.id()).unwrap();
        assert!(!s.update_meta(a.id(), |m| m.version = 10));
        s.restore_object(entry);
        assert!(!s.update_meta(ObjId::new(SiteId::new(9), 9), |_| {}));
    }
}

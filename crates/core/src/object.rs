//! The object model: the [`ObiObject`] trait and the class registry.
//!
//! The original system used Java reflection plus the `obicomp` source
//! augmenter to make arbitrary classes replicable. In Rust, a class opts in
//! by implementing [`ObiObject`] — usually via the
//! [`obi_class!`](crate::obi_class) macro, which generates the entire impl
//! from a field/method declaration (the macro *is* our `obicomp`).

use crate::objref::ObjRef;
use crate::process::InvokeCtx;
use obiwan_util::{ObiError, Result};
use obiwan_wire::{Encoder, ObiValue};
use obiwan_util::sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A replicable, dynamically invocable OBIWAN object.
///
/// The contract mirrors what `obicomp` generated for Java classes:
///
/// * [`state`](ObiObject::state) / a registered decode function — the
///   serialization pair (Java serialization's role);
/// * [`refs`](ObiObject::refs) — the out-edges, which drive incremental
///   graph replication;
/// * [`invoke`](ObiObject::invoke) — dynamic dispatch, because objects may
///   only be manipulated through methods (paper §2.1: proxies share the
///   interface but not the implementation, so no direct field access).
pub trait ObiObject: Send + Sync {
    /// The class name, resolved against a [`ClassRegistry`] on the
    /// receiving site.
    fn class_name(&self) -> &'static str;

    /// A serializable snapshot of the object's fields.
    fn state(&self) -> ObiValue;

    /// Every object reference held in this object's fields, in field order.
    fn refs(&self) -> Vec<ObjRef>;

    /// Dynamically dispatches `method`.
    ///
    /// # Errors
    ///
    /// Implementations return [`ObiError::NoSuchMethod`] for unknown method
    /// names and [`ObiError::BadArguments`] for argument mismatches.
    fn invoke(
        &mut self,
        ctx: &mut InvokeCtx<'_>,
        method: &str,
        args: &ObiValue,
    ) -> Result<ObiValue>;

    /// Size in bytes of the serialized state; used for cost accounting.
    ///
    /// The default encodes [`state`](ObiObject::state) and measures it.
    fn payload_size(&self) -> usize {
        let mut enc = Encoder::new();
        enc.put_value(&self.state());
        enc.len()
    }
}

/// A function materializing an object from its serialized state.
pub type DecodeFn = Arc<dyn Fn(&ObiValue) -> Result<Box<dyn ObiObject>> + Send + Sync>;

/// Maps class names to decode functions — each site's "classpath".
///
/// A replica batch can only be materialized on a site whose registry knows
/// every class in the batch; unknown classes yield
/// [`ObiError::Decode`].
///
/// # Examples
///
/// ```
/// use obiwan_core::{ClassRegistry, demo::LinkedItem};
///
/// let registry = ClassRegistry::new();
/// LinkedItem::register(&registry);
/// assert!(registry.knows("LinkedItem"));
/// ```
#[derive(Clone, Default)]
pub struct ClassRegistry {
    classes: Arc<RwLock<HashMap<&'static str, DecodeFn>>>,
}

impl std::fmt::Debug for ClassRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.classes.read().keys().copied().collect();
        names.sort_unstable();
        f.debug_tuple("ClassRegistry").field(&names).finish()
    }
}

impl ClassRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ClassRegistry::default()
    }

    /// Registers (or replaces) a class decoder.
    pub fn register(&self, class: &'static str, decode: DecodeFn) {
        self.classes.write().insert(class, decode);
    }

    /// True when `class` can be decoded.
    pub fn knows(&self, class: &str) -> bool {
        self.classes.read().contains_key(class)
    }

    /// Materializes an object of `class` from `state`.
    ///
    /// # Errors
    ///
    /// [`ObiError::Decode`] when the class is unknown or the state does not
    /// match the class's fields.
    pub fn decode(&self, class: &str, state: &ObiValue) -> Result<Box<dyn ObiObject>> {
        let decode = self
            .classes
            .read()
            .get(class)
            .cloned()
            .ok_or_else(|| ObiError::Decode(format!("unknown class `{class}`")))?;
        decode(state)
    }

    /// Number of registered classes.
    pub fn len(&self) -> usize {
        self.classes.read().len()
    }

    /// True when no classes are registered.
    pub fn is_empty(&self) -> bool {
        self.classes.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{Counter, LinkedItem};

    #[test]
    fn registry_registers_and_decodes() {
        let reg = ClassRegistry::new();
        assert!(reg.is_empty());
        LinkedItem::register(&reg);
        Counter::register(&reg);
        assert_eq!(reg.len(), 2);
        assert!(reg.knows("LinkedItem"));
        assert!(!reg.knows("Nope"));

        let item = LinkedItem::new(7, "x");
        let decoded = reg.decode("LinkedItem", &item.state()).unwrap();
        assert_eq!(decoded.class_name(), "LinkedItem");
        assert_eq!(decoded.state(), item.state());
    }

    #[test]
    fn unknown_class_is_a_decode_error() {
        let reg = ClassRegistry::new();
        let err = match reg.decode("Ghost", &ObiValue::Null) {
            Err(e) => e,
            Ok(_) => panic!("decoded an unknown class"),
        };
        assert!(matches!(err, ObiError::Decode(_)));
    }

    #[test]
    fn payload_size_tracks_state_size() {
        let small = LinkedItem::new(1, "a");
        let large = LinkedItem::new(1, "a".repeat(1000));
        assert!(large.payload_size() > small.payload_size() + 900);
    }

    #[test]
    fn registry_clones_share_registrations() {
        let reg = ClassRegistry::new();
        let reg2 = reg.clone();
        LinkedItem::register(&reg2);
        assert!(reg.knows("LinkedItem"));
    }
}

//! # obiwan-core
//!
//! The heart of the OBIWAN reproduction: object spaces, proxy-in/proxy-out
//! pairs, incremental / cluster / transitive-closure replication of object
//! graphs, transparent object-fault detection and resolution, replica
//! write-back, and the consistency hooks.
//!
//! The paper's pitch, restated in this crate's vocabulary: an application
//! holds [`ObjRef`]s and [`RemoteRef`](obiwan_rmi::RemoteRef)s. It can
//! invoke through either at any time — [`ObiProcess::invoke_rmi`] for
//! classic RMI, or [`ObiProcess::get`] +
//! [`ObiProcess::invoke`] for local invocation on an incrementally fetched
//! replica. References leaving the replicated portion of a graph resolve
//! through proxy-outs; invoking through one raises an *object fault*, the
//! next batch is demanded from the provider's proxy-in, the reference is
//! swizzled, and execution continues — all invisible to the caller.
//!
//! Modules:
//!
//! * [`process`] — [`ObiProcess`], the per-site runtime, and [`InvokeCtx`];
//! * [`world`] — [`ObiWorld`], a ready-made simulated network of sites;
//! * [`space`] — the object table ([`ObjectSpace`], slots, metadata, GC);
//! * [`replication`] — [`ReplicationMode`] and provider-side batch building;
//! * [`proxy`] — proxy-out / proxy-in data structures;
//! * [`object`] — the [`ObiObject`] trait and [`ClassRegistry`];
//! * [`macros`] — [`obi_class!`], the `obicomp` stand-in;
//! * [`hooks`] — the [`ConsistencyHook`] extension point;
//! * [`demo`] — ready-made classes for examples, tests and benchmarks;
//! * [`paper_map`] — a reading companion mapping every paper term to code.
//!
//! # Examples
//!
//! Replicate a two-node list and watch a fault resolve:
//!
//! ```
//! use obiwan_core::{ObiWorld, ReplicationMode, ObiValue, space::Resolution};
//! use obiwan_core::demo::LinkedItem;
//!
//! # fn main() -> obiwan_util::Result<()> {
//! let mut world = ObiWorld::paper_testbed();
//! let s1 = world.add_site("S1");
//! let s2 = world.add_site("S2");
//!
//! // S2: A -> B, exported under "a".
//! let b = world.site(s2).create(LinkedItem::new(2, "B"));
//! let a = world.site(s2).create(LinkedItem::with_next(1, "A", b));
//! world.site(s2).export(a, "a")?;
//!
//! // S1: incremental get of A alone; B stays behind a proxy-out.
//! let remote = world.site(s1).lookup("a")?;
//! let a1 = world.site(s1).get(&remote, ReplicationMode::incremental(1))?;
//! assert!(matches!(world.site(s1).resolution(b), Resolution::Proxy(_)));
//!
//! // Invoking through A' to B' faults B in transparently.
//! let v = world.site(s1).invoke(a1, "next_value", ObiValue::Null)?;
//! assert_eq!(v, ObiValue::I64(2));
//! assert!(world.site(s1).is_replicated(b));
//! assert_eq!(world.site(s1).metrics().snapshot().object_faults, 1);
//! # Ok(())
//! # }
//! ```

pub mod demo;
pub mod hooks;
pub mod macros;
pub mod object;
pub mod objref;
pub mod paper_map;
pub mod process;
pub mod proxy;
pub mod replication;
pub mod shards;
pub mod space;
pub mod value_fields;
pub mod world;

pub use hooks::{AcceptAll, ConsistencyHook};
pub use object::{ClassRegistry, DecodeFn, ObiObject};
pub use objref::ObjRef;
pub use process::{Freshness, InvokeCtx, ObiProcess};
pub use replication::ReplicationMode;
pub use shards::ShardedSpace;
pub use space::{GcStats, ObjectMeta, ObjectSpace, ReplicaKind, Resolution, SpaceView};
pub use world::{ObiWorld, NAME_SERVER_SITE};

// Re-exports used by the `obi_class!` macro expansion and by downstream
// crates wanting a one-stop import.
pub use obiwan_rmi::{BreakerConfig, BreakerState, Deadline, RetryPolicy};
pub use obiwan_store::{Durable, DurableOptions, RecoveredState};
pub use obiwan_util::{ObiError, Result};
pub use obiwan_wire::{JoinInfo, ObiValue};

/// Implemented by `obi_class!`-generated types: materialization from
/// serialized state.
pub trait DecodableObject: Sized {
    /// Restores an instance from the state map produced by
    /// [`ObiObject::state`].
    ///
    /// # Errors
    ///
    /// [`ObiError::Decode`] when fields are missing or mis-shaped.
    fn decode_state(state: &ObiValue) -> Result<Self>;
}

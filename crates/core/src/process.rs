//! The per-site OBIWAN runtime: [`ObiProcess`] and its service endpoint.
//!
//! An `ObiProcess` ties together one [`crate::space::ObjectSpace`], one
//! [`RmiClient`], the proxy-in table for objects it
//! provides, and a [`ConsistencyHook`]. Its public API is the programmer's
//! view of OBIWAN:
//!
//! * [`create`](ObiProcess::create) / [`export`](ObiProcess::export) /
//!   [`lookup`](ObiProcess::lookup) — publish and find objects;
//! * [`get`](ObiProcess::get) — replicate (incrementally, by cluster, or
//!   transitively) from a remote provider;
//! * [`invoke`](ObiProcess::invoke) — LMI with transparent object-fault
//!   resolution; [`invoke_rmi`](ObiProcess::invoke_rmi) — classic RMI;
//! * [`put`](ObiProcess::put) / [`refresh`](ObiProcess::refresh) — replica
//!   write-back and re-fetch;
//! * [`subscribe`](ObiProcess::subscribe) — opt in to invalidations or
//!   pushed updates.

use crate::hooks::{AcceptAll, ConsistencyHook};
use crate::object::{ClassRegistry, ObiObject};
use crate::objref::ObjRef;
use crate::proxy::{ProxyIn, ProxyOut};
use crate::replication::{build_batch, build_batch_many, ReplicationMode};
use crate::shards::ShardedSpace;
use crate::space::{GcStats, ObjectEntry, ObjectMeta, ReplicaKind, Resolution, SpaceView};
use obiwan_net::Transport;
use obiwan_rmi::{
    BreakerState, Deadline, RemoteRef, RetryPolicy, RmiClient, RmiServer, RmiService,
    STREAM_CHUNK_OBJECTS,
};
use obiwan_store::{state_fingerprint, Durable, RecoveredState};
use obiwan_util::trace;
use obiwan_util::{
    Clock, ClusterId, CostModel, LatencyKind, Metrics, ObiError, ObjId, RequestId, Result, SiteId,
};
use obiwan_wire::{
    Decoder, Encoder, JoinInfo, Message, NameOp, ObiValue, ReplicaBatch, ReplicaState, WireMode,
};
use obiwan_util::sync::{Mutex, MutexGuard, RwLock};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Maximum nested invocation depth, bounding distributed recursion.
const MAX_INVOKE_DEPTH: usize = 256;

/// Outcome of [`ObiProcess::refresh_or_stale`]: whether the replica was
/// re-fetched from its master or intentionally left stale because the
/// master is unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// The master answered; the replica now matches it.
    Fresh,
    /// The master is unreachable; the existing (possibly stale) replica
    /// is served as-is until connectivity returns.
    Stale,
}

// ---------------------------------------------------------------------------
// Re-entrancy-aware process lock
// ---------------------------------------------------------------------------

fn thread_token() -> u64 {
    use std::cell::Cell;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: Cell<u64> = const { Cell::new(0) };
    }
    TOKEN.with(|t| {
        if t.get() == 0 {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

struct ProcessLock {
    inner: Mutex<ProcessInner>,
    owner: AtomicU64,
}

struct LockGuard<'a> {
    guard: MutexGuard<'a, ProcessInner>,
    owner: &'a AtomicU64,
}

impl std::ops::Deref for LockGuard<'_> {
    type Target = ProcessInner;
    fn deref(&self) -> &ProcessInner {
        &self.guard
    }
}

impl std::ops::DerefMut for LockGuard<'_> {
    fn deref_mut(&mut self) -> &mut ProcessInner {
        &mut self.guard
    }
}

impl Drop for LockGuard<'_> {
    fn drop(&mut self) {
        self.owner.store(0, Ordering::Release);
    }
}

impl ProcessLock {
    fn new(inner: ProcessInner) -> Self {
        ProcessLock {
            inner: Mutex::new(inner),
            owner: AtomicU64::new(0),
        }
    }

    /// Locks the process state. Detects same-thread re-entrancy (a cycle of
    /// synchronous calls arriving back at this process) and reports it as an
    /// error instead of deadlocking; cross-thread contention blocks
    /// normally.
    fn enter(&self, site: SiteId) -> Result<LockGuard<'_>> {
        let me = thread_token();
        if self.owner.load(Ordering::Acquire) == me {
            return Err(ObiError::ReentrantInvocation(ObjId::new(site, 0)));
        }
        let guard = self.inner.lock();
        self.owner.store(me, Ordering::Release);
        Ok(LockGuard {
            guard,
            owner: &self.owner,
        })
    }

    /// True when the calling thread currently holds the lock.
    fn held_by_me(&self) -> bool {
        self.owner.load(Ordering::Acquire) == thread_token()
    }
}

// ---------------------------------------------------------------------------
// Process state
// ---------------------------------------------------------------------------

struct ProcessInner {
    policy: Box<dyn ConsistencyHook>,
    outbox: Vec<(SiteId, Message)>,
    replica_budget: Option<usize>,
    /// Root object of each cluster this process has materialized, for
    /// cluster-wise refresh.
    cluster_roots: HashMap<ClusterId, ObjId>,
}

/// One streamed reply chunk parked for deferred materialization (see
/// [`ProcessShared::pending_chunks`]).
struct PendingChunk {
    batch: ReplicaBatch,
    provider: SiteId,
    mode: WireMode,
    /// Position in its stream, carried into the `obi.pump_chunk` span.
    chunk_index: u32,
}

struct ProcessShared {
    site: SiteId,
    ns_site: SiteId,
    lock: ProcessLock,
    /// The object table, striped into internally-locked shards. It lives
    /// *outside* the process lock: read-mostly service paths (`get`,
    /// `get_many`) walk it concurrently with local invocations, which still
    /// serialize on the process lock above.
    space: ShardedSpace,
    /// Proxy-in table for objects this process provides. Guarded by its own
    /// lock so the serve-get fast path can register exports without the
    /// process lock; never held across a shard acquisition or a transport
    /// call.
    exports: RwLock<HashMap<ObjId, ProxyIn>>,
    /// Cluster-id generation counter (one per cluster batch served).
    cluster_seq: AtomicU64,
    /// One-way messages deferred while the process was busy, applied FIFO:
    /// arrival order is preserved so an `UpdatePush` following an
    /// `Invalidate` for the same object lands after it, never before.
    inbox: Mutex<VecDeque<(SiteId, Message)>>,
    /// Chunks after the first of each streamed fault reply, parked here
    /// (already decoded off the wire) instead of being materialized inside
    /// the fault window: [`ObiProcess::pump_pending_chunks`] installs them
    /// at the top of the next public operation, *before* its latency window
    /// opens, so a large batch's proxy-pair bill never lands in the
    /// caller-visible tail. Its own lock class, and deliberately a leaf:
    /// both push (the stream callback) and pop (the pump) release it before
    /// touching the process lock, a shard, or the transport.
    pending_chunks: Mutex<VecDeque<PendingChunk>>,
    client: RmiClient,
    clock: Clock,
    costs: CostModel,
    metrics: Metrics,
    registry: ClassRegistry,
    /// Write-through durability, attached at most once
    /// ([`ObiProcess::attach_durability`]). All `log_*` calls happen with
    /// no shard guard held (enforced by the `no-io-under-shard-guard`
    /// lint) and with the process lock released: an fsync under either
    /// would serialize the striped table or every invocation on the site.
    durable: std::sync::OnceLock<Arc<Durable>>,
}

/// One OBIWAN process: the runtime services a site's application links
/// against.
///
/// Cheap to clone (shared state inside); all methods take `&self`.
#[derive(Clone)]
pub struct ObiProcess {
    shared: Arc<ProcessShared>,
}

impl std::fmt::Debug for ObiProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObiProcess")
            .field("site", &self.shared.site)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Invocation context
// ---------------------------------------------------------------------------

/// The execution context handed to every method body.
///
/// Through it a method reaches the rest of the platform: nested invocations
/// (with transparent fault resolution), object creation, and mutation
/// marking.
pub struct InvokeCtx<'a> {
    inner: &'a mut ProcessInner,
    shared: &'a ProcessShared,
    current: ObjId,
    modified: &'a mut Vec<ObjId>,
    depth: usize,
}

impl InvokeCtx<'_> {
    /// The site this invocation runs on.
    pub fn site(&self) -> SiteId {
        self.shared.site
    }

    /// The id of the object currently executing.
    pub fn self_id(&self) -> ObjId {
        self.current
    }

    /// A reference to the object currently executing.
    pub fn self_ref(&self) -> ObjRef {
        ObjRef::new(self.current)
    }

    /// Records that the current object mutated its state. Mutating methods
    /// declared in `obi_class!`'s `mutating` block call this automatically.
    pub fn mark_modified(&mut self) {
        self.modified.push(self.current);
    }

    /// Invokes a method on another object, resolving object faults
    /// transparently (the `BProxyOut.demand` path of §2.2).
    ///
    /// # Errors
    ///
    /// Propagates the callee's error; re-entrant cycles yield
    /// [`ObiError::ReentrantInvocation`].
    pub fn invoke(&mut self, target: ObjRef, method: &str, args: &ObiValue) -> Result<ObiValue> {
        if self.depth >= MAX_INVOKE_DEPTH {
            return Err(ObiError::Internal(format!(
                "invocation depth exceeded {MAX_INVOKE_DEPTH}"
            )));
        }
        invoke_inner(
            self.inner,
            self.shared,
            target.id(),
            method,
            args,
            self.modified,
            self.depth + 1,
        )
    }

    /// Creates a new master object in the local space.
    pub fn create(&mut self, object: Box<dyn ObiObject>) -> ObjRef {
        self.shared.space.create(object)
    }
}

// ---------------------------------------------------------------------------
// Core invocation / fault machinery (free functions over ProcessInner)
// ---------------------------------------------------------------------------

/// What one locked attempt of [`ObiProcess::invoke`] produced: a finished
/// invocation, or a proxy to fault in with the lock dropped.
enum InvokeOutcome {
    Done(Result<ObiValue>),
    Fault(ProxyOut),
}

fn invoke_inner(
    inner: &mut ProcessInner,
    shared: &ProcessShared,
    target: ObjId,
    method: &str,
    args: &ObiValue,
    modified: &mut Vec<ObjId>,
    depth: usize,
) -> Result<ObiValue> {
    // Fault loop: at most one fault resolution is needed before the slot is
    // live, but a failed materialization surfaces as an error. Bounded so
    // that pathological interactions (e.g. a budget evicting the freshly
    // faulted object) degrade to an error instead of a livelock.
    let mut attempts = 0;
    loop {
        match shared.space.resolve(target) {
            Resolution::Object(_) => break,
            Resolution::Proxy(proxy) => {
                attempts += 1;
                if attempts > 3 {
                    return Err(ObiError::Internal(format!(
                        "object {target} evaporates after every fault (budget too small?)"
                    )));
                }
                shared.metrics.incr_object_faults();
                resolve_fault(inner, shared, &proxy)?;
            }
            Resolution::Busy => return Err(ObiError::ReentrantInvocation(target)),
            Resolution::Absent => return Err(ObiError::NoSuchObject(target)),
        }
    }

    let mut entry = shared.space.take_object(target)?;
    shared.clock.charge_cpu(shared.costs.lmi);
    shared.metrics.incr_lmi();
    let result = {
        let mut ctx = InvokeCtx {
            inner,
            shared,
            current: target,
            modified,
            depth,
        };
        entry.object.invoke(&mut ctx, method, args)
    };
    shared.space.restore_object(entry);
    result
}

/// Resolves one object fault: demand the next batch from the proxy's
/// provider and materialize it (paper §2.2 steps 1–6).
///
/// This variant holds the process lock across the network wait; it serves
/// *nested* faults (raised inside a method body, which already owns the
/// lock). Top-level faults go through
/// [`ObiProcess::resolve_fault_unlocked`], which releases the lock for the
/// round-trip.
fn resolve_fault(inner: &mut ProcessInner, shared: &ProcessShared, proxy: &ProxyOut) -> Result<()> {
    let _span = trace::span(&shared.clock, "obi.fault")
        .with_site(shared.site)
        .with_obj(proxy.target);
    let remote = RemoteRef::new(proxy.target, proxy.provider);
    let start = shared.clock.virtual_nanos();
    let batch = shared.client.get(&remote, proxy.mode);
    let waited = shared.clock.virtual_nanos().saturating_sub(start);
    shared.metrics.add_fault_nanos(waited);
    shared
        .metrics
        .record_latency(LatencyKind::Demand, Duration::from_nanos(waited));
    let batch = batch?;
    materialize_batch(inner, shared, &batch, proxy.provider, proxy.mode)?;
    // The proxy slot was overwritten by the replica: the swizzle. The old
    // proxy-out is no longer reachable and has effectively been reclaimed.
    shared.clock.charge_cpu(shared.costs.swizzle);
    shared.metrics.incr_proxies_reclaimed();
    Ok(())
}

/// Installs a replica batch into the local space: replicas become live
/// slots, frontier edges become proxy-outs, costs and metrics are charged.
/// The batch always wins over existing clean replicas (the `get`/`refresh`
/// contract: the caller asked for fresh state).
fn materialize_batch(
    inner: &mut ProcessInner,
    shared: &ProcessShared,
    batch: &ReplicaBatch,
    provider: SiteId,
    mode: WireMode,
) -> Result<usize> {
    materialize_batch_inner(inner, shared, batch, provider, mode, false)
}

/// Like [`materialize_batch`], but for batches fetched while the process
/// lock was *dropped*: every replica is re-validated against whatever
/// happened in the window. Skipped (left untouched) are masters, dirty
/// replicas (un-pushed local writes), replicas already at the incoming
/// version or newer (a concurrent fault won the race), and busy slots (an
/// invocation owns the object right now).
fn materialize_batch_guarded(
    inner: &mut ProcessInner,
    shared: &ProcessShared,
    batch: &ReplicaBatch,
    provider: SiteId,
    mode: WireMode,
) -> Result<usize> {
    materialize_batch_inner(inner, shared, batch, provider, mode, true)
}

fn materialize_batch_inner(
    inner: &mut ProcessInner,
    shared: &ProcessShared,
    batch: &ReplicaBatch,
    provider: SiteId,
    mode: WireMode,
    guard: bool,
) -> Result<usize> {
    let _span = trace::span(&shared.clock, "obi.materialize")
        .with_site(shared.site)
        .with_obj(batch.root)
        .with_value(batch.replicas.len() as u64);
    let mut installed = 0usize;
    for state in &batch.replicas {
        match shared.space.resolve(state.id) {
            // Never clobber our own masters with replicas of themselves.
            Resolution::Object(meta) if meta.kind.is_master() => continue,
            Resolution::Object(meta)
                if guard && (meta.dirty || meta.version >= state.version) =>
            {
                continue;
            }
            Resolution::Busy if guard => continue,
            _ => {}
        }
        shared.clock.charge_cpu(shared.costs.serialize(state.state.len()));
        let mut dec = Decoder::new(&state.state);
        let value = dec.take_value()?;
        let object = shared.registry.decode(&state.class, &value)?;
        let mut meta = ObjectMeta::replica(state.id, provider, state.version);
        meta.cluster = batch.cluster;
        shared.clock.charge_cpu(shared.costs.replica_create);
        shared.metrics.incr_replicas_created();
        shared.space.insert_object(ObjectEntry { object, meta });
        installed += 1;
    }

    if let Some(cluster) = batch.cluster {
        inner.cluster_roots.insert(cluster, batch.root);
    }

    // Proxy-pair accounting (paper §4.2 vs §4.3): one pair per object in
    // incremental mode, a single shared pair per cluster batch. Pair cost
    // grows mildly with batch size (CostModel::pair_batch_penalty).
    let n = batch.replicas.len();
    match mode {
        WireMode::Cluster { .. } => {
            shared.clock.charge_cpu(shared.costs.proxy_pairs(1, n));
            shared.metrics.incr_proxy_pairs_created();
        }
        _ => {
            shared.clock.charge_cpu(shared.costs.proxy_pairs(n, n));
            shared.metrics.add_proxy_pairs_created(n as u64);
        }
    }

    for edge in &batch.frontier {
        let mut proxy = ProxyOut::new(edge.target, edge.class.clone(), provider, mode);
        if let Some(cluster) = batch.cluster {
            proxy = proxy.in_cluster(cluster);
        }
        shared.space.insert_proxy(proxy);
    }

    // Opt-in memory budget for info-appliances (§2.1): shed cold, clean
    // replicas back to proxy-outs when the batch pushed us over. The batch
    // root is freshened and protected — it is the object the caller is
    // about to invoke, and evicting it would re-raise the same fault.
    if let Some(budget) = inner.replica_budget {
        shared.space.touch(batch.root);
        let (evicted, _freed) = shared.space.evict_replicas_to(budget, &[batch.root]);
        shared.metrics.add_replicas_evicted(evicted as u64);
    }
    Ok(installed)
}

/// Applies post-invocation bookkeeping: bump master versions, mark replicas
/// dirty, and queue notifications to subscribers. Returns the replicas
/// that went dirty, `(id, provider)` each, so the caller can append their
/// deltas to the durability log — *after* releasing the process lock: the
/// append can trigger a group fsync, and a stalled disk must slow this one
/// caller, not every invocation on the site.
#[must_use = "the dirty list must be logged via log_dirty_deltas after the lock drops"]
fn finish_invocation(
    inner: &mut ProcessInner,
    shared: &ProcessShared,
    modified: &[ObjId],
) -> Vec<(ObjId, SiteId)> {
    let mut seen = std::collections::HashSet::new();
    let mut dirtied = Vec::new();
    for &id in modified {
        if !seen.insert(id) {
            continue;
        }
        let Some(meta) = shared.space.meta(id) else {
            continue;
        };
        match meta.kind {
            ReplicaKind::Master => {
                let mut version = meta.version;
                shared.space.update_meta(id, |m| {
                    m.version += 1;
                    version = m.version;
                });
                inner.policy.on_master_updated(id, version);
                queue_notifications(inner, shared, id, shared.site);
            }
            ReplicaKind::Replica { provider } => {
                shared.space.update_meta(id, |m| m.dirty = true);
                dirtied.push((id, provider));
            }
        }
    }
    dirtied
}

/// Appends each replica's serialized state to the durability log (when one
/// is attached). Called with the process lock and every shard guard
/// released: the state is re-read under a fresh short guard, and the WAL
/// append (which can trigger a group fsync) happens guard-free.
///
/// Best-effort by design: the in-memory replica is the source of truth and
/// stays dirty, so a failed append costs durability of this delta, not
/// correctness — the next mutation or the put path's strict intent logging
/// retries the state.
fn log_dirty_deltas(shared: &ProcessShared, dirtied: &[(ObjId, SiteId)]) {
    if dirtied.is_empty() {
        return;
    }
    let Some(durable) = shared.durable.get() else {
        return;
    };
    for &(id, provider) in dirtied {
        if let Ok(state) = replica_state_of(&shared.space, id) {
            let _ = durable.log_dirty(provider, state);
        }
    }
}

/// Queues invalidations/pushes for every subscriber of `id` except
/// `originator`.
fn queue_notifications(
    inner: &mut ProcessInner,
    shared: &ProcessShared,
    id: ObjId,
    originator: SiteId,
) {
    // Snapshot the subscriber list and release the exports lock before
    // touching the space: the exports guard must never overlap a shard
    // acquisition.
    let subscribers: Vec<_> = {
        let exports = shared.exports.read();
        let Some(entry) = exports.get(&id) else {
            return;
        };
        entry.subscribers_except(originator).collect()
    };
    if subscribers.is_empty() {
        return;
    }
    let push_state = if subscribers.iter().any(|s| s.push) {
        shared
            .space
            .with_object(id, |o, m| ReplicaState {
                id,
                class: o.class_name().to_owned(),
                version: m.version,
                state: {
                    let mut enc = Encoder::new();
                    enc.put_value(&o.state());
                    enc.finish()
                },
            })
            .ok()
    } else {
        None
    };
    for sub in subscribers {
        let msg = if sub.push {
            match &push_state {
                Some(state) => Message::UpdatePush {
                    entries: vec![state.clone()],
                },
                None => Message::Invalidate { objects: vec![id] },
            }
        } else {
            Message::Invalidate { objects: vec![id] }
        };
        inner.outbox.push((sub.site, msg));
    }
}

// ---------------------------------------------------------------------------
// ObiProcess public API
// ---------------------------------------------------------------------------

impl ObiProcess {
    /// Creates a process for `site`, wired to `transport`, using `ns_site`
    /// as its name server.
    ///
    /// The caller is responsible for registering the process's
    /// [`message_handler`](ObiProcess::message_handler) with the transport
    /// (the [`ObiWorld`](crate::world::ObiWorld) convenience does this).
    pub fn new(
        site: SiteId,
        transport: Arc<dyn Transport>,
        clock: Clock,
        costs: CostModel,
        registry: ClassRegistry,
        ns_site: SiteId,
    ) -> Self {
        let metrics = Metrics::new();
        let client = RmiClient::with_metrics(
            site,
            transport,
            clock.clone(),
            costs.clone(),
            metrics.clone(),
        );
        ObiProcess {
            shared: Arc::new(ProcessShared {
                site,
                ns_site,
                lock: ProcessLock::new(ProcessInner {
                    policy: Box::new(AcceptAll),
                    outbox: Vec::new(),
                    replica_budget: None,
                    cluster_roots: HashMap::new(),
                }),
                space: ShardedSpace::new(site),
                exports: RwLock::new(HashMap::new()),
                cluster_seq: AtomicU64::new(1),
                inbox: Mutex::new(VecDeque::new()),
                pending_chunks: Mutex::new(VecDeque::new()),
                client,
                clock,
                costs,
                metrics,
                registry,
                durable: std::sync::OnceLock::new(),
            }),
        }
    }

    /// The site this process runs at.
    pub fn site(&self) -> SiteId {
        self.shared.site
    }

    /// Platform metrics for this process (LMI/RMI counts, faults, replicas,
    /// proxy pairs, …).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The class registry this process decodes replicas with.
    pub fn registry(&self) -> &ClassRegistry {
        &self.shared.registry
    }

    /// The message handler to register with the transport for this site.
    /// Shares the process's metrics so reply-cache hits are visible there.
    pub fn message_handler(&self) -> Arc<dyn obiwan_net::MessageHandler> {
        Arc::new(
            RmiServer::with_metrics(
                Arc::new(ProcessService {
                    shared: self.shared.clone(),
                }),
                self.shared.metrics.clone(),
            )
            .with_clock(self.shared.clock.clone()),
        )
    }

    /// Replaces the consistency policy hook.
    ///
    /// # Panics
    ///
    /// Panics when called from inside a method invocation.
    pub fn set_policy(&self, policy: Box<dyn ConsistencyHook>) {
        let mut g = self.enter().expect("set_policy called re-entrantly");
        g.policy = policy;
    }

    /// Attaches a durability log: from now on dirty-replica mutations,
    /// puts, and refreshes write through to it (see `obiwan-store`). At
    /// most one log can ever be attached; a second call is ignored.
    pub fn attach_durability(&self, durable: Arc<Durable>) {
        let _ = self.shared.durable.set(durable);
    }

    /// The attached durability log, if any.
    pub fn durability(&self) -> Option<&Arc<Durable>> {
        self.shared.durable.get()
    }

    /// Reinstalls state recovered from a durability log after a restart:
    /// dirty replicas go back into the space (still dirty, awaiting
    /// reintegration), and the RMI client's request counter and reply
    /// horizon are restored so post-crash requests never collide with
    /// pre-crash ones (recovery invariant 3 in `obiwan-store`). Returns how
    /// many replicas were reinstalled.
    ///
    /// Call before the process serves traffic, typically right after
    /// [`ObiProcess::attach_durability`] with the state that
    /// `Durable::open` returned.
    pub fn recover_from(&self, recovered: &RecoveredState) -> Result<usize> {
        self.shared
            .client
            .restore_request_seq(recovered.next_request_seq);
        self.shared
            .client
            .horizon_tracker()
            .restore(recovered.horizon);
        self.with_inner(|_inner| {
            let mut installed = 0usize;
            for (id, (provider, state)) in &recovered.dirty {
                let mut dec = Decoder::new(&state.state);
                let value = dec.take_value()?;
                let object = self.shared.registry.decode(&state.class, &value)?;
                // A dirty replica of a handed-off root re-targets the
                // successor, not the provider recorded before the handoff.
                let provider = match recovered.handoffs.get(id) {
                    Some(&(successor, _)) => successor,
                    None => *provider,
                };
                let mut meta = ObjectMeta::replica(*id, provider, state.version);
                meta.dirty = true;
                self.shared.metrics.incr_replicas_created();
                self.shared.space.insert_object(ObjectEntry { object, meta });
                installed += 1;
            }
            // Exactly-one-master guard: whatever else recovery (or the
            // application's pre-recovery setup) installed, a root with a
            // durable handoff record must never come back up mastered
            // here — even a half-completed handoff (intent without ack)
            // yields, because the intent was durable before the RPC left
            // and the successor may have installed it.
            for (root, (successor, _)) in &recovered.handoffs {
                self.shared.space.update_meta(*root, |meta| {
                    if meta.kind.is_master() {
                        meta.kind = ReplicaKind::Replica {
                            provider: *successor,
                        };
                        meta.dirty = false;
                    }
                });
            }
            Ok(installed)
        })
    }

    fn enter(&self) -> Result<LockGuard<'_>> {
        self.shared.lock.enter(self.shared.site)
    }

    /// Runs `f` under the process lock, then flushes queued notifications
    /// and drains deferred one-way messages.
    fn with_inner<R>(&self, f: impl FnOnce(&mut ProcessInner) -> Result<R>) -> Result<R> {
        let (result, flush) = {
            let mut g = self.enter()?;
            let result = f(&mut g);
            let flush = std::mem::take(&mut g.outbox);
            (result, flush)
        };
        self.flush_outbox(flush);
        self.drain_inbox();
        result
    }

    fn flush_outbox(&self, msgs: Vec<(SiteId, Message)>) {
        for (to, msg) in msgs {
            // Best-effort one-way traffic; connectivity failures are the
            // subscriber's problem (their replica simply stays stale).
            let _ = match msg {
                Message::Invalidate { objects } => {
                    self.shared.client.send_invalidate(to, objects)
                }
                Message::UpdatePush { entries } => {
                    self.shared.client.send_update_push(to, entries)
                }
                other => {
                    debug_assert!(false, "unexpected outbox message {other:?}");
                    Ok(())
                }
            };
        }
    }

    /// Applies one-way messages that arrived while this process was busy,
    /// oldest first. A message that cannot be applied yet goes back to the
    /// *front* of the queue so nothing overtakes it.
    pub fn drain_inbox(&self) {
        loop {
            let Some((from, msg)) = self.shared.inbox.lock().pop_front() else {
                return;
            };
            if self.shared.lock.held_by_me() {
                // Still inside one of our own frames; put it back and let
                // the outermost caller drain.
                self.shared.inbox.lock().push_front((from, msg));
                return;
            }
            let flush = match self.enter() {
                Ok(mut g) => {
                    apply_one_way(&mut g, &self.shared, from, msg);
                    std::mem::take(&mut g.outbox)
                }
                Err(_) => {
                    self.shared.inbox.lock().push_front((from, msg));
                    return;
                }
            };
            self.flush_outbox(flush);
        }
    }

    // -- object lifecycle ---------------------------------------------------

    /// Creates a new master object and returns its reference.
    ///
    /// # Panics
    ///
    /// Panics when called from inside a method invocation — use
    /// [`InvokeCtx::create`] there instead.
    pub fn create<T: ObiObject + 'static>(&self, object: T) -> ObjRef {
        self.with_inner(|_inner| Ok(self.shared.space.create(Box::new(object))))
            .expect("create called re-entrantly; use InvokeCtx::create inside methods")
    }

    /// Exports an object (creates its proxy-in) and binds it under `name`
    /// in the world's name server — the paper's "only `AProxyIn` is
    /// registered in a name server".
    ///
    /// # Errors
    ///
    /// Fails when the object does not exist locally, the name is taken, or
    /// the name server is unreachable.
    pub fn export(&self, object: ObjRef, name: &str) -> Result<()> {
        self.with_inner(|_inner| {
            if !matches!(self.shared.space.resolve(object.id()), Resolution::Object(_)) {
                return Err(ObiError::NoSuchObject(object.id()));
            }
            self.shared.exports.write().entry(object.id()).or_default();
            self.shared.space.add_root(object.id());
            Ok(())
        })?;
        self.shared
            .client
            .bind(self.shared.ns_site, name, object.id())
    }

    /// Exports an object without binding a name (callers distribute the
    /// [`RemoteRef`] themselves).
    pub fn export_anonymous(&self, object: ObjRef) -> Result<RemoteRef> {
        self.with_inner(|_inner| {
            if !matches!(self.shared.space.resolve(object.id()), Resolution::Object(_)) {
                return Err(ObiError::NoSuchObject(object.id()));
            }
            self.shared.exports.write().entry(object.id()).or_default();
            self.shared.space.add_root(object.id());
            Ok(RemoteRef::new(object.id(), self.shared.site))
        })
    }

    /// Looks up a name in the world's name server.
    pub fn lookup(&self, name: &str) -> Result<RemoteRef> {
        self.shared.client.lookup(self.shared.ns_site, name)
    }

    /// Lists every name bound in the world's name server, sorted.
    pub fn list_names(&self) -> Result<Vec<String>> {
        self.shared.client.list_names(self.shared.ns_site)
    }

    /// Removes a binding from the world's name server (the object itself
    /// stays exported; existing remote refs keep working).
    pub fn unbind(&self, name: &str) -> Result<()> {
        self.shared.client.unbind(self.shared.ns_site, name)
    }

    // -- replication ----------------------------------------------------------

    /// Replicates the graph rooted at `remote` into this process using
    /// `mode`, returning a local reference to the root replica.
    ///
    /// Subsequent invocations through the returned reference are LMI;
    /// references leaving the replicated portion resolve through proxy-outs
    /// and fault in more of the graph on demand.
    ///
    /// # Errors
    ///
    /// Connectivity errors surface unchanged so the caller can fall back to
    /// an existing (possibly stale) replica.
    pub fn get(&self, remote: &RemoteRef, mode: ReplicationMode) -> Result<ObjRef> {
        self.pump_pending_chunks();
        if remote.host() == self.shared.site {
            return Ok(ObjRef::new(remote.id()));
        }
        let batch = self.shared.client.get(remote, mode.to_wire())?;
        self.with_inner(|inner| {
            materialize_batch(inner, &self.shared, &batch, remote.host(), mode.to_wire())?;
            Ok(ObjRef::new(batch.root))
        })
    }

    /// Caps the bytes of replica state this process keeps. When a batch
    /// pushes past the budget, least-recently-used clean replicas revert to
    /// proxy-outs and fault back in on next use (see
    /// [`crate::space::ObjectSpace::evict_replicas_to`]). `None` disables the budget.
    ///
    /// This serves the paper's "info-appliances with limited memory"
    /// scenario (§2.1): small devices can walk graphs far larger than their
    /// memory.
    pub fn set_replica_budget(&self, budget: Option<usize>) {
        let _ = self.with_inner(|inner| {
            inner.replica_budget = budget;
            if let Some(b) = budget {
                let (evicted, _) = self.shared.space.evict_replicas_to(b, &[]);
                self.shared.metrics.add_replicas_evicted(evicted as u64);
            }
            Ok(())
        });
    }

    /// Approximate bytes of replica state currently held.
    pub fn replica_bytes(&self) -> usize {
        self.with_inner(|_inner| Ok(self.shared.space.replica_bytes()))
            .unwrap_or(0)
    }

    /// Resolves up to `objects` future object faults ahead of use, by
    /// walking the local frontier reachable from `root` and demanding
    /// batches for its proxy-outs.
    ///
    /// This is the paper's footnote to §2.1: "a perfect mechanism of
    /// pre-fetching in the background can completely eliminate the
    /// latency". In this synchronous runtime the prefetch happens on the
    /// caller's thread (e.g. during application think time); afterwards,
    /// invocations over the prefetched region are pure LMI with no faults.
    ///
    /// Returns the number of objects actually fetched (less than `objects`
    /// when the reachable graph is exhausted).
    ///
    /// # Errors
    ///
    /// Connectivity failures abort the prefetch; everything fetched before
    /// the failure stays.
    pub fn prefetch(&self, root: ObjRef, objects: usize) -> Result<usize> {
        self.prefetch_batched(root, objects, 1)
    }

    /// Like [`prefetch`](ObiProcess::prefetch), but demanding up to `batch`
    /// objects per network round-trip through `get_many`: frontier proxies
    /// are collected and sent to their provider in one request, and each
    /// round's batch *feeds the next* — the frontier edges of the replicas
    /// just materialized become the next demand targets, so the object
    /// graph is traversed once (O(objects + frontier)) instead of re-walked
    /// per fault. A 64-object list walk that costs 64 round-trips demand-
    /// by-demand costs ⌈64/batch⌉ here.
    ///
    /// Like every prefetch path, the lock is dropped during network waits
    /// and batches are installed through the guarded materializer.
    pub fn prefetch_batched(&self, root: ObjRef, objects: usize, batch: usize) -> Result<usize> {
        self.pump_pending_chunks();
        let batch = batch.max(1);
        // One deadline budget covers the whole sweep: every round-trip of
        // the pipeline draws from the same per-operation budget instead of
        // restarting the clock per round.
        let deadline = self.demand_deadline();
        // Seed once with every frontier proxy reachable from `root`.
        let seed =
            self.with_inner(|_inner| Ok(reachable_frontier(&self.shared.space, root.id())))?;
        let mut seen: HashSet<ObjId> = seed.iter().copied().collect();
        let mut candidates: VecDeque<ObjId> = seed.into();
        let mut fetched = 0usize;
        while fetched < objects && !candidates.is_empty() {
            let (inserted, discovered) =
                self.prefetch_round(&mut candidates, batch, objects - fetched, deadline)?;
            for id in discovered {
                if seen.insert(id) {
                    candidates.push_back(id);
                }
            }
            fetched += inserted;
        }
        Ok(fetched)
    }

    /// Prefetches from the space's frontier *index* instead of a BFS from a
    /// root: demand candidates are popped in O(1) regardless of how many
    /// objects are live, `batch` per round-trip, until `objects` objects
    /// arrived or the frontier is exhausted. Use this to warm the whole
    /// working set rather than one root's reachable graph.
    pub fn prefetch_frontier(&self, objects: usize, batch: usize) -> Result<usize> {
        self.pump_pending_chunks();
        let batch = batch.max(1);
        let deadline = self.demand_deadline();
        let mut seen: HashSet<ObjId> = HashSet::new();
        let mut fetched = 0usize;
        while fetched < objects {
            let picked = self.with_inner(|_inner| {
                let want = batch.min(objects - fetched).max(1);
                Ok(self
                    .shared
                    .space
                    .frontier_candidates(want)
                    .into_iter()
                    .map(|p| p.target)
                    .filter(|id| !seen.contains(id))
                    .collect::<Vec<ObjId>>())
            })?;
            if picked.is_empty() {
                break;
            }
            seen.extend(picked.iter().copied());
            let mut candidates: VecDeque<ObjId> = picked.into();
            let (inserted, _) =
                self.prefetch_round(&mut candidates, batch, objects - fetched, deadline)?;
            fetched += inserted;
        }
        Ok(fetched)
    }

    /// One prefetch round: validate up to `batch.min(remaining)` candidates
    /// under the lock, demand them (grouped per provider, one `get_many`
    /// each; non-incremental proxies individually), re-acquire and install.
    /// Returns `(replicas installed, frontier ids discovered)`.
    fn prefetch_round(
        &self,
        candidates: &mut VecDeque<ObjId>,
        batch: usize,
        remaining: usize,
        deadline: Deadline,
    ) -> Result<(usize, Vec<ObjId>)> {
        let mut span = trace::span(&self.shared.clock, "obi.prefetch_round")
            .with_site(self.shared.site);
        let want = batch.min(remaining).max(1);
        // Incremental targets grouped by provider, with the largest step
        // any of them asked for; cluster/transitive proxies have one-shot
        // semantics a merged batch would change, so they go solo.
        let mut grouped: HashMap<SiteId, (Vec<ObjId>, u32)> = HashMap::new();
        let mut solo: Vec<ProxyOut> = Vec::new();
        self.with_inner(|_inner| {
            let mut picked = 0usize;
            while picked < want {
                let Some(id) = candidates.pop_front() else {
                    break;
                };
                let Resolution::Proxy(p) = self.shared.space.resolve(id) else {
                    continue; // already live (or gone): nothing to demand
                };
                picked += 1;
                match p.mode {
                    WireMode::Incremental { batch: own } => {
                        let slot = grouped.entry(p.provider).or_insert((Vec::new(), 1));
                        slot.0.push(p.target);
                        slot.1 = slot.1.max(own.max(1));
                    }
                    _ => solo.push(p),
                }
            }
            Ok(())
        })?;

        let total = grouped.values().map(|(t, _)| t.len()).sum::<usize>() + solo.len();
        if total == 0 {
            return Ok((0, Vec::new()));
        }
        // Spread the round's object budget across the targets; a single
        // target still honors its proxy's own incremental step.
        let spread = (batch / total).max(1).min(u32::MAX as usize) as u32;

        let mut inserted = 0usize;
        let mut discovered: Vec<ObjId> = Vec::new();
        for (provider, (targets, own_step)) in grouped {
            let step = own_step.max(spread);
            let mode = WireMode::Incremental { batch: step };
            let swizzled = targets.len();
            if step > STREAM_CHUNK_OBJECTS {
                // Large batches stream: each chunk is absorbed as it lands,
                // pipelined with the provider still slicing the rest.
                // Prefetch is bulk work, not a caller-visible latency window,
                // so chunks install inline rather than parking for a pump.
                let mut absorb_err: Option<ObiError> = None;
                self.shared.client.get_many_stream_with_deadline(
                    provider,
                    targets,
                    mode,
                    Some(deadline),
                    &mut |index, batch| {
                        discovered.extend(batch.frontier.iter().map(|e| e.target));
                        let sw = if index == 0 { swizzled } else { 0 };
                        match self.absorb_prefetched(&batch, provider, mode, sw) {
                            Ok(n) => inserted += n,
                            Err(e) => {
                                if absorb_err.is_none() {
                                    absorb_err = Some(e);
                                }
                            }
                        }
                    },
                )?;
                if let Some(e) = absorb_err {
                    return Err(e);
                }
            } else {
                let reply = self
                    .shared
                    .client
                    .get_many_with_deadline(provider, targets, mode, Some(deadline))?;
                discovered.extend(reply.frontier.iter().map(|e| e.target));
                inserted += self.absorb_prefetched(&reply, provider, mode, swizzled)?;
            }
        }
        for proxy in solo {
            let remote = RemoteRef::new(proxy.target, proxy.provider);
            let reply = self
                .shared
                .client
                .get_with_deadline(&remote, proxy.mode, Some(deadline))?;
            discovered.extend(reply.frontier.iter().map(|e| e.target));
            inserted += self.absorb_prefetched(&reply, proxy.provider, proxy.mode, 1)?;
        }
        span.set_value(inserted as u64);
        Ok((inserted, discovered))
    }

    /// Re-acquires the lock and installs a prefetched batch through the
    /// guarded materializer; `swizzled` proxies were overwritten.
    fn absorb_prefetched(
        &self,
        batch: &ReplicaBatch,
        provider: SiteId,
        mode: WireMode,
        swizzled: usize,
    ) -> Result<usize> {
        self.with_inner(|inner| {
            let installed = materialize_batch_guarded(inner, &self.shared, batch, provider, mode)?;
            self.shared.clock.charge_cpu(self.shared.costs.swizzle);
            self.shared
                .metrics
                .add_proxies_reclaimed(swizzled as u64);
            Ok(installed)
        })
    }

    /// Invokes `method` locally (LMI), transparently resolving object
    /// faults if `target` is not yet replicated.
    ///
    /// Top-level faults resolve through a *drop-lock window*: the proxy is
    /// snapshotted under the process lock, the lock is released for the
    /// network round-trip, then re-acquired to install the batch (with
    /// per-replica validation, since the world may have moved in the
    /// window). Invocations on local objects from other threads therefore
    /// proceed while this one waits on the provider. Nested faults — raised
    /// inside a method body, which owns the lock — still resolve under it.
    pub fn invoke(&self, target: ObjRef, method: &str, args: ObiValue) -> Result<ObiValue> {
        // Install chunks parked by an earlier streamed fault *before* this
        // invocation's latency window opens: their cost is real but must
        // not land in the caller-visible tail.
        self.pump_pending_chunks();
        let _span = trace::span(&self.shared.clock, "obi.invoke")
            .with_site(self.shared.site)
            .with_obj(target.id());
        let start = self.shared.clock.virtual_nanos();
        let result = self.invoke_resolving(target, method, args);
        self.shared.metrics.record_latency(
            LatencyKind::Invoke,
            Duration::from_nanos(self.shared.clock.virtual_nanos().saturating_sub(start)),
        );
        result
    }

    /// The fault-resolving LMI loop behind [`ObiProcess::invoke`].
    fn invoke_resolving(&self, target: ObjRef, method: &str, args: ObiValue) -> Result<ObiValue> {
        // Bounded like invoke_inner's fault loop: a budget that evicts the
        // freshly faulted object must degrade to an error, not a livelock.
        let mut attempts = 0;
        loop {
            let mut dirtied: Vec<(ObjId, SiteId)> = Vec::new();
            let outcome = self.with_inner(|inner| {
                Ok(match self.shared.space.resolve(target.id()) {
                    Resolution::Proxy(proxy) => InvokeOutcome::Fault(proxy),
                    _ => {
                        let mut modified = Vec::new();
                        let result = invoke_inner(
                            inner,
                            &self.shared,
                            target.id(),
                            method,
                            &args,
                            &mut modified,
                            0,
                        );
                        dirtied = finish_invocation(inner, &self.shared, &modified);
                        InvokeOutcome::Done(result)
                    }
                })
            })?;
            log_dirty_deltas(&self.shared, &dirtied);
            match outcome {
                InvokeOutcome::Done(result) => return result,
                InvokeOutcome::Fault(proxy) => {
                    attempts += 1;
                    if attempts > 3 {
                        return Err(ObiError::Internal(format!(
                            "object {} evaporates after every fault (budget too small?)",
                            target.id()
                        )));
                    }
                    self.shared.metrics.incr_object_faults();
                    self.resolve_fault_unlocked(&proxy)?;
                }
            }
        }
    }

    /// Resolves one top-level fault with the process lock released during
    /// the network wait. The time blocked on the provider is recorded in
    /// the `fault_nanos` metric.
    ///
    /// Batches larger than [`STREAM_CHUNK_OBJECTS`] arrive as a chunk
    /// stream ([`resolve_fault_streaming`](Self::resolve_fault_streaming));
    /// smaller ones keep the cheaper one-shot exchange.
    fn resolve_fault_unlocked(&self, proxy: &ProxyOut) -> Result<()> {
        if matches!(proxy.mode, WireMode::Incremental { batch } if batch > STREAM_CHUNK_OBJECTS) {
            return self.resolve_fault_streaming(proxy);
        }
        let _span = trace::span(&self.shared.clock, "obi.fault")
            .with_site(self.shared.site)
            .with_obj(proxy.target);
        let remote = RemoteRef::new(proxy.target, proxy.provider);
        let deadline = self.demand_deadline();
        let start = self.shared.clock.virtual_nanos();
        let batch = self
            .shared
            .client
            .get_with_deadline(&remote, proxy.mode, Some(deadline));
        let waited = self.shared.clock.virtual_nanos().saturating_sub(start);
        self.shared.metrics.add_fault_nanos(waited);
        self.shared
            .metrics
            .record_latency(LatencyKind::Demand, Duration::from_nanos(waited));
        let batch = batch?;
        self.with_inner(|inner| {
            materialize_batch_guarded(inner, &self.shared, &batch, proxy.provider, proxy.mode)?;
            self.shared.clock.charge_cpu(self.shared.costs.swizzle);
            self.shared.metrics.incr_proxies_reclaimed();
            Ok(())
        })
    }

    /// Streamed top-level fault resolution: the provider slices the batch
    /// into chunk frames, and only chunk 0 — which carries the faulted root
    /// the blocked invocation is waiting on — is materialized inside the
    /// fault window. Every later chunk is parked in `pending_chunks` as it
    /// arrives and installed by [`ObiProcess::pump_pending_chunks`] before
    /// the *next* operation's latency window opens. The caller-visible
    /// fault cost is thereby one chunk's materialization regardless of the
    /// batch step — the whole point of the streaming reply protocol.
    fn resolve_fault_streaming(&self, proxy: &ProxyOut) -> Result<()> {
        let _span = trace::span(&self.shared.clock, "obi.fault")
            .with_site(self.shared.site)
            .with_obj(proxy.target);
        let deadline = self.demand_deadline();
        let provider = proxy.provider;
        let mode = proxy.mode;
        let start = self.shared.clock.virtual_nanos();
        let mut inline_result: Result<()> = Ok(());
        let streamed = self.shared.client.get_many_stream_with_deadline(
            provider,
            vec![proxy.target],
            mode,
            Some(deadline),
            &mut |index, batch| {
                if index == 0 {
                    // Re-acquire the process lock only for the root's
                    // chunk; chunk k+1 keeps flowing while this installs.
                    inline_result = self.with_inner(|inner| {
                        materialize_batch_guarded(inner, &self.shared, &batch, provider, mode)?;
                        self.shared.clock.charge_cpu(self.shared.costs.swizzle);
                        self.shared.metrics.incr_proxies_reclaimed();
                        Ok(())
                    });
                } else {
                    self.shared.pending_chunks.lock().push_back(PendingChunk {
                        batch,
                        provider,
                        mode,
                        chunk_index: index,
                    });
                }
            },
        );
        let waited = self.shared.clock.virtual_nanos().saturating_sub(start);
        self.shared.metrics.add_fault_nanos(waited);
        self.shared
            .metrics
            .record_latency(LatencyKind::Demand, Duration::from_nanos(waited));
        streamed?;
        inline_result
    }

    /// Materializes every reply chunk parked by a streamed fault, oldest
    /// first. Runs at the top of each public operation — before its latency
    /// window opens — so deferred chunks are installed on the process's own
    /// time, never inside a caller-visible tail. Also safe to call directly
    /// (e.g. from an idle loop). Returns how many chunks were installed.
    pub fn pump_pending_chunks(&self) -> usize {
        let mut pumped = 0usize;
        loop {
            // Pop with the queue lock alone, then release it before taking
            // the process lock: the queue stays a leaf in the lock order.
            let Some(chunk) = self.shared.pending_chunks.lock().pop_front() else {
                break;
            };
            // A parked chunk whose root is no longer resident must NOT be
            // installed: its stream's replicas were evicted (budget
            // pressure, GC, an explicit remove) after the chunk was parked,
            // and materializing the tail now would resurrect dead replicas
            // nothing references. `Busy` still counts as resident — the
            // root is merely mid-invocation.
            let root_resident = matches!(
                self.shared.space.resolve(chunk.batch.root),
                Resolution::Object(_) | Resolution::Busy
            );
            if !root_resident {
                self.shared.metrics.incr_stale_chunks_dropped();
                continue;
            }
            let mut span = trace::span(&self.shared.clock, "obi.pump_chunk")
                .with_site(self.shared.site)
                .with_obj(chunk.batch.root);
            span.set_value(chunk.chunk_index as u64);
            // A failed install (registry mismatch after a class was
            // swapped, say) drops the chunk: its objects simply fault again
            // later, exactly as if the chunk had been lost on the wire.
            let installed = self.with_inner(|inner| {
                materialize_batch_guarded(
                    inner,
                    &self.shared,
                    &chunk.batch,
                    chunk.provider,
                    chunk.mode,
                )
            });
            if installed.is_ok() {
                pumped += 1;
            }
        }
        pumped
    }

    /// One deadline budget for one user-facing demand operation (a fault,
    /// a prefetch sweep): the RPC policy's per-call budget, anchored now.
    fn demand_deadline(&self) -> Deadline {
        Deadline::after(&self.shared.clock, self.shared.client.rpc_policy().call_budget)
    }

    /// Invokes `method` remotely (RMI) on the master via its proxy-in —
    /// "at any time, both replicas, the master and the local, can be freely
    /// invoked" (§2.1).
    pub fn invoke_rmi(&self, target: &RemoteRef, method: &str, args: ObiValue) -> Result<ObiValue> {
        let reply = self.shared.client.invoke(target, method, args)?;
        self.note_rpc_checkpoint()?;
        Ok(reply)
    }

    /// Counts one confirmed non-put RPC toward the durability layer's
    /// periodic `ClientState` checkpoint (see
    /// `DurableOptions::checkpoint_every_rpcs`). Puts refresh the persisted
    /// watermark on their own confirm path; invokes burn request seqs
    /// invisibly, so without this an RPC-heavy life between puts would lean
    /// on `SEQ_EPOCH_SKIP` alone to keep recovered seqs collision-free.
    fn note_rpc_checkpoint(&self) -> Result<()> {
        if let Some(durable) = self.shared.durable.get() {
            durable.note_confirmed_rpc(
                self.shared.client.request_seq(),
                self.shared.client.horizon_tracker().horizon(),
            )?;
        }
        Ok(())
    }

    // -- update traffic -------------------------------------------------------

    /// Sends this replica's state back to its master (`IProvide::put`),
    /// returning the master version that accepted it.
    ///
    /// # Errors
    ///
    /// * [`ObiError::ClusterMember`] — cluster members cannot be
    ///   individually updated (§4.3); use [`ObiProcess::put_cluster`].
    /// * [`ObiError::UpdateRejected`] — the master's consistency policy
    ///   refused the write-back.
    /// * [`ObiError::NotReplicated`] / [`ObiError::BadArguments`] — no such
    ///   local replica / target is a master.
    pub fn put(&self, target: ObjRef) -> Result<u64> {
        self.pump_pending_chunks();
        let _span = trace::span(&self.shared.clock, "obi.put")
            .with_site(self.shared.site)
            .with_obj(target.id());
        let start = self.shared.clock.virtual_nanos();
        let result = self.put_inner(target);
        self.shared.metrics.record_latency(
            LatencyKind::Put,
            Duration::from_nanos(self.shared.clock.virtual_nanos().saturating_sub(start)),
        );
        result
    }

    fn put_inner(&self, target: ObjRef) -> Result<u64> {
        match self.put_once(target) {
            // The addressed site no longer masters the object — mastership
            // was handed off and the reply names the successor. The old
            // request id is spent there (`put_once` already abandoned the
            // intent: the redirect is cached under it), so re-point the
            // replica's provider and retry once with a fresh id.
            Err(ObiError::MovedMaster { to, .. }) => {
                self.shared.metrics.incr_moved_master_redirects();
                self.with_inner(|_inner| {
                    self.shared.space.update_meta(target.id(), |meta| {
                        if let ReplicaKind::Replica { provider } = &mut meta.kind {
                            *provider = to;
                        }
                    });
                    Ok(())
                })?;
                self.put_once(target)
            }
            other => other,
        }
    }

    fn put_once(&self, target: ObjRef) -> Result<u64> {
        let (provider, entry) = self.with_inner(|_inner| {
            let meta = self
                .shared
                .space
                .meta(target.id())
                .ok_or(ObiError::NotReplicated(target.id()))?;
            let ReplicaKind::Replica { provider } = meta.kind else {
                return Err(ObiError::BadArguments(
                    "put applies to replicas, not masters".into(),
                ));
            };
            if meta.cluster.is_some() {
                return Err(ObiError::ClusterMember(target.id()));
            }
            let entry = replica_state_of(&self.shared.space, target.id())?;
            Ok((provider, entry))
        })?;
        self.shared
            .clock
            .charge_cpu(self.shared.costs.serialize(entry.state.len()));
        // With durability attached, the put intent (object + request seq +
        // state fingerprint) is forced to the log *before* the RPC leaves.
        // A crash after this point replays the put under the same request
        // id, and the master's reply cache deduplicates it — exactly-once
        // across restarts.
        let fingerprint = state_fingerprint(&entry);
        let request = match self.shared.durable.get() {
            Some(durable) => {
                let seq = match durable.pending_put(target.id()) {
                    // Replay of the exact state the intent covered (crash
                    // recovery, or a retry after a connectivity failure):
                    // reuse the logged id so the master dedupes it.
                    Some(pending) if pending.fingerprint == fingerprint => pending.seq,
                    // The replica was mutated again after the intent was
                    // logged. Its seq may already be spent at the master
                    // (the old state applied, the reply lost), and reusing
                    // it would serve the cached ack WITHOUT applying this
                    // state — silently dropping it. Retire the stale
                    // intent and cover the current state with a fresh one.
                    Some(_) => {
                        durable.log_put_abandoned(target.id())?;
                        let request = self.shared.client.reserve_request();
                        durable.log_put_intent(target.id(), request.seq(), fingerprint)?;
                        request.seq()
                    }
                    None => {
                        let request = self.shared.client.reserve_request();
                        durable.log_put_intent(target.id(), request.seq(), fingerprint)?;
                        request.seq()
                    }
                };
                Some(RequestId::new(self.shared.site, seq))
            }
            None => None,
        };
        let versions = match request {
            Some(request) => {
                match self.shared.client.put_with_request(provider, vec![entry], request) {
                    Ok(versions) => versions,
                    Err(e) => {
                        // A definitive (non-connectivity) rejection means the
                        // master processed this request and cached the error
                        // reply — the intent's seq is spent, and reusing it
                        // on a later put would replay the cached rejection.
                        // Connectivity failures keep the intent: the reply is
                        // unknown, so the retry must dedupe under the same id.
                        if !e.is_connectivity() {
                            if let Some(durable) = self.shared.durable.get() {
                                durable.log_put_abandoned(target.id())?;
                            }
                        }
                        return Err(e);
                    }
                }
            }
            None => self.shared.client.put(provider, vec![entry])?,
        };
        let &(_, version) = versions
            .first()
            .ok_or_else(|| ObiError::Internal("empty put reply".into()))?;
        if let Some(durable) = self.shared.durable.get() {
            durable.log_confirm(target.id(), version, fingerprint)?;
            // Refresh the persisted client watermark alongside: recovery
            // restores the request counter and reply horizon from it.
            durable.log_client_state(
                self.shared.client.request_seq(),
                self.shared.client.horizon_tracker().horizon(),
            )?;
        }
        self.with_inner(|_inner| {
            // The ack covers exactly the state we serialized. Clear dirty
            // only if the replica still holds that state — a mutation that
            // raced the RPC must stay dirty, or it would never be pushed.
            let unchanged = replica_state_of(&self.shared.space, target.id())
                .is_ok_and(|now| state_fingerprint(&now) == fingerprint);
            self.shared.space.update_meta(target.id(), |meta| {
                meta.version = version;
                if unchanged {
                    meta.dirty = false;
                }
                meta.stale = false;
            });
            Ok(())
        })?;
        Ok(version)
    }

    /// Writes a whole cluster back to its provider in one `put` (the only
    /// way to update cluster members).
    pub fn put_cluster(&self, cluster: ClusterId) -> Result<Vec<(ObjId, u64)>> {
        self.pump_pending_chunks();
        let (provider, entries) = self.with_inner(|_inner| {
            let space = &self.shared.space;
            let members: Vec<ObjId> = space
                .object_ids()
                .into_iter()
                .filter(|id| space.meta(*id).is_some_and(|m| m.cluster == Some(cluster)))
                .collect();
            if members.is_empty() {
                return Err(ObiError::BadArguments(format!(
                    "no local members of {cluster}"
                )));
            }
            let provider = match space.meta(members[0]).map(|m| m.kind) {
                Some(ReplicaKind::Replica { provider }) => provider,
                _ => {
                    return Err(ObiError::BadArguments(
                        "cluster members are not replicas".into(),
                    ))
                }
            };
            let mut entries = Vec::with_capacity(members.len());
            for id in members {
                entries.push(replica_state_of(space, id)?);
            }
            Ok((provider, entries))
        })?;
        let total: usize = entries.iter().map(|e| e.state.len()).sum();
        self.shared.clock.charge_cpu(self.shared.costs.serialize(total));
        let sent: std::collections::BTreeMap<ObjId, u64> = entries
            .iter()
            .map(|e| (e.id, state_fingerprint(e)))
            .collect();
        let versions = self.shared.client.put(provider, entries)?;
        if let Some(durable) = self.shared.durable.get() {
            // Cluster puts are not in the disconnected replay path, so no
            // intent record — but confirmed members' deltas are superseded.
            for &(id, version) in &versions {
                if let Some(&fingerprint) = sent.get(&id) {
                    durable.log_confirm(id, version, fingerprint)?;
                }
            }
        }
        self.with_inner(|_inner| {
            for &(id, version) in &versions {
                // As in `put_inner`: only the state the ack covered is
                // clean; a member mutated during the RPC stays dirty.
                let unchanged = replica_state_of(&self.shared.space, id)
                    .is_ok_and(|now| Some(state_fingerprint(&now)) == sent.get(&id).copied());
                self.shared.space.update_meta(id, |meta| {
                    meta.version = version;
                    if unchanged {
                        meta.dirty = false;
                    }
                    meta.stale = false;
                });
            }
            Ok(())
        })?;
        Ok(versions)
    }

    /// Writes every dirty replica back to its master; returns how many
    /// objects were pushed. Dirty cluster members are pushed cluster-wise.
    pub fn put_all_dirty(&self) -> Result<usize> {
        self.pump_pending_chunks();
        let (dirty_plain, dirty_clusters) = self.with_inner(|_inner| {
            let mut plain = Vec::new();
            let mut clusters = std::collections::BTreeSet::new();
            for id in self.shared.space.object_ids() {
                let Some(meta) = self.shared.space.meta(id) else {
                    continue;
                };
                if !meta.dirty || meta.kind.is_master() {
                    continue;
                }
                match meta.cluster {
                    Some(c) => {
                        clusters.insert(c);
                    }
                    None => plain.push(ObjRef::new(id)),
                }
            }
            Ok((plain, clusters))
        })?;
        let mut pushed = 0;
        for r in dirty_plain {
            self.put(r)?;
            pushed += 1;
        }
        for c in dirty_clusters {
            pushed += self.put_cluster(c)?.len();
        }
        Ok(pushed)
    }

    /// Re-fetches a replica's state from its master, discarding local
    /// modifications (`IProvide::get` on an existing replica).
    pub fn refresh(&self, target: ObjRef) -> Result<()> {
        self.pump_pending_chunks();
        let _span = trace::span(&self.shared.clock, "obi.refresh")
            .with_site(self.shared.site)
            .with_obj(target.id());
        let start = self.shared.clock.virtual_nanos();
        let result = self.refresh_inner(target);
        self.shared.metrics.record_latency(
            LatencyKind::Refresh,
            Duration::from_nanos(self.shared.clock.virtual_nanos().saturating_sub(start)),
        );
        result
    }

    fn refresh_inner(&self, target: ObjRef) -> Result<()> {
        let provider = self.with_inner(|_inner| {
            let meta = self
                .shared
                .space
                .meta(target.id())
                .ok_or(ObiError::NotReplicated(target.id()))?;
            match meta.kind {
                ReplicaKind::Replica { provider } => Ok(provider),
                ReplicaKind::Master => Err(ObiError::BadArguments(
                    "refresh applies to replicas, not masters".into(),
                )),
            }
        })?;
        let remote = RemoteRef::new(target.id(), provider);
        let batch = self
            .shared
            .client
            .get(&remote, WireMode::Incremental { batch: 1 })?;
        self.shared.metrics.incr_refreshes();
        self.with_inner(|inner| {
            materialize_batch(
                inner,
                &self.shared,
                &batch,
                provider,
                WireMode::Incremental { batch: 1 },
            )
            .map(|_| ())
        })?;
        // The replica now matches its master: any pending dirty delta in
        // the log is moot.
        if let Some(durable) = self.shared.durable.get() {
            durable.log_clean(target.id())?;
        }
        Ok(())
    }

    /// Like [`refresh`](ObiProcess::refresh), but degrading instead of
    /// failing when the master cannot be reached: on a connectivity error
    /// (partition, timeout, or a fast-fail from an open circuit breaker)
    /// with a local replica still present, the stale replica stays usable
    /// and `Ok(Freshness::Stale)` is returned — OBIWAN's disconnected
    /// degraded mode. Local dirty state is untouched, so a later
    /// [`put_all_dirty`](ObiProcess::put_all_dirty) reintegrates it once
    /// the link heals.
    pub fn refresh_or_stale(&self, target: ObjRef) -> Result<Freshness> {
        match self.refresh(target) {
            Ok(()) => Ok(Freshness::Fresh),
            Err(e) if e.is_connectivity() => {
                let have_replica =
                    self.with_inner(|_inner| Ok(self.shared.space.meta(target.id()).is_some()))?;
                if have_replica {
                    Ok(Freshness::Stale)
                } else {
                    Err(e)
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Re-fetches a whole cluster from its provider in one `get`,
    /// discarding local modifications of every member (the cluster-wise
    /// counterpart of [`ObiProcess::refresh`]).
    ///
    /// The provider mints a fresh [`ClusterId`] for the refreshed batch (a
    /// new cluster generation); the old id stops resolving. Returns the new
    /// id and the number of members refreshed.
    pub fn refresh_cluster(&self, cluster: ClusterId) -> Result<(ClusterId, usize)> {
        self.pump_pending_chunks();
        let (provider, root, size) = self.with_inner(|inner| {
            let space = &self.shared.space;
            let members = space
                .object_ids()
                .into_iter()
                .filter(|id| space.meta(*id).is_some_and(|m| m.cluster == Some(cluster)))
                .count();
            let Some(&root) = inner.cluster_roots.get(&cluster) else {
                return Err(ObiError::BadArguments(format!(
                    "unknown cluster {cluster}"
                )));
            };
            if members == 0 {
                return Err(ObiError::BadArguments(format!(
                    "no local members of {cluster}"
                )));
            }
            match space.meta(root).map(|m| m.kind) {
                Some(ReplicaKind::Replica { provider }) => Ok((provider, root, members)),
                _ => Err(ObiError::BadArguments(
                    "cluster root is not a replica".into(),
                )),
            }
        })?;
        let remote = RemoteRef::new(root, provider);
        let mode = WireMode::Cluster { size: size.max(1) as u32 };
        let batch = self.shared.client.get(&remote, mode)?;
        self.shared.metrics.incr_refreshes();
        let fetched = batch.replicas.len();
        let new_cluster = batch.cluster.ok_or_else(|| {
            ObiError::Internal("cluster get returned a non-cluster batch".into())
        })?;
        self.with_inner(|inner| {
            inner.cluster_roots.remove(&cluster);
            materialize_batch(inner, &self.shared, &batch, provider, mode)
        })?;
        Ok((new_cluster, fetched))
    }

    /// Subscribes this process to consistency traffic for a replica it
    /// holds: `push = false` for invalidations, `true` for full updates.
    pub fn subscribe(&self, target: ObjRef, push: bool) -> Result<()> {
        let provider = self.with_inner(|_inner| {
            let meta = self
                .shared
                .space
                .meta(target.id())
                .ok_or(ObiError::NotReplicated(target.id()))?;
            match meta.kind {
                ReplicaKind::Replica { provider } => Ok(provider),
                ReplicaKind::Master => Err(ObiError::BadArguments(
                    "masters do not subscribe to themselves".into(),
                )),
            }
        })?;
        self.shared.client.subscribe(provider, target.id(), push)
    }

    // -- connectivity ---------------------------------------------------------

    /// Round-trip connectivity probe to `site`.
    pub fn ping(&self, site: SiteId) -> Result<()> {
        self.shared.client.ping(site)
    }

    /// The clock this process charges time to (shared with the transport).
    pub fn clock(&self) -> &Clock {
        &self.shared.clock
    }

    /// True when the transport currently routes to `site`.
    pub fn can_reach(&self, site: SiteId) -> bool {
        self.shared.client.is_reachable(site)
    }

    /// Current circuit-breaker state for the link to `site`. An `Open`
    /// breaker means calls fail fast without touching the network until
    /// the cooldown admits a probe.
    pub fn breaker_state(&self, site: SiteId) -> BreakerState {
        self.shared.client.breaker_state(site)
    }

    /// Replaces the RPC retry policy (retries, per-call deadline budget,
    /// backoff bounds) used by every request this process issues.
    pub fn set_rpc_policy(&self, policy: RetryPolicy) {
        self.shared.client.set_rpc_policy(policy);
    }

    /// The RPC retry policy currently in force.
    pub fn rpc_policy(&self) -> RetryPolicy {
        self.shared.client.rpc_policy()
    }

    // -- inspection -----------------------------------------------------------

    /// What `target` currently resolves to in this process.
    pub fn resolution(&self, target: ObjRef) -> Resolution {
        self.with_inner(|_inner| Ok(self.shared.space.resolve(target.id())))
            .unwrap_or(Resolution::Busy)
    }

    /// Metadata of a live local object, if any.
    pub fn meta_of(&self, target: ObjRef) -> Option<ObjectMeta> {
        self.with_inner(|_inner| Ok(self.shared.space.meta(target.id())))
            .ok()
            .flatten()
    }

    /// True when `target` resolves to a live local object.
    pub fn is_replicated(&self, target: ObjRef) -> bool {
        matches!(self.resolution(target), Resolution::Object(_))
    }

    /// A snapshot of a live object's serialized state (reads do not count
    /// as invocations).
    pub fn state_of(&self, target: ObjRef) -> Result<ObiValue> {
        self.with_inner(|_inner| self.shared.space.with_object(target.id(), |o, _| o.state()))
    }

    /// Number of live objects (masters + replicas).
    pub fn object_count(&self) -> usize {
        self.with_inner(|_inner| Ok(self.shared.space.object_ids().len()))
            .unwrap_or(0)
    }

    /// Number of outstanding proxy-out slots.
    pub fn proxy_count(&self) -> usize {
        self.with_inner(|_inner| Ok(self.shared.space.proxy_count()))
            .unwrap_or(0)
    }

    /// Marks an application-held reference as a GC root.
    pub fn add_root(&self, target: ObjRef) {
        let _ = self.with_inner(|_inner| {
            self.shared.space.add_root(target.id());
            Ok(())
        });
    }

    /// Unmarks a GC root.
    pub fn remove_root(&self, target: ObjRef) {
        let _ = self.with_inner(|_inner| {
            self.shared.space.remove_root(target.id());
            Ok(())
        });
    }

    /// Runs the space's mark-and-sweep (see
    /// [`crate::space::ObjectSpace::collect_garbage`]); reclaimed proxies are counted in
    /// this process's metrics.
    pub fn collect_garbage(&self, collect_replicas: bool) -> GcStats {
        self.with_inner(|_inner| {
            let stats = self.shared.space.collect_garbage(collect_replicas);
            self.shared
                .metrics
                .add_proxies_reclaimed(stats.proxies_reclaimed as u64);
            Ok(stats)
        })
        .unwrap_or_default()
    }

    // -- membership -----------------------------------------------------------

    /// Joins a live world: enrolls this site at the name server and returns
    /// the bootstrap view (the current peers plus the bound-name catalog).
    /// Admission is idempotent at the server, so a joiner retrying under
    /// loss enrolls exactly once. Replicas are then demanded through the
    /// ordinary incremental pipeline (`lookup` + proxy faulting) while the
    /// rest of the world keeps serving.
    pub fn join(&self) -> Result<JoinInfo> {
        self.shared.client.join(self.shared.ns_site)
    }

    /// Announces a graceful departure: a `Leave` one-way to the name server
    /// (which drops this site from the roster) and to each given peer
    /// (which retires its connectivity state for this site). Best-effort by
    /// design — a frame lost here degrades to the crash-leave path, where
    /// peers retire the site once its breaker opens.
    pub fn leave(&self, peers: &[SiteId]) {
        let _ = self
            .shared
            .client
            .send_leave(self.shared.ns_site, self.shared.site);
        for &peer in peers {
            if peer == self.shared.site || peer == self.shared.ns_site {
                continue;
            }
            let _ = self.shared.client.send_leave(peer, self.shared.site);
        }
    }

    /// Retires `peer` from this site's connectivity tracking: its circuit
    /// breaker slot is dropped, so a departed site stops consuming probe
    /// budget and a future rejoin starts from a clean `Closed` state.
    pub fn retire_peer(&self, peer: SiteId) {
        self.shared.client.breaker().retire_peer(peer);
        self.shared.metrics.incr_peers_retired();
    }

    /// Hands mastership of `root` (and every locally-mastered object
    /// reachable from it) to `successor`, without quiescing: in-flight puts
    /// serialize against the demotion on the process lock, and any put that
    /// arrives after it is answered with [`ObiError::MovedMaster`] so the
    /// caller re-targets the successor with a fresh request id.
    ///
    /// Ordering is demote-first: the transferred objects flip to replicas
    /// pointing at `successor` *before* the state leaves this site, so there
    /// is never a moment with two masters — the failure mode under loss is
    /// an orphaned root (no master until a retry lands), never a split one.
    /// With durability attached, a `HandoffIntent` is forced to the log
    /// before the RPC and a `HandoffComplete` after the ack; recovery from a
    /// crash anywhere in between points the demoted replicas at `successor`
    /// and never resurrects a second master here.
    ///
    /// Retryable: if a previous attempt to the *same* successor failed after
    /// demotion, the (clean, fully-populated) local replicas still hold the
    /// state, and calling again re-sends it. The successor installs
    /// idempotently, version-guarded, so duplicate deliveries are safe.
    ///
    /// Returns the root's version as installed at the successor.
    pub fn handoff(&self, root: ObjRef, successor: SiteId) -> Result<u64> {
        self.pump_pending_chunks();
        let _span = trace::span(&self.shared.clock, "obi.handoff")
            .with_site(self.shared.site)
            .with_obj(root.id());
        if successor == self.shared.site {
            return Err(ObiError::BadArguments(
                "handoff successor must be a different site".into(),
            ));
        }
        if let Some(durable) = self.shared.durable.get() {
            durable.log_handoff_intent(root.id(), successor)?;
        }
        // Collect the transfer set and demote it in one process-lock
        // section: every put either fully applied before this point (its
        // effect is in the serialized entries) or observes replicas and is
        // redirected. Nothing in between.
        let entries = self.with_inner(|_inner| {
            let meta = self
                .shared
                .space
                .meta(root.id())
                .ok_or(ObiError::NoSuchObject(root.id()))?;
            let retrying = match meta.kind {
                ReplicaKind::Master => false,
                // A crashed or failed earlier attempt already demoted us
                // toward this same successor; re-send from the replicas.
                ReplicaKind::Replica { provider } if provider == successor => true,
                ReplicaKind::Replica { provider } => {
                    return Err(ObiError::MovedMaster {
                        object: root.id(),
                        to: provider,
                    })
                }
            };
            let mut queue = VecDeque::from([root.id()]);
            let mut seen = HashSet::from([root.id()]);
            let mut ids = Vec::new();
            while let Some(id) = queue.pop_front() {
                let transferable = self.shared.space.meta(id).is_some_and(|m| match m.kind {
                    ReplicaKind::Master => true,
                    ReplicaKind::Replica { provider } => retrying && provider == successor,
                });
                if !transferable {
                    // Replicas of remote masters and proxies stay put; the
                    // successor will fault them on demand like anyone else.
                    continue;
                }
                ids.push(id);
                if let Ok(refs) = self.shared.space.with_object(id, |o, _| o.refs()) {
                    for r in refs {
                        if seen.insert(r.id()) {
                            queue.push_back(r.id());
                        }
                    }
                }
            }
            let mut entries = Vec::with_capacity(ids.len());
            for id in &ids {
                entries.push(replica_state_of(&self.shared.space, *id)?);
            }
            for id in &ids {
                self.shared.space.update_meta(*id, |meta| {
                    meta.kind = ReplicaKind::Replica {
                        provider: successor,
                    };
                    // The successor's install is the authoritative copy of
                    // exactly these bytes; nothing here needs pushing back.
                    meta.dirty = false;
                    meta.stale = false;
                });
            }
            Ok(entries)
        })?;
        let total: usize = entries.iter().map(|e| e.state.len()).sum();
        self.shared.clock.charge_cpu(self.shared.costs.serialize(total));
        let version = self.shared.client.handoff(successor, root.id(), entries)?;
        if let Some(durable) = self.shared.durable.get() {
            durable.log_handoff_complete(root.id())?;
        }
        self.with_inner(|_inner| {
            self.shared.space.update_meta(root.id(), |meta| {
                meta.version = version;
            });
            Ok(())
        })?;
        self.shared.metrics.incr_handoffs_completed();
        Ok(version)
    }
}

/// Breadth-first search from `root` over live objects collecting every
/// reachable proxy-out target (the objects a walk from `root` could fault
/// on), in discovery order.
fn reachable_frontier<S: SpaceView>(space: &S, root: ObjId) -> Vec<ObjId> {
    let mut queue = VecDeque::new();
    let mut seen = std::collections::HashSet::new();
    let mut frontier = Vec::new();
    queue.push_back(root);
    seen.insert(root);
    while let Some(id) = queue.pop_front() {
        match space.resolve(id) {
            Resolution::Proxy(_) => frontier.push(id),
            Resolution::Object(_) => {
                if let Ok(refs) = space.with_object(id, |o, _| o.refs()) {
                    for r in refs {
                        if seen.insert(r.id()) {
                            queue.push_back(r.id());
                        }
                    }
                }
            }
            _ => {}
        }
    }
    frontier
}

fn replica_state_of(space: &ShardedSpace, id: ObjId) -> Result<ReplicaState> {
    space.with_object(id, |o, m| ReplicaState {
        id,
        class: o.class_name().to_owned(),
        version: m.version,
        state: {
            let mut enc = Encoder::new();
            enc.put_value(&o.state());
            enc.finish()
        },
    })
}

// ---------------------------------------------------------------------------
// The service endpoint (skeleton side)
// ---------------------------------------------------------------------------

struct ProcessService {
    shared: Arc<ProcessShared>,
}

impl ProcessService {
    fn enter(&self) -> Result<LockGuard<'_>> {
        self.shared.lock.enter(self.shared.site)
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut ProcessInner) -> Result<R>) -> Result<R> {
        let (result, flush) = {
            let mut g = self.enter()?;
            let result = f(&mut g);
            let flush = std::mem::take(&mut g.outbox);
            (result, flush)
        };
        for (to, msg) in flush {
            let _ = match msg {
                Message::Invalidate { objects } => {
                    self.shared.client.send_invalidate(to, objects)
                }
                Message::UpdatePush { entries } => {
                    self.shared.client.send_update_push(to, entries)
                }
                _ => Ok(()),
            };
        }
        result
    }

    /// Mints the closure that names the next cluster batch. The counter is
    /// atomic, so concurrent serve-gets each draw a distinct generation.
    fn next_cluster(&self) -> impl FnOnce() -> ClusterId {
        let site = self.shared.site;
        let current = self.shared.cluster_seq.fetch_add(1, Ordering::Relaxed);
        move || ClusterId::new(site, current)
    }

    /// Shared tail of the `get`/`get_many` handlers: charge provider-side
    /// marshalling and register proxy-ins so replicas can be individually
    /// updated (one per object) or cluster-updated (root only).
    fn finish_get(&self, batch: ReplicaBatch) -> Result<ReplicaBatch> {
        self.shared
            .clock
            .charge_cpu(self.shared.costs.serialize(batch.state_bytes()));
        let mut exports = self.shared.exports.write();
        match batch.cluster {
            Some(_) => {
                exports.entry(batch.root).or_default();
            }
            None => {
                for r in &batch.replicas {
                    exports.entry(r.id).or_default();
                }
            }
        }
        drop(exports);
        Ok(batch)
    }

    /// The serve-get fast path: builds the batch straight off the sharded
    /// space, one shard read at a time, *without* the process lock. Remote
    /// readers therefore scale with the shard count while local invocations
    /// keep serializing on the process lock.
    ///
    /// The one semantic difference from the locked path: a slot owned by an
    /// in-flight invocation reads as `Busy` (the locked path would have
    /// waited the invocation out). Callers retry under the process lock on
    /// any error, which restores exactly the old blocking behavior.
    fn serve_get_fast(&self, target: ObjId, mode: WireMode) -> Result<ReplicaBatch> {
        let batch = build_batch(&self.shared.space, target, mode, self.next_cluster())?;
        self.finish_get(batch)
    }

    fn serve_get_many_fast(&self, targets: &[ObjId], mode: WireMode) -> Result<ReplicaBatch> {
        let batch = build_batch_many(&self.shared.space, targets, mode, self.next_cluster())?;
        self.finish_get(batch)
    }
}

fn apply_one_way(inner: &mut ProcessInner, shared: &ProcessShared, _from: SiteId, msg: Message) {
    let _ = inner;
    match msg {
        Message::Invalidate { objects } => {
            for id in objects {
                shared.space.update_meta(id, |meta| {
                    if !meta.kind.is_master() {
                        meta.stale = true;
                    }
                });
            }
        }
        Message::UpdatePush { entries } => {
            for state in entries {
                let Some(meta) = shared.space.meta(state.id) else {
                    continue;
                };
                if meta.kind.is_master() {
                    continue;
                }
                if meta.dirty {
                    // Local un-pushed edits win locally; remember staleness.
                    shared.space.update_meta(state.id, |m| m.stale = true);
                    continue;
                }
                let ReplicaKind::Replica { provider } = meta.kind else {
                    continue;
                };
                let Ok(value) = Decoder::new(&state.state).take_value() else {
                    continue;
                };
                let Ok(object) = shared.registry.decode(&state.class, &value) else {
                    continue;
                };
                let mut new_meta = ObjectMeta::replica(state.id, provider, state.version);
                new_meta.cluster = meta.cluster;
                shared.space.insert_object(ObjectEntry {
                    object,
                    meta: new_meta,
                });
            }
        }
        _ => {}
    }
}

impl RmiService for ProcessService {
    fn invoke(
        &self,
        _from: SiteId,
        target: ObjId,
        method: &str,
        args: ObiValue,
    ) -> Result<ObiValue> {
        let mut dirtied: Vec<(ObjId, SiteId)> = Vec::new();
        let result = self.with_inner(|inner| {
            let mut modified = Vec::new();
            let result = invoke_inner(inner, &self.shared, target, method, &args, &mut modified, 0);
            dirtied = finish_invocation(inner, &self.shared, &modified);
            result
        });
        log_dirty_deltas(&self.shared, &dirtied);
        result
    }

    fn get(&self, _from: SiteId, target: ObjId, mode: WireMode) -> Result<ReplicaBatch> {
        let _span = trace::span(&self.shared.clock, "obi.serve_get")
            .with_site(self.shared.site)
            .with_obj(target);
        match self.serve_get_fast(target, mode) {
            Ok(batch) => Ok(batch),
            // A miss may mean a concurrent invocation holds the slot Busy;
            // the process lock waits every invocation out, then the slot is
            // live again (or genuinely absent).
            Err(_) => self.with_inner(|_inner| self.serve_get_fast(target, mode)),
        }
    }

    fn get_many(&self, _from: SiteId, targets: &[ObjId], mode: WireMode) -> Result<ReplicaBatch> {
        let _span = trace::span(&self.shared.clock, "obi.serve_get_many")
            .with_site(self.shared.site)
            .with_value(targets.len() as u64);
        match self.serve_get_many_fast(targets, mode) {
            Ok(batch) => Ok(batch),
            Err(_) => self.with_inner(|_inner| self.serve_get_many_fast(targets, mode)),
        }
    }

    fn put(&self, from: SiteId, entries: Vec<ReplicaState>) -> Result<Vec<(ObjId, u64)>> {
        self.with_inner(|inner| {
            // Phase 1: validate every entry against the policy, atomically.
            for entry in &entries {
                let meta = self
                    .shared
                    .space
                    .meta(entry.id)
                    .ok_or(ObiError::NoSuchObject(entry.id))?;
                if !meta.kind.is_master() {
                    // A demoted ex-master knows where mastership went: its
                    // replica's provider is the handoff successor. Answer
                    // with a redirect so the client re-targets instead of
                    // treating the put as definitively rejected.
                    if let ReplicaKind::Replica { provider } = meta.kind {
                        return Err(ObiError::MovedMaster {
                            object: entry.id,
                            to: provider,
                        });
                    }
                    return Err(ObiError::UpdateRejected {
                        object: entry.id,
                        reason: "target is not the master replica".into(),
                    });
                }
                let master_version = meta.version;
                if let Err(e) = inner
                    .policy
                    .decide_put(entry.id, master_version, entry.version)
                {
                    self.shared.metrics.incr_conflicts_detected();
                    return Err(e);
                }
            }
            // Phase 2: apply.
            let mut versions = Vec::with_capacity(entries.len());
            for entry in &entries {
                let value = Decoder::new(&entry.state).take_value()?;
                let object = self.shared.registry.decode(&entry.class, &value)?;
                let new_version = {
                    let meta = self
                        .shared
                        .space
                        .meta(entry.id)
                        .ok_or(ObiError::NoSuchObject(entry.id))?;
                    meta.version + 1
                };
                let mut meta = ObjectMeta::master(entry.id);
                meta.version = new_version;
                self.shared.space.insert_object(ObjectEntry { object, meta });
                inner.policy.on_master_updated(entry.id, new_version);
                self.shared.metrics.incr_puts();
                versions.push((entry.id, new_version));
                queue_notifications(inner, &self.shared, entry.id, from);
            }
            Ok(versions)
        })
    }

    fn handoff(&self, from: SiteId, root: ObjId, entries: Vec<ReplicaState>) -> Result<u64> {
        if entries.is_empty() {
            return Err(ObiError::BadArguments("handoff carries no entries".into()));
        }
        if !entries.iter().any(|e| e.id == root) {
            return Err(ObiError::BadArguments(
                "handoff entries do not include the root".into(),
            ));
        }
        self.with_inner(|inner| {
            let mut root_version = 0;
            for entry in &entries {
                // Idempotent install: a duplicate delivery (the ack was
                // lost, the predecessor retried) must not regress state
                // this master has advanced since the first copy landed.
                if let Some(meta) = self.shared.space.meta(entry.id) {
                    if meta.kind.is_master() && meta.version >= entry.version {
                        if entry.id == root {
                            root_version = meta.version;
                        }
                        continue;
                    }
                }
                let value = Decoder::new(&entry.state).take_value()?;
                let object = self.shared.registry.decode(&entry.class, &value)?;
                let mut meta = ObjectMeta::master(entry.id);
                meta.version = entry.version;
                self.shared.space.insert_object(ObjectEntry { object, meta });
                inner.policy.on_master_updated(entry.id, entry.version);
                if entry.id == root {
                    root_version = entry.version;
                }
                // Anyone holding a replica from the old master keeps
                // working: this site now answers their gets and puts.
                self.shared
                    .exports
                    .write()
                    .entry(entry.id)
                    .or_default()
                    .subscribe(from, false);
            }
            // The transferred graph is live by definition — the predecessor
            // was serving it — so pin the root against the next sweep.
            self.shared.space.add_root(root);
            Ok(root_version)
        })
    }

    fn leave_notice(&self, _from: SiteId, site: SiteId) {
        self.shared.client.breaker().retire_peer(site);
        self.shared.metrics.incr_peers_retired();
    }

    fn name_op(&self, _from: SiteId, op: NameOp) -> Result<ObiValue> {
        // Object-space hosts do not serve names; the world's dedicated name
        // server site does. Reject with the proper error.
        let name = match op {
            NameOp::Bind { name, .. } | NameOp::Lookup { name } | NameOp::Unbind { name } => name,
            NameOp::List => "*".to_owned(),
        };
        Err(ObiError::NameNotBound(name))
    }

    fn subscribe(&self, from: SiteId, object: ObjId, push: bool) -> Result<ObiValue> {
        self.with_inner(|_inner| {
            if !matches!(self.shared.space.resolve(object), Resolution::Object(_)) {
                return Err(ObiError::NoSuchObject(object));
            }
            self.shared
                .exports
                .write()
                .entry(object)
                .or_default()
                .subscribe(from, push);
            Ok(ObiValue::Null)
        })
    }

    fn invalidate(&self, from: SiteId, objects: Vec<ObjId>) {
        let msg = Message::Invalidate { objects };
        match self.enter() {
            Ok(mut g) => apply_one_way(&mut g, &self.shared, from, msg),
            Err(_) => self.shared.inbox.lock().push_back((from, msg)),
        }
    }

    fn update_push(&self, from: SiteId, entries: Vec<ReplicaState>) {
        let msg = Message::UpdatePush { entries };
        match self.enter() {
            Ok(mut g) => apply_one_way(&mut g, &self.shared, from, msg),
            Err(_) => self.shared.inbox.lock().push_back((from, msg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::{Counter, LinkedItem, PayloadNode, TreeNode};
    use crate::world::ObiWorld;

    /// Builds a world with two sites and a list of `n` LinkedItems exported
    /// from the second site under "head". Returns (world, s1, s2, node refs).
    fn list_world(n: usize) -> (ObiWorld, SiteId, SiteId, Vec<ObjRef>) {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let mut refs: Vec<ObjRef> = Vec::new();
        let mut next: Option<ObjRef> = None;
        for i in (0..n).rev() {
            let mut item = LinkedItem::new(i as i64, format!("n{i}"));
            item.set_next(next);
            let r = world.site(s2).create(item);
            next = Some(r);
            refs.push(r);
        }
        refs.reverse();
        world.site(s2).export(refs[0], "head").unwrap();
        (world, s1, s2, refs)
    }

    #[test]
    fn incremental_get_replicates_only_the_batch() {
        let (world, s1, _s2, refs) = list_world(10);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(3))
            .unwrap();
        assert_eq!(root, refs[0]);
        for r in &refs[..3] {
            assert!(world.site(s1).is_replicated(*r));
        }
        assert!(matches!(
            world.site(s1).resolution(refs[3]),
            Resolution::Proxy(_)
        ));
        for r in &refs[4..] {
            assert!(matches!(world.site(s1).resolution(*r), Resolution::Absent));
        }
        assert_eq!(world.site(s1).metrics().snapshot().replicas_created, 3);
    }

    #[test]
    fn walking_the_list_faults_in_batches() {
        let (world, s1, _s2, refs) = list_world(10);
        let remote = world.site(s1).lookup("head").unwrap();
        let mut cur = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(2))
            .unwrap();
        // Walk the whole list via `touch`, which returns the next ref.
        let mut visited = 0;
        loop {
            let out = world.site(s1).invoke(cur, "touch", ObiValue::Null).unwrap();
            visited += 1;
            match out.as_ref_id() {
                Some(next) => cur = ObjRef::new(next),
                None => break,
            }
        }
        assert_eq!(visited, 10);
        let snap = world.site(s1).metrics().snapshot();
        // 10 objects in batches of 2, first 2 from the initial get: 4 faults.
        assert_eq!(snap.object_faults, 4);
        assert_eq!(snap.replicas_created, 10);
        assert_eq!(snap.lmi_count, 10);
        for r in &refs {
            assert!(world.site(s1).is_replicated(*r));
        }
        // Tail has no frontier; no proxies remain.
        assert_eq!(world.site(s1).proxy_count(), 0);
    }

    #[test]
    fn streamed_fault_parks_tail_chunks_for_the_pump() {
        let (world, s1, _s2, refs) = list_world(30);
        let remote = world.site(s1).lookup("head").unwrap();
        world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(20))
            .unwrap();
        // Touching the frontier proxy streams the remaining 10 objects:
        // chunk 0 (8 objects) installs inline inside the fault window, the
        // tail chunk parks for the next operation's pump.
        world
            .site(s1)
            .invoke(refs[20], "touch", ObiValue::Null)
            .unwrap();
        for r in &refs[20..28] {
            assert!(world.site(s1).is_replicated(*r));
        }
        assert!(!world.site(s1).is_replicated(refs[28]));
        let pumped = world.site(s1).pump_pending_chunks();
        assert_eq!(pumped, 1);
        for r in &refs[20..] {
            assert!(world.site(s1).is_replicated(*r));
        }
        let snap = world.site(s1).metrics().snapshot();
        assert_eq!(snap.demand_chunks, 2);
        assert_eq!(snap.replicas_created, 30);
        // Exactly one streamed round trip resolved the fault.
        assert_eq!(snap.stream_resumes, 0);
    }

    #[test]
    fn public_operations_pump_parked_chunks_before_their_own_window() {
        let (world, s1, _s2, refs) = list_world(30);
        let remote = world.site(s1).lookup("head").unwrap();
        world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(20))
            .unwrap();
        world
            .site(s1)
            .invoke(refs[20], "touch", ObiValue::Null)
            .unwrap();
        assert!(!world.site(s1).is_replicated(refs[28]));
        // Any public entry point drains the queue before doing its work.
        world
            .site(s1)
            .invoke(refs[0], "touch", ObiValue::Null)
            .unwrap();
        for r in &refs {
            assert!(world.site(s1).is_replicated(*r));
        }
        assert_eq!(world.site(s1).proxy_count(), 0);
    }

    #[test]
    fn nested_invocation_faults_transparently() {
        let (world, s1, _s2, refs) = list_world(3);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        // sum_rest recurses through two faults.
        let v = world
            .site(s1)
            .invoke(root, "sum_rest", ObiValue::Null)
            .unwrap();
        assert_eq!(v, ObiValue::I64(3)); // 0 + 1 + 2
        assert_eq!(world.site(s1).metrics().snapshot().object_faults, 2);
        assert!(world.site(s1).is_replicated(refs[2]));
    }

    #[test]
    fn transitive_closure_replicates_everything_upfront() {
        let (world, s1, _s2, refs) = list_world(20);
        let remote = world.site(s1).lookup("head").unwrap();
        world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        for r in &refs {
            assert!(world.site(s1).is_replicated(*r));
        }
        assert_eq!(world.site(s1).metrics().snapshot().object_faults, 0);
        assert_eq!(world.site(s1).proxy_count(), 0);
    }

    #[test]
    fn cluster_get_creates_one_proxy_pair_per_batch() {
        let (world, s1, _s2, _refs) = list_world(10);
        let remote = world.site(s1).lookup("head").unwrap();
        let mut cur = world
            .site(s1)
            .get(&remote, ReplicationMode::cluster(5))
            .unwrap();
        loop {
            let out = world.site(s1).invoke(cur, "touch", ObiValue::Null).unwrap();
            match out.as_ref_id() {
                Some(next) => cur = ObjRef::new(next),
                None => break,
            }
        }
        let snap = world.site(s1).metrics().snapshot();
        assert_eq!(snap.replicas_created, 10);
        // 2 cluster batches -> 2 proxy pairs (vs 10 in incremental mode).
        assert_eq!(snap.proxy_pairs_created, 2);
    }

    #[test]
    fn cluster_members_cannot_be_put_individually() {
        let (world, s1, _s2, refs) = list_world(4);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::cluster(4))
            .unwrap();
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(99))
            .unwrap();
        let err = world.site(s1).put(refs[0]).unwrap_err();
        assert!(matches!(err, ObiError::ClusterMember(_)));
    }

    #[test]
    fn put_cluster_writes_all_members_back() {
        let (world, s1, s2, refs) = list_world(3);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::cluster(3))
            .unwrap();
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(42))
            .unwrap();
        let cluster = world.site(s1).meta_of(root).unwrap().cluster.unwrap();
        let versions = world.site(s1).put_cluster(cluster).unwrap();
        assert_eq!(versions.len(), 3);
        // Master sees the new value.
        let v = world.site(s2).invoke(refs[0], "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(42));
        // Replica is clean again.
        assert!(!world.site(s1).meta_of(root).unwrap().dirty);
    }

    #[test]
    fn put_writes_replica_back_and_bumps_version() {
        let (world, s1, s2, refs) = list_world(2);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(7))
            .unwrap();
        assert!(world.site(s1).meta_of(root).unwrap().dirty);
        let version = world.site(s1).put(root).unwrap();
        assert_eq!(version, 2);
        let meta = world.site(s1).meta_of(root).unwrap();
        assert!(!meta.dirty);
        assert_eq!(meta.version, 2);
        let v = world.site(s2).invoke(refs[0], "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(7));
    }

    #[test]
    fn put_on_master_is_rejected() {
        let (world, _s1, s2, refs) = list_world(1);
        assert!(matches!(
            world.site(s2).put(refs[0]),
            Err(ObiError::BadArguments(_))
        ));
    }

    #[test]
    fn refresh_discards_local_changes() {
        let (world, s1, s2, refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        // Diverge: replica says 5, master says 9.
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(5))
            .unwrap();
        world
            .site(s2)
            .invoke(refs[0], "set_value", ObiValue::I64(9))
            .unwrap();
        world.site(s1).refresh(root).unwrap();
        let v = world.site(s1).invoke(root, "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(9));
        let meta = world.site(s1).meta_of(root).unwrap();
        assert!(!meta.dirty);
        assert_eq!(world.site(s1).metrics().snapshot().refreshes, 1);
    }

    #[test]
    fn rmi_and_lmi_agree_on_results() {
        let (world, s1, _s2, _refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let via_rmi = world
            .site(s1)
            .invoke_rmi(&remote, "value", ObiValue::Null)
            .unwrap();
        let local = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        let via_lmi = world.site(s1).invoke(local, "value", ObiValue::Null).unwrap();
        assert_eq!(via_rmi, via_lmi);
        assert_eq!(world.site(s1).metrics().snapshot().lmi_count, 1);
    }

    #[test]
    fn master_can_still_be_invoked_via_rmi_after_replication() {
        // Paper §2.1: "at any time, both replicas, the master and the
        // local, can be freely invoked".
        let (world, s1, _s2, _refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let local = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world
            .site(s1)
            .invoke(local, "set_value", ObiValue::I64(123))
            .unwrap();
        // The master is untouched until a put.
        let master_v = world
            .site(s1)
            .invoke_rmi(&remote, "value", ObiValue::Null)
            .unwrap();
        assert_eq!(master_v, ObiValue::I64(0));
    }

    #[test]
    fn invalidation_subscription_marks_replicas_stale() {
        let (world, s1, s2, refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world.site(s1).subscribe(root, false).unwrap();
        assert!(!world.site(s1).meta_of(root).unwrap().stale);
        // Master mutates -> invalidation flows to S1.
        world
            .site(s2)
            .invoke(refs[0], "set_value", ObiValue::I64(3))
            .unwrap();
        world.pump();
        assert!(world.site(s1).meta_of(root).unwrap().stale);
        // Refresh clears staleness.
        world.site(s1).refresh(root).unwrap();
        assert!(!world.site(s1).meta_of(root).unwrap().stale);
    }

    #[test]
    fn push_subscription_updates_replica_state() {
        let (world, s1, s2, refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world.site(s1).subscribe(root, true).unwrap();
        world
            .site(s2)
            .invoke(refs[0], "set_value", ObiValue::I64(77))
            .unwrap();
        world.pump();
        let v = world.site(s1).invoke(root, "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(77));
        assert!(!world.site(s1).meta_of(root).unwrap().stale);
    }

    #[test]
    fn pushed_updates_do_not_clobber_dirty_replicas() {
        let (world, s1, s2, refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world.site(s1).subscribe(root, true).unwrap();
        // Local edit first.
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(1))
            .unwrap();
        // Remote edit pushes.
        world
            .site(s2)
            .invoke(refs[0], "set_value", ObiValue::I64(2))
            .unwrap();
        world.pump();
        // Local edit survives; staleness is recorded.
        let v = world.site(s1).invoke(root, "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(1));
        let meta = world.site(s1).meta_of(root).unwrap();
        assert!(meta.dirty);
        assert!(meta.stale);
    }

    #[test]
    fn put_all_dirty_pushes_everything() {
        let (world, s1, s2, refs) = list_world(3);
        let remote = world.site(s1).lookup("head").unwrap();
        world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        for (i, r) in refs.iter().enumerate() {
            world
                .site(s1)
                .invoke(*r, "set_value", ObiValue::I64(100 + i as i64))
                .unwrap();
        }
        let pushed = world.site(s1).put_all_dirty().unwrap();
        assert_eq!(pushed, 3);
        for (i, r) in refs.iter().enumerate() {
            let v = world.site(s2).invoke(*r, "value", ObiValue::Null).unwrap();
            assert_eq!(v, ObiValue::I64(100 + i as i64));
        }
        // Second call has nothing to do.
        assert_eq!(world.site(s1).put_all_dirty().unwrap(), 0);
    }

    #[test]
    fn disconnected_work_on_colocated_objects() {
        // The paper's headline scenario: replicate, disconnect, keep
        // working, reconnect, reintegrate.
        let (world, s1, s2, refs) = list_world(5);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        world.disconnect(s1);
        // LMI still works offline.
        for _ in 0..10 {
            world.site(s1).invoke(root, "touch", ObiValue::Null).unwrap();
        }
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(5))
            .unwrap();
        // RMI fails with a connectivity error, as does put.
        assert!(world
            .site(s1)
            .invoke_rmi(&remote, "value", ObiValue::Null)
            .unwrap_err()
            .is_connectivity());
        assert!(world.site(s1).put(root).unwrap_err().is_connectivity());
        // Replica is still dirty, nothing was lost.
        assert!(world.site(s1).meta_of(root).unwrap().dirty);
        world.reconnect(s1);
        world.site(s1).put(root).unwrap();
        let v = world.site(s2).invoke(refs[0], "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(5));
    }

    #[test]
    fn faulting_while_disconnected_fails_but_replicated_prefix_works() {
        let (world, s1, _s2, refs) = list_world(4);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(2))
            .unwrap();
        world.disconnect(s1);
        // First two objects are local.
        world.site(s1).invoke(root, "touch", ObiValue::Null).unwrap();
        world.site(s1).invoke(refs[1], "touch", ObiValue::Null).unwrap();
        // The third faults, and the fault cannot be resolved.
        let err = world
            .site(s1)
            .invoke(refs[2], "touch", ObiValue::Null)
            .unwrap_err();
        assert!(err.is_connectivity());
    }

    #[test]
    fn rejecting_policy_blocks_puts() {
        struct RejectAll;
        impl ConsistencyHook for RejectAll {
            fn name(&self) -> &'static str {
                "reject-all"
            }
            fn decide_put(&mut self, object: ObjId, _mv: u64, _bv: u64) -> Result<()> {
                Err(ObiError::UpdateRejected {
                    object,
                    reason: "policy says no".into(),
                })
            }
        }
        let (world, s1, s2, _refs) = list_world(1);
        world.site(s2).set_policy(Box::new(RejectAll));
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(9))
            .unwrap();
        let err = world.site(s1).put(root).unwrap_err();
        assert!(matches!(err, ObiError::UpdateRejected { .. }));
        // Replica stays dirty for a later retry.
        assert!(world.site(s1).meta_of(root).unwrap().dirty);
        assert_eq!(world.site(s2).metrics().snapshot().conflicts_detected, 1);
    }

    #[test]
    fn tree_replication_faults_branches_independently() {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let leaf1 = world.site(s2).create(TreeNode::new("l1"));
        let leaf2 = world.site(s2).create(TreeNode::new("l2"));
        let mid = world
            .site(s2)
            .create(TreeNode::with_children("mid", vec![leaf1, leaf2]));
        let root = world
            .site(s2)
            .create(TreeNode::with_children("root", vec![mid]));
        world.site(s2).export(root, "tree").unwrap();

        let remote = world.site(s1).lookup("tree").unwrap();
        let local = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        let count = world
            .site(s1)
            .invoke(local, "deep_count", ObiValue::Null)
            .unwrap();
        assert_eq!(count, ObiValue::I64(4));
        assert!(world.site(s1).is_replicated(leaf2));
    }

    #[test]
    fn gc_reclaims_proxies_after_walk() {
        let (world, s1, _s2, _refs) = list_world(6);
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(2))
            .unwrap();
        world.site(s1).add_root(root);
        assert_eq!(world.site(s1).proxy_count(), 1);
        // The outstanding frontier proxy is *reachable* (node 1 references
        // node 2), so GC keeps it.
        let stats = world.site(s1).collect_garbage(false);
        assert_eq!(stats.proxies_reclaimed, 0);
        assert_eq!(world.site(s1).proxy_count(), 1);
    }

    #[test]
    fn payload_nodes_report_their_size() {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let node = world.site(s2).create(PayloadNode::sized(0, 1024));
        world.site(s2).export(node, "pn").unwrap();
        let remote = world.site(s1).lookup("pn").unwrap();
        let local = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        let len = world
            .site(s1)
            .invoke(local, "payload_len", ObiValue::Null)
            .unwrap();
        assert_eq!(len, ObiValue::I64(1024));
    }

    #[test]
    fn unknown_method_is_reported_with_object_identity() {
        let (world, _s1, s2, refs) = list_world(1);
        let err = world
            .site(s2)
            .invoke(refs[0], "no_such", ObiValue::Null)
            .unwrap_err();
        match err {
            ObiError::NoSuchMethod { object, method } => {
                assert_eq!(object, refs[0].id());
                assert_eq!(method, "no_such");
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn counters_accumulate_via_rmi_from_many_sites() {
        let mut world = ObiWorld::loopback();
        let server = world.add_site("server");
        let clients: Vec<SiteId> = (0..4).map(|i| world.add_site(&format!("c{i}"))).collect();
        let counter = world.site(server).create(Counter::new(0));
        world.site(server).export(counter, "hits").unwrap();
        for c in &clients {
            let remote = world.site(*c).lookup("hits").unwrap();
            for _ in 0..5 {
                world
                    .site(*c)
                    .invoke_rmi(&remote, "incr", ObiValue::Null)
                    .unwrap();
            }
        }
        let v = world
            .site(server)
            .invoke(counter, "read", ObiValue::Null)
            .unwrap();
        assert_eq!(v, ObiValue::I64(20));
        // Master version bumped once per mutation.
        assert_eq!(world.site(server).meta_of(counter).unwrap().version, 21);
    }

    #[test]
    fn get_from_own_site_is_identity() {
        let (world, _s1, s2, refs) = list_world(1);
        let remote = RemoteRef::new(refs[0].id(), s2);
        let r = world
            .site(s2)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        assert_eq!(r, refs[0]);
        assert!(world.site(s2).meta_of(r).unwrap().kind.is_master());
    }

    #[test]
    fn version_conflict_survives_round_trip_with_stock_policy() {
        // The default AcceptAll policy: last writer wins by arrival.
        let (world, s1, s2, refs) = list_world(1);
        let remote = world.site(s1).lookup("head").unwrap();
        let r1 = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        // Two writers diverge.
        world.site(s1).invoke(r1, "set_value", ObiValue::I64(10)).unwrap();
        world
            .site(s2)
            .invoke(refs[0], "set_value", ObiValue::I64(20))
            .unwrap();
        // S1's put overwrites the master's concurrent change.
        world.site(s1).put(r1).unwrap();
        let v = world.site(s2).invoke(refs[0], "value", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(10));
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::demo::PayloadNode;
    use crate::world::ObiWorld;

    fn payload_world(n: usize, size: usize) -> (ObiWorld, SiteId, SiteId, Vec<ObjRef>) {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let mut refs = Vec::new();
        let mut next = None;
        for i in (0..n).rev() {
            let mut node = PayloadNode::sized(i as i64, size);
            node.set_next(next);
            let r = world.site(s2).create(node);
            next = Some(r);
            refs.push(r);
        }
        refs.reverse();
        world.site(s2).export(refs[0], "list").unwrap();
        (world, s1, s2, refs)
    }

    fn walk(world: &ObiWorld, site: SiteId, mut cur: ObjRef) -> usize {
        let mut n = 0;
        loop {
            let out = world.site(site).invoke(cur, "touch", ObiValue::Null).unwrap();
            n += 1;
            match out.as_ref_id() {
                Some(id) => cur = id.into(),
                None => break,
            }
        }
        n
    }

    // -- prefetch (paper §2.1 footnote) -------------------------------------

    #[test]
    fn prefetch_eliminates_faults_entirely() {
        let (world, s1, _s2, refs) = payload_world(10, 32);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(2))
            .unwrap();
        // Prefetch the rest of the list during "think time".
        let fetched = world.site(s1).prefetch(root, 100).unwrap();
        assert_eq!(fetched, 8);
        let before = world.site(s1).metrics().snapshot();
        assert_eq!(walk(&world, s1, root), 10);
        let after = world.site(s1).metrics().snapshot().since(&before);
        assert_eq!(after.object_faults, 0, "prefetch must remove all faults");
        let _ = refs;
    }

    #[test]
    fn prefetch_respects_the_object_limit() {
        let (world, s1, _s2, refs) = payload_world(20, 32);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        let fetched = world.site(s1).prefetch(root, 5).unwrap();
        assert_eq!(fetched, 5);
        assert!(world.site(s1).is_replicated(refs[5]));
        assert!(!world.site(s1).is_replicated(refs[7]));
    }

    #[test]
    fn prefetch_on_fully_local_graph_is_a_noop() {
        let (world, s1, _s2, _refs) = payload_world(3, 32);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        assert_eq!(world.site(s1).prefetch(root, 100).unwrap(), 0);
    }

    #[test]
    fn prefetch_stops_cleanly_on_disconnection() {
        let (world, s1, _s2, _refs) = payload_world(10, 32);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world.disconnect(s1);
        assert!(world.site(s1).prefetch(root, 5).unwrap_err().is_connectivity());
        // Already-replicated prefix still usable.
        world.site(s1).invoke(root, "index", ObiValue::Null).unwrap();
    }

    // -- replica memory budget (paper §2.1, info-appliances) -----------------

    #[test]
    fn budget_caps_replica_bytes_during_a_long_walk() {
        let (world, s1, _s2, _refs) = payload_world(50, 1024);
        world.site(s1).set_replica_budget(Some(8 * 1024));
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(5))
            .unwrap();
        assert_eq!(walk(&world, s1, root), 50);
        // The device never held more than ~budget of replica state…
        assert!(
            world.site(s1).replica_bytes() <= 10 * 1024,
            "held {} bytes",
            world.site(s1).replica_bytes()
        );
        // …which required evicting most of the list.
        let m = world.site(s1).metrics().snapshot();
        assert!(m.replicas_evicted >= 40, "evicted {}", m.replicas_evicted);
        assert_eq!(m.replicas_created, 50);
    }

    #[test]
    fn evicted_replicas_fault_back_in_transparently() {
        let (world, s1, _s2, refs) = payload_world(10, 1024);
        world.site(s1).set_replica_budget(Some(3 * 1024));
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(2))
            .unwrap();
        walk(&world, s1, root);
        // The head was evicted long ago; using it again just re-faults.
        assert!(matches!(
            world.site(s1).resolution(refs[0]),
            Resolution::Proxy(_)
        ));
        let v = world.site(s1).invoke(refs[0], "index", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(0));
    }

    #[test]
    fn dirty_replicas_survive_eviction_pressure() {
        let (world, s1, _s2, refs) = payload_world(10, 1024);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        // Dirty the head, then squeeze hard while walking.
        world
            .site(s1)
            .invoke(root, "set_index", ObiValue::I64(-1))
            .unwrap();
        world.site(s1).set_replica_budget(Some(2 * 1024));
        walk(&world, s1, refs[1]);
        // The dirty head is still a live replica with its edit intact.
        let meta = world.site(s1).meta_of(root).unwrap();
        assert!(meta.dirty);
        let v = world.site(s1).invoke(root, "index", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(-1));
    }

    #[test]
    fn roots_survive_eviction_pressure() {
        let (world, s1, _s2, refs) = payload_world(10, 1024);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world.site(s1).add_root(root);
        world.site(s1).set_replica_budget(Some(2 * 1024));
        walk(&world, s1, refs[0]);
        assert!(world.site(s1).is_replicated(root));
    }

    #[test]
    fn disabling_the_budget_stops_eviction() {
        let (world, s1, _s2, _refs) = payload_world(20, 1024);
        world.site(s1).set_replica_budget(Some(1024));
        world.site(s1).set_replica_budget(None);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        walk(&world, s1, root);
        assert_eq!(world.site(s1).metrics().snapshot().replicas_evicted, 0);
        assert!(world.site(s1).replica_bytes() >= 20 * 1024);
    }

    #[test]
    fn eviction_prefers_least_recently_used() {
        let (world, s1, _s2, refs) = payload_world(4, 1024);
        let remote = world.site(s1).lookup("list").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        // Touch everything, then re-touch the head to make it hottest.
        walk(&world, s1, root);
        world.site(s1).invoke(root, "index", ObiValue::Null).unwrap();
        // Budget for roughly two nodes: cold middle nodes go first.
        world.site(s1).set_replica_budget(Some(2 * 1024 + 512));
        assert!(world.site(s1).is_replicated(refs[0]), "hot head kept");
        assert!(
            matches!(world.site(s1).resolution(refs[1]), Resolution::Proxy(_)),
            "cold node evicted"
        );
    }
}

#[cfg(test)]
mod cluster_refresh_tests {
    use super::*;
    use crate::demo::LinkedItem;
    use crate::world::ObiWorld;

    fn rig() -> (ObiWorld, SiteId, SiteId, Vec<ObjRef>) {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let mut refs = Vec::new();
        let mut next = None;
        for i in (0..4).rev() {
            let mut item = LinkedItem::new(i as i64, format!("n{i}"));
            item.set_next(next);
            let r = world.site(s2).create(item);
            next = Some(r);
            refs.push(r);
        }
        refs.reverse();
        world.site(s2).export(refs[0], "head").unwrap();
        (world, s1, s2, refs)
    }

    #[test]
    fn refresh_cluster_reloads_every_member() {
        let (world, s1, s2, refs) = rig();
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::cluster(4))
            .unwrap();
        let cluster = world.site(s1).meta_of(root).unwrap().cluster.unwrap();
        // Diverge every member locally; masters move too.
        for r in &refs {
            world
                .site(s1)
                .invoke(*r, "set_value", ObiValue::I64(-1))
                .unwrap();
            world
                .site(s2)
                .invoke(*r, "set_value", ObiValue::I64(100))
                .unwrap();
        }
        let (new_cluster, refreshed) = world.site(s1).refresh_cluster(cluster).unwrap();
        assert_eq!(refreshed, 4);
        assert_ne!(new_cluster, cluster, "refresh mints a new generation");
        for r in &refs {
            let v = world.site(s1).invoke(*r, "value", ObiValue::Null).unwrap();
            assert_eq!(v, ObiValue::I64(100));
            let meta = world.site(s1).meta_of(*r).unwrap();
            assert!(!meta.dirty);
            assert_eq!(meta.cluster, Some(new_cluster));
        }
        // The retired generation no longer resolves.
        assert!(world.site(s1).refresh_cluster(cluster).is_err());
        // The new one does.
        assert!(world.site(s1).refresh_cluster(new_cluster).is_ok());
    }

    #[test]
    fn refresh_unknown_cluster_is_rejected() {
        let (world, s1, _s2, _refs) = rig();
        let bogus = ClusterId::new(SiteId::new(2), 999);
        assert!(matches!(
            world.site(s1).refresh_cluster(bogus),
            Err(ObiError::BadArguments(_))
        ));
    }

    #[test]
    fn refresh_or_stale_degrades_and_recovers() {
        let (world, s1, _s2, _refs) = rig();
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        assert_eq!(
            world.site(s1).refresh_or_stale(root).unwrap(),
            Freshness::Fresh
        );
        // Mutate locally, then lose the master: degraded mode serves the
        // stale replica and preserves the dirty state.
        world
            .site(s1)
            .invoke(root, "set_value", ObiValue::I64(-5))
            .unwrap();
        world.disconnect(s1);
        assert_eq!(
            world.site(s1).refresh_or_stale(root).unwrap(),
            Freshness::Stale
        );
        assert_eq!(
            world.site(s1).invoke(root, "value", ObiValue::Null).unwrap(),
            ObiValue::I64(-5)
        );
        assert!(world.site(s1).meta_of(root).unwrap().dirty);
        // Heal: the dirty replica reintegrates and refresh is fresh again.
        world.reconnect(s1);
        world.site(s1).put(root).unwrap();
        assert_eq!(
            world.site(s1).refresh_or_stale(root).unwrap(),
            Freshness::Fresh
        );
    }

    #[test]
    fn refresh_cluster_fails_cleanly_when_disconnected() {
        let (world, s1, _s2, _refs) = rig();
        let remote = world.site(s1).lookup("head").unwrap();
        let root = world
            .site(s1)
            .get(&remote, ReplicationMode::cluster(2))
            .unwrap();
        let cluster = world.site(s1).meta_of(root).unwrap().cluster.unwrap();
        world.disconnect(s1);
        assert!(world
            .site(s1)
            .refresh_cluster(cluster)
            .unwrap_err()
            .is_connectivity());
    }
}

#[cfg(test)]
mod membership_tests {
    use super::*;
    use crate::demo::{Counter, LinkedItem};
    use crate::world::ObiWorld;

    /// Builds a world with two sites and a list of `n` LinkedItems exported
    /// from the second site under "head". Returns (world, s1, s2, node refs).
    fn list_world(n: usize) -> (ObiWorld, SiteId, SiteId, Vec<ObjRef>) {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let mut refs: Vec<ObjRef> = Vec::new();
        let mut next: Option<ObjRef> = None;
        for i in (0..n).rev() {
            let mut item = LinkedItem::new(i as i64, format!("n{i}"));
            item.set_next(next);
            let r = world.site(s2).create(item);
            next = Some(r);
            refs.push(r);
        }
        refs.reverse();
        world.site(s2).export(refs[0], "head").unwrap();
        (world, s1, s2, refs)
    }

    #[test]
    fn parked_chunk_does_not_resurrect_evicted_replicas() {
        // Park a tail chunk exactly as the streaming test does...
        let (world, s1, _s2, refs) = list_world(30);
        let remote = world.site(s1).lookup("head").unwrap();
        world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(20))
            .unwrap();
        world
            .site(s1)
            .invoke(refs[20], "touch", ObiValue::Null)
            .unwrap();
        assert!(!world.site(s1).is_replicated(refs[28]));
        // ...then evict every replica (nothing is rooted) while the chunk
        // is still parked. Its stream root refs[20] is gone now.
        let stats = world.site(s1).collect_garbage(true);
        assert!(stats.replicas_reclaimed > 0, "{stats:?}");
        assert!(!world.site(s1).is_replicated(refs[20]));
        // The pump must drop the stale chunk, not materialize its objects
        // into a space that just reclaimed their stream.
        assert_eq!(world.site(s1).pump_pending_chunks(), 0);
        for r in &refs[20..] {
            assert!(!world.site(s1).is_replicated(*r), "{r:?} resurrected");
        }
        assert_eq!(world.site(s1).metrics().snapshot().stale_chunks_dropped, 1);
    }

    #[test]
    fn handoff_migrates_mastership_without_quiescing() {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("client");
        let s2 = world.add_site("old-master");
        let s3 = world.add_site("successor");
        let root = world.site(s2).create(Counter::new(10));
        world.site(s2).export(root, "ctr").unwrap();
        // A client replicates and writes back once pre-handoff.
        let remote = world.site(s1).lookup("ctr").unwrap();
        let replica = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        world.site(s1).invoke(replica, "incr", ObiValue::Null).unwrap();
        let v1 = world.site(s1).put(replica).unwrap();
        // Mastership moves to s3 while everyone keeps their references.
        let v2 = world.site(s2).handoff(root, s3).unwrap();
        assert_eq!(v2, v1, "handoff preserves the master version");
        let demoted = world.site(s2).meta_of(root).unwrap();
        assert_eq!(demoted.kind, ReplicaKind::Replica { provider: s3 });
        assert!(!demoted.dirty);
        let promoted = world.site(s3).meta_of(root).unwrap();
        assert!(promoted.kind.is_master());
        assert_eq!(promoted.version, v1);
        assert_eq!(world.site(s2).metrics().snapshot().handoffs_completed, 1);
        // The client still points at s2; its next put is redirected to s3
        // and applies exactly once there.
        world.site(s1).invoke(replica, "incr", ObiValue::Null).unwrap();
        let v3 = world.site(s1).put(replica).unwrap();
        assert_eq!(v3, v1 + 1);
        assert_eq!(
            world.site(s1).meta_of(replica).unwrap().kind,
            ReplicaKind::Replica { provider: s3 }
        );
        assert_eq!(world.site(s1).metrics().snapshot().moved_master_redirects, 1);
        assert_eq!(
            world.site(s3).invoke(root, "read", ObiValue::Null).unwrap(),
            ObiValue::I64(12)
        );
        // s2's own next write goes through the ordinary replica put path.
        // Its demoted replica still holds the handoff-time value (11): the
        // write-back carries 16 and last-writer-wins at the new master.
        world.site(s2).invoke(root, "add", ObiValue::I64(5)).unwrap();
        world.site(s2).put(root).unwrap();
        assert_eq!(
            world.site(s3).invoke(root, "read", ObiValue::Null).unwrap(),
            ObiValue::I64(16)
        );
    }

    #[test]
    fn handoff_retry_to_same_successor_is_idempotent() {
        let mut world = ObiWorld::loopback();
        let s2 = world.add_site("old-master");
        let s3 = world.add_site("successor");
        let root = world.site(s2).create(Counter::new(3));
        world.site(s2).export(root, "ctr").unwrap();
        let v = world.site(s2).handoff(root, s3).unwrap();
        // A predecessor that missed the ack re-sends from its demoted
        // replicas; the successor's version guard makes it a no-op.
        let again = world.site(s2).handoff(root, s3).unwrap();
        assert_eq!(again, v);
        assert!(world.site(s3).meta_of(root).unwrap().kind.is_master());
        assert_eq!(
            world.site(s3).invoke(root, "read", ObiValue::Null).unwrap(),
            ObiValue::I64(3)
        );
        // A handoff toward a *different* site than the recorded successor
        // is refused with the redirect, not silently re-homed.
        let s4 = world.add_site("other");
        assert!(matches!(
            world.site(s2).handoff(root, s4),
            Err(ObiError::MovedMaster { to, .. }) if to == s3
        ));
        assert_eq!(world.site(s2).metrics().snapshot().handoffs_completed, 2);
    }

    #[test]
    fn handoff_carries_the_locally_mastered_closure() {
        // head -> node2 (both mastered at s2): the whole graph migrates and
        // the successor serves faults on it.
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("client");
        let s2 = world.add_site("old-master");
        let s3 = world.add_site("successor");
        let tail = world.site(s2).create(LinkedItem::new(2, "tail"));
        let head = world
            .site(s2)
            .create(LinkedItem::with_next(1, "head", tail));
        world.site(s2).export(head, "head").unwrap();
        world.site(s2).handoff(head, s3).unwrap();
        assert!(world.site(s3).meta_of(head).unwrap().kind.is_master());
        assert!(world.site(s3).meta_of(tail).unwrap().kind.is_master());
        // A fresh client walks the list entirely out of the successor.
        let remote = world.site(s1).lookup("head").unwrap();
        let replica = world
            .site(s1)
            .get(&remote, ReplicationMode::transitive())
            .unwrap();
        assert_eq!(
            world
                .site(s1)
                .invoke(replica, "sum_rest", ObiValue::Null)
                .unwrap(),
            ObiValue::I64(3)
        );
    }

    #[test]
    fn graceful_leave_retires_peer_state_everywhere() {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("stayer");
        let s2 = world.add_site("leaver");
        world.site(s1).join().unwrap();
        world.site(s2).join().unwrap();
        assert!(world.site(s1).ping(s2).is_ok());
        world.site(s2).leave(&[s1]);
        // The peer retired the leaver's breaker slot...
        assert_eq!(world.site(s1).metrics().snapshot().peers_retired, 1);
        // ...and the name server dropped it from the roster: a later
        // joiner no longer sees it.
        let s3 = world.add_site("late");
        let info = world.site(s3).join().unwrap();
        assert_eq!(info.peers, vec![s1]);
    }

    #[test]
    fn joiner_bootstraps_from_a_live_world() {
        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        world.site(s1).join().unwrap();
        let ctr = world.site(s1).create(Counter::new(7));
        world.site(s1).export(ctr, "hits").unwrap();
        // A site joins mid-run: the ack carries the roster and catalog,
        // and replication proceeds through the ordinary demand pipeline.
        let s2 = world.add_site("joiner");
        let info = world.site(s2).join().unwrap();
        assert_eq!(info.peers, vec![s1]);
        assert_eq!(info.names.len(), 1);
        let (name, id) = &info.names[0];
        assert_eq!(name, "hits");
        assert_eq!(*id, ctr.id());
        let remote = world.site(s2).lookup("hits").unwrap();
        let replica = world
            .site(s2)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        assert_eq!(
            world.site(s2).invoke(replica, "read", ObiValue::Null).unwrap(),
            ObiValue::I64(7)
        );
    }
}

//! # Paper-to-code map
//!
//! A reading companion: every mechanism, interface and term in the paper,
//! and where it lives in this codebase. No code here — only the map.
//!
//! ## §2 Architecture (Figure 1)
//!
//! | Paper | Here |
//! |---|---|
//! | site S1 / S2, "processes run; objects exist inside processes" | [`ObiProcess`](crate::ObiProcess), one per [`SiteId`](obiwan_util::SiteId) |
//! | object `A`, `B`, `C` written by the programmer | any [`ObiObject`](crate::ObiObject), usually via [`obi_class!`](crate::obi_class) (see [`demo`](crate::demo)) |
//! | replica `A'`, `B'`, `C'` | a live slot with [`ReplicaKind::Replica`](crate::ReplicaKind) metadata |
//! | `AProxyIn` "registered in a name server" | [`ObiProcess::export`] + the world's [`NameServer`](obiwan_rmi::NameServer) |
//! | remote reference to `AProxyIn` | [`RemoteRef`](obiwan_rmi::RemoteRef), from [`ObiProcess::lookup`] |
//! | `BProxyOut` standing in for `B` | a [`ProxyOut`](crate::proxy::ProxyOut) slot in the [`ObjectSpace`](crate::ObjectSpace) |
//! | stubs and skeletons "created by the underlying virtual machine" | [`RmiClient`](obiwan_rmi::RmiClient) / [`RmiServer`](obiwan_rmi::RmiServer) over a [`Transport`](obiwan_net::Transport) |
//!
//! ## §2 Interfaces (Figure 1 sidebar, Figure 3)
//!
//! | Paper interface | Here |
//! |---|---|
//! | `IProvide::get(mode)` | [`ObiProcess::get`] with a [`ReplicationMode`](crate::ReplicationMode) |
//! | `IProvide::put(Object)` | [`ObiProcess::put`] / [`ObiProcess::put_cluster`] |
//! | `IProvideRemote` (remote-capable `IProvide`) | the `GetRequest`/`PutRequest` wire messages ([`obiwan_wire::Message`]) |
//! | `IDemand::setProvider` | the `provider` field of [`ProxyOut`](crate::proxy::ProxyOut) and replica metadata |
//! | `IDemand::setDemander` | implicit: handles resolve through the space, so the demander needs no back-pointer |
//! | `IDemandee::demand()` | the fault path inside [`ObiProcess::invoke`] (see `resolve_fault`) |
//! | `IfA`/`IfB`/`IfC` business interfaces | the method set declared in an [`obi_class!`](crate::obi_class) block |
//! | `updateMember(replica, member)` swizzle | slot replacement in the [`ObjectSpace`](crate::ObjectSpace): the same [`ObjRef`](crate::ObjRef) now resolves to the replica |
//!
//! ## §2.1 / §2.2 Mechanisms
//!
//! | Paper | Here |
//! |---|---|
//! | run-time choice of RMI vs LMI | [`ObiProcess::invoke_rmi`] vs [`ObiProcess::invoke`]; packaged as a policy in [`AdaptiveInvoker`](../obiwan_mobility/adaptive/struct.AdaptiveInvoker.html) |
//! | object fault detection and resolution | `Resolution::Proxy` → demand → materialize → swizzle, inside [`ObiProcess::invoke`] |
//! | "further invocations … normal direct invocations" | post-swizzle handles resolve straight to the replica slot |
//! | proxy-out reclaimed by the garbage collector | [`ObiProcess::collect_garbage`] (mark-and-sweep over the handle graph) |
//! | incremental vs transitive-closure trade-off | [`ReplicationMode::Incremental`](crate::ReplicationMode) vs [`ReplicationMode::TransitiveClosure`](crate::ReplicationMode) |
//! | background pre-fetching footnote | [`ObiProcess::prefetch`] |
//! | info-appliances with limited memory | [`ObiProcess::set_replica_budget`] (LRU eviction back to proxy-outs) |
//! | consistency "left to the programmer", hook libraries | [`ConsistencyHook`](crate::ConsistencyHook) + the `obiwan-consistency` crate |
//!
//! ## §3 Implementation
//!
//! | Paper | Here |
//! |---|---|
//! | `obicomp` source augmentation | the [`obi_class!`](crate::obi_class) macro |
//! | Java reflection for proxy generation | compile-time macro expansion (Rust has no reflection) |
//! | porting legacy / RMI applications (§3.2) | `examples/porting_legacy.rs` |
//! | Java serialization | the `obiwan-wire` value model and codec |
//!
//! ## §4 Evaluation
//!
//! | Paper artifact | Here |
//! |---|---|
//! | LMI = 2 µs, RMI = 2.8 ms (§4.1) | `figures -- e1`; calibrated in [`CostModel::paper_testbed`](obiwan_util::CostModel::paper_testbed) |
//! | Figure 4 | `figures -- fig4` |
//! | Figure 5 | `figures -- fig5` |
//! | Figure 6 | `figures -- fig6` |
//! | the §4 bullet conclusions | `figures -- verify` (13 programmatic checks) |
//!
//! [`ObiProcess::export`]: crate::ObiProcess::export
//! [`ObiProcess::lookup`]: crate::ObiProcess::lookup
//! [`ObiProcess::get`]: crate::ObiProcess::get
//! [`ObiProcess::put`]: crate::ObiProcess::put
//! [`ObiProcess::put_cluster`]: crate::ObiProcess::put_cluster
//! [`ObiProcess::invoke`]: crate::ObiProcess::invoke
//! [`ObiProcess::invoke_rmi`]: crate::ObiProcess::invoke_rmi
//! [`ObiProcess::collect_garbage`]: crate::ObiProcess::collect_garbage
//! [`ObiProcess::prefetch`]: crate::ObiProcess::prefetch
//! [`ObiProcess::set_replica_budget`]: crate::ObiProcess::set_replica_budget

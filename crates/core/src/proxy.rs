//! Proxy-out / proxy-in pairs (paper §2).
//!
//! * A **proxy-out** stands in, on the *requesting* site, for an object that
//!   is not yet locally replicated. Invoking through it raises an object
//!   fault, resolved by demanding the next batch from its provider.
//! * A **proxy-in** is the *providing* site's per-object entry answering
//!   `get`/`put` and tracking consistency subscribers.
//!
//! After a fault resolves, the proxy-out's slot is overwritten by the real
//! replica — the handle-based analogue of the paper's `updateMember`
//! swizzle, after which "further invocations … will be normal direct
//! invocations with no indirection at all", and the proxy-out "is no longer
//! reachable … and will be reclaimed by the garbage collector"
//! (see [`crate::space::ObjectSpace::collect_garbage`]).

use obiwan_util::{ClusterId, ObjId, SiteId};
use obiwan_wire::WireMode;

/// Client-side stand-in for a not-yet-replicated object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyOut {
    /// The object this proxy stands in for.
    pub target: ObjId,
    /// Its class (known from the frontier descriptor).
    pub class: String,
    /// The site whose proxy-in serves faults for this object.
    pub provider: SiteId,
    /// Replication mode to demand with when a fault fires (inherited from
    /// the `get` that created this proxy).
    pub mode: WireMode,
    /// Set when this proxy is the shared proxy of a cluster frontier
    /// (§4.3): all frontier edges of a cluster batch share one pair.
    pub cluster: Option<ClusterId>,
}

impl ProxyOut {
    /// Creates a per-object proxy (incremental mode).
    pub fn new(target: ObjId, class: impl Into<String>, provider: SiteId, mode: WireMode) -> Self {
        ProxyOut {
            target,
            class: class.into(),
            provider,
            mode,
            cluster: None,
        }
    }

    /// Marks this proxy as part of a shared cluster pair.
    pub fn in_cluster(mut self, cluster: ClusterId) -> Self {
        self.cluster = Some(cluster);
        self
    }
}

/// One consistency subscriber of an exported object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscriber {
    /// The replica-holding site.
    pub site: SiteId,
    /// `true` = push full updates; `false` = send invalidations only.
    pub push: bool,
}

/// Server-side proxy-in bookkeeping for one provided object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProxyIn {
    subscribers: Vec<Subscriber>,
}

impl ProxyIn {
    /// Creates an entry with no subscribers.
    pub fn new() -> Self {
        ProxyIn::default()
    }

    /// Adds or updates a subscriber (idempotent per site; the latest `push`
    /// flag wins).
    pub fn subscribe(&mut self, site: SiteId, push: bool) {
        match self.subscribers.iter_mut().find(|s| s.site == site) {
            Some(existing) => existing.push = push,
            None => self.subscribers.push(Subscriber { site, push }),
        }
    }

    /// Removes a site's subscription.
    pub fn unsubscribe(&mut self, site: SiteId) {
        self.subscribers.retain(|s| s.site != site);
    }

    /// Current subscribers.
    pub fn subscribers(&self) -> &[Subscriber] {
        &self.subscribers
    }

    /// Subscribers other than `exclude` (the site that caused the change
    /// already has the newest state).
    pub fn subscribers_except(&self, exclude: SiteId) -> impl Iterator<Item = Subscriber> + '_ {
        self.subscribers
            .iter()
            .copied()
            .filter(move |s| s.site != exclude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> SiteId {
        SiteId::new(n)
    }

    #[test]
    fn proxy_out_builders() {
        let p = ProxyOut::new(
            ObjId::new(s(2), 1),
            "Item",
            s(2),
            WireMode::Incremental { batch: 5 },
        );
        assert_eq!(p.cluster, None);
        let c = ClusterId::new(s(2), 1);
        let p = p.in_cluster(c);
        assert_eq!(p.cluster, Some(c));
    }

    #[test]
    fn subscribe_is_idempotent_per_site() {
        let mut pin = ProxyIn::new();
        pin.subscribe(s(1), false);
        pin.subscribe(s(1), true);
        pin.subscribe(s(3), false);
        assert_eq!(pin.subscribers().len(), 2);
        assert!(pin.subscribers()[0].push);
    }

    #[test]
    fn unsubscribe_removes_only_that_site() {
        let mut pin = ProxyIn::new();
        pin.subscribe(s(1), false);
        pin.subscribe(s(2), true);
        pin.unsubscribe(s(1));
        assert_eq!(pin.subscribers(), &[Subscriber { site: s(2), push: true }]);
    }

    #[test]
    fn subscribers_except_filters_originator() {
        let mut pin = ProxyIn::new();
        pin.subscribe(s(1), false);
        pin.subscribe(s(2), true);
        let rest: Vec<_> = pin.subscribers_except(s(1)).collect();
        assert_eq!(rest, vec![Subscriber { site: s(2), push: true }]);
    }
}

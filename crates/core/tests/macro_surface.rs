//! Exhaustive surface tests of the `obi_class!` macro — our `obicomp`.
//!
//! Covers the full grammar: every supported field type, classes with only
//! read methods, only mutating methods, or neither; doc attributes on the
//! class, fields and methods; generated constructors, registry hooks and
//! dispatch behaviour (including automatic `mark_modified`).

use bytes::Bytes;
use obiwan_core::demo::Counter;
use obiwan_core::{
    obi_class, ClassRegistry, DecodableObject, ObiObject, ObiValue, ObiWorld, ObjRef,
    ReplicationMode,
};

obi_class! {
    /// A class exercising every supported field type.
    pub class Kitchen {
        fields {
            /// Doc comments on fields are allowed.
            flag: bool,
            count: i64,
            size: u64,
            ratio: f64,
            name: String,
            blob: Bytes,
            edge: ObjRef,
            maybe_edge: Option<ObjRef>,
            edges: Vec<ObjRef>,
            numbers: Vec<i64>,
            names: Vec<String>,
            nested: Option<Vec<ObjRef>>,
            raw: ObiValue,
        }
        methods {
            /// Doc comments on methods are allowed too.
            fn describe(this, _ctx, _args) {
                Ok(ObiValue::Str(format!("{}:{}", this.name, this.count)))
            }
        }
        mutating {
            fn rename(this, _ctx, args) {
                this.name = args.as_str().unwrap_or("?").to_owned();
                Ok(ObiValue::Null)
            }
        }
    }
}

obi_class! {
    /// Fields only: a pure data carrier.
    pub class Inert {
        fields {
            x: i64,
        }
    }
}

obi_class! {
    /// Only mutating methods.
    pub class WriteOnly {
        fields {
            x: i64,
        }
        mutating {
            fn bump(this, _ctx, _args) {
                this.x += 1;
                Ok(ObiValue::I64(this.x))
            }
        }
    }
}

fn sample_kitchen() -> Kitchen {
    use obiwan_util::{ObjId, SiteId};
    let r = |l: u64| ObjRef::new(ObjId::new(SiteId::new(9), l));
    Kitchen {
        flag: true,
        count: -5,
        size: 7,
        ratio: 1.25,
        name: "k".into(),
        blob: Bytes::from_static(b"\x01\x02"),
        edge: r(1),
        maybe_edge: Some(r(2)),
        edges: vec![r(3), r(4)],
        numbers: vec![1, 2, 3],
        names: vec!["a".into()],
        nested: Some(vec![r(5)]),
        raw: ObiValue::Map(vec![("inner".into(), ObiValue::Ref(r(6).id()))]),
    }
}

#[test]
fn every_field_type_roundtrips_through_state() {
    let k = sample_kitchen();
    let state = k.state();
    let back = Kitchen::decode_state(&state).unwrap();
    assert_eq!(back, k);
}

#[test]
fn refs_cover_every_edge_bearing_field() {
    let k = sample_kitchen();
    let refs = k.refs();
    // edge, maybe_edge, edges×2, nested×1, raw×1 = 6 edges.
    assert_eq!(refs.len(), 6);
}

#[test]
fn registry_decode_through_generated_hook() {
    let reg = ClassRegistry::new();
    Kitchen::register(&reg);
    assert!(reg.knows(Kitchen::CLASS));
    assert_eq!(Kitchen::CLASS, "Kitchen");
    let k = sample_kitchen();
    let decoded = reg.decode("Kitchen", &k.state()).unwrap();
    assert_eq!(decoded.state(), k.state());
}

#[test]
fn decode_rejects_missing_and_mistyped_fields() {
    let k = sample_kitchen();
    // Drop one field.
    let ObiValue::Map(mut entries) = k.state() else {
        panic!()
    };
    entries.retain(|(name, _)| name != "count");
    assert!(Kitchen::decode_state(&ObiValue::Map(entries.clone())).is_err());
    // Mistype one field.
    for (name, v) in &mut entries {
        if name == "flag" {
            *v = ObiValue::Str("true".into());
        }
    }
    entries.push(("count".into(), ObiValue::I64(0)));
    assert!(Kitchen::decode_state(&ObiValue::Map(entries)).is_err());
}

#[test]
fn from_fields_constructor_follows_declaration_order() {
    let inert = Inert::from_fields(42);
    assert_eq!(inert.x, 42);
    assert_eq!(inert.class_name(), "Inert");
    assert!(inert.refs().is_empty());
}

#[test]
fn fieldless_method_class_rejects_all_methods() {
    let mut world = ObiWorld::loopback();
    let s = world.add_site("S");
    Inert::register(world.registry());
    let r = world.site(s).create(Inert::from_fields(1));
    let err = world.site(s).invoke(r, "anything", ObiValue::Null).unwrap_err();
    assert!(matches!(err, obiwan_core::ObiError::NoSuchMethod { .. }));
}

#[test]
fn mutating_methods_mark_modified_automatically() {
    let mut world = ObiWorld::loopback();
    let s1 = world.add_site("S1");
    let s2 = world.add_site("S2");
    WriteOnly::register(world.registry());
    let master = world.site(s2).create(WriteOnly::from_fields(0));
    world.site(s2).export(master, "w").unwrap();
    let remote = world.site(s1).lookup("w").unwrap();
    let replica = world
        .site(s1)
        .get(&remote, ReplicationMode::incremental(1))
        .unwrap();
    assert!(!world.site(s1).meta_of(replica).unwrap().dirty);
    world.site(s1).invoke(replica, "bump", ObiValue::Null).unwrap();
    assert!(world.site(s1).meta_of(replica).unwrap().dirty);
    // Master version bumps per mutation, too.
    world.site(s2).invoke(master, "bump", ObiValue::Null).unwrap();
    assert_eq!(world.site(s2).meta_of(master).unwrap().version, 2);
}

#[test]
fn read_methods_do_not_dirty() {
    let mut world = ObiWorld::loopback();
    let s1 = world.add_site("S1");
    let s2 = world.add_site("S2");
    Kitchen::register(world.registry());
    let master = world.site(s2).create(sample_kitchen());
    world.site(s2).export(master, "k").unwrap();
    let remote = world.site(s1).lookup("k").unwrap();
    let replica = world
        .site(s1)
        .get(&remote, ReplicationMode::incremental(1))
        .unwrap();
    world
        .site(s1)
        .invoke(replica, "describe", ObiValue::Null)
        .unwrap();
    assert!(!world.site(s1).meta_of(replica).unwrap().dirty);
    world
        .site(s1)
        .invoke(replica, "rename", ObiValue::from("renamed"))
        .unwrap();
    assert!(world.site(s1).meta_of(replica).unwrap().dirty);
}

#[test]
fn generated_classes_coexist_with_demo_classes_in_one_registry() {
    let reg = ClassRegistry::new();
    obiwan_core::demo::register_all(&reg);
    Kitchen::register(&reg);
    Inert::register(&reg);
    WriteOnly::register(&reg);
    assert_eq!(reg.len(), 8);
    // And a demo class still works.
    let c = Counter::new(2);
    assert_eq!(reg.decode("Counter", &c.state()).unwrap().state(), c.state());
}

#[test]
fn payload_size_reflects_state() {
    let small = Inert::from_fields(1);
    let big = sample_kitchen();
    assert!(big.payload_size() > small.payload_size());
}

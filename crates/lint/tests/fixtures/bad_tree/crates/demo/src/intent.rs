//! Seeded `wal-intent-lifecycle` violations: one intent is dropped on the
//! floor before the tail exit, another before an early `return`. Neither
//! path confirms, abandons, nor hands the pending seq upward.

pub fn put_forgets_retirement(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    apply_locally(id, state);
    let _ = seq;
    Status::Done
}

pub fn put_early_return_skips_confirm(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    if throttled() {
        return Status::Busy;
    }
    d.log_confirm(seq);
    Status::Done
}

//! Seeded interprocedural lock-order inversion: `flush` holds `meta` while
//! its callee acquires `data`, and `reindex` holds `data` while its callee
//! acquires `meta` — the AB/BA pair `lock-order-cycle` must flag. Neither
//! function acquires both locks directly; the cycle only exists through the
//! call graph.

impl Registry {
    pub fn flush(&self) {
        let meta = self.meta.lock();
        self.touch_data();
        meta.mark_flushed();
    }

    fn touch_data(&self) {
        self.data.lock().clear();
    }

    pub fn reindex(&self) {
        let data = self.data.lock();
        self.touch_meta();
        data.rebuild();
    }

    fn touch_meta(&self) {
        self.meta.lock().bump_epoch();
    }
}

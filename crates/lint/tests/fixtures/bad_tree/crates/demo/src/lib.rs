//! Deliberately violating fixture: `obiwan-lint` must exit nonzero on this
//! tree and point at the lines below. Not a compiled workspace member — the
//! analyzer scans text, so stub types are unnecessary.

pub fn guard_across_boundary(s: &Service) {
    let guard = s.state.lock();
    s.transport.call(1, 2, guard.frame());
}

pub fn unwrap_on_lock(s: &Service) -> u32 {
    *s.state.lock().unwrap()
}

pub fn unwrap_on_decode(frame: &[u8]) -> Message {
    Message::decode(frame).expect("fixture decodes")
}

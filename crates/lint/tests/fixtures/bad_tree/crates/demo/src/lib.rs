//! Deliberately violating fixture: `obiwan-lint` must exit nonzero on this
//! tree and point at the lines below. Not a compiled workspace member — the
//! analyzer scans text, so stub types are unnecessary.

pub fn guard_across_boundary(s: &Service) {
    let guard = s.state.lock();
    s.transport.call(1, 2, guard.frame());
}

pub fn unwrap_on_lock(s: &Service) -> u32 {
    *s.state.lock().unwrap()
}

pub fn unwrap_on_decode(frame: &[u8]) -> Message {
    Message::decode(frame).expect("fixture decodes")
}

pub fn two_shard_guards(s: &Space, a: ObjId, b: ObjId) {
    let src = s.shard(a).write();
    let dst = s.shard(b).write();
    dst.put(src.take());
}

pub fn shard_pair_in_one_statement(s: &Space, a: ObjId, b: ObjId) {
    s.merge(s.shard(a).write(), s.shard(b).write());
}

pub fn wal_append_under_shard_guard(s: &Space, a: ObjId) {
    let g = s.shard(a).write();
    s.wal.append(&g.frame());
}

pub fn log_in_same_statement_as_shard_acquire(s: &Space, d: &Durable, a: ObjId) {
    d.log_dirty(a, s.shard(a).read().state());
}

pub fn bare_allow_without_reason(s: &Service) {
    let guard = s.state.lock();
    // lint:allow(guard-across-transport)
    s.transport.call(1, 2, guard.frame());
}

//! Consistent-order counterpart of the bad tree's seeded inversion: every
//! path acquires `meta` before `data`, so the static lock-order graph has
//! edges in one direction only and `lock-order-cycle` stays quiet.

impl Registry {
    pub fn flush(&self) {
        let meta = self.meta.lock();
        self.touch_data();
        meta.mark_flushed();
    }

    fn touch_data(&self) {
        self.data.lock().clear();
    }

    pub fn reindex(&self) {
        let meta = self.meta.lock();
        self.touch_data();
        meta.bump_epoch();
    }
}

//! Clean fixture: `obiwan-lint` must exit 0 on this tree.

pub fn narrow_critical_section(s: &Service) {
    let frame = {
        let guard = s.state.lock();
        guard.frame()
    };
    s.transport.call(1, 2, frame);
}

pub fn allowed_hold(s: &Service) {
    let guard = s.state.lock();
    // lint:allow(guard-across-transport) fixture: documented deliberate hold
    s.transport.call(1, 2, guard.frame());
}

pub fn sanctioned_shard_pair(s: &Space, a: ObjId, b: ObjId) {
    let (src, dst) = lock_pair(s.shard(a), s.shard(b));
    dst.put(src.take());
}

pub fn one_shard_at_a_time(s: &Space, a: ObjId, b: ObjId) {
    let moved = {
        let g = s.shard(a).write();
        g.take()
    };
    s.shard(b).write().put(moved);
}

pub fn log_outside_the_shard_guard(s: &Space, d: &Durable, a: ObjId) {
    let state = {
        let g = s.shard(a).read();
        g.state()
    };
    d.log_dirty(a, state);
    d.commit();
}

pub fn vec_append_under_shard_guard(s: &Space, a: ObjId, out: &mut Vec<ObjId>) {
    let g = s.shard(a).write();
    let mut batch = g.touched_ids();
    out.append(&mut batch);
}

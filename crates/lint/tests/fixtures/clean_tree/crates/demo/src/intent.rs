//! Compliant `wal-intent-lifecycle` shapes: confirm on the happy path,
//! abandon on failure, `Err`-shaped early exits (recovery replays or
//! abandons a pending intent with full knowledge), and handing the pending
//! put upward so the caller inherits the retirement obligation.

pub fn put_confirms(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    apply_locally(id, state);
    d.log_confirm(seq);
    Status::Done
}

pub fn put_abandons_on_failure(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    if !apply_checked(id, state) {
        d.log_put_abandoned(seq);
        return Status::Failed;
    }
    d.log_confirm(seq);
    Status::Done
}

pub fn put_propagates_errors(d: &Durable, id: ObjId, state: Frame) -> Result<Status, WalError> {
    let seq = d.log_put_intent(id, state.frame_bytes())?;
    if state.oversized() {
        return Err(WalError::Oversized);
    }
    d.log_confirm(seq);
    Ok(Status::Done)
}

pub fn put_hands_off(d: &Durable, id: ObjId, state: Frame) -> PendingPut {
    let seq = d.log_put_intent(id, state.frame_bytes());
    PendingPut { id, seq }
}

//! End-to-end tests of the `obiwan-lint` binary against fixture trees,
//! covering the exit-code contract: nonzero with `file:line` diagnostics on
//! a violating tree, zero on a clean one.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run_lint(tree: &Path) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_obiwan-lint"))
        .arg(tree)
        .output()
        .expect("spawn obiwan-lint");
    (out.status.success(), String::from_utf8_lossy(&out.stdout).into_owned())
}

#[test]
fn bad_tree_fails_with_file_line_diagnostics() {
    let (ok, stdout) = run_lint(&fixture("bad_tree"));
    assert!(!ok, "bad tree must fail; output:\n{stdout}");
    // file:line prefix for the guard-across-transport seeded violation.
    assert!(
        stdout.contains("crates/demo/src/lib.rs:7: [guard-across-transport]"),
        "missing guard diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:11: [no-unwrap-on-lock-or-decode]"),
        "missing lock-unwrap diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:15: [no-unwrap-on-lock-or-decode]"),
        "missing decode-expect diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:20: [single-shard-guard]"),
        "missing second-shard-guard diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:25: [single-shard-guard]"),
        "missing same-statement shard-pair diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:30: [no-io-under-shard-guard]"),
        "missing wal-under-guard diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:34: [no-io-under-shard-guard]"),
        "missing same-statement io diagnostic in:\n{stdout}"
    );
    // The bare allow suppresses its guard-across-transport finding but is
    // itself flagged by the audit rule.
    assert!(
        stdout.contains("crates/demo/src/lib.rs:39: [allow-without-rationale]"),
        "missing allow-audit diagnostic in:\n{stdout}"
    );
    assert!(
        !stdout.contains("crates/demo/src/lib.rs:40:"),
        "the bare allow must still suppress its target finding in:\n{stdout}"
    );
    // Interprocedural seeds: the AB/BA inversion only exists through the
    // call graph, and both unretired-intent shapes anchor at the intent.
    assert!(
        stdout.contains("crates/demo/src/locks.rs:9: [lock-order-cycle]"),
        "missing lock-order-cycle diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/intent.rs:6: [wal-intent-lifecycle]"),
        "missing tail-exit intent diagnostic in:\n{stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/intent.rs:13: [wal-intent-lifecycle]"),
        "missing early-return intent diagnostic in:\n{stdout}"
    );
    assert!(stdout.contains("11 violation(s)"), "count in:\n{stdout}");
}

#[test]
fn clean_tree_passes() {
    let (ok, stdout) = run_lint(&fixture("clean_tree"));
    assert!(ok, "clean tree must pass; output:\n{stdout}");
    assert!(stdout.contains("obiwan-lint: clean"));
}

#[test]
fn the_workspace_itself_is_clean() {
    // The analyzer's own acceptance bar: the tree this test runs in has no
    // violations. (Equivalent to `cargo run -p obiwan-lint` in CI.)
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let (ok, stdout) = run_lint(root);
    assert!(ok, "workspace has lint violations:\n{stdout}");
}

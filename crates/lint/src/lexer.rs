//! A hand-rolled Rust lexer — the single place where strings, raw strings,
//! char literals, comments and nested block comments are understood.
//!
//! Everything above this layer (the line rules, the item model, the lock
//! graph) consumes [`Token`]s or the [`masked_lines`] projection; nothing
//! else in the crate ever re-derives "is this byte inside a string?".
//!
//! Guarantees (property-tested in `src/proptests.rs`):
//!
//! * [`lex`] never panics, for any input;
//! * token spans are adjacent and exhaustive: concatenating
//!   `&src[t.start..t.end]` over all tokens reproduces the input byte-for-
//!   byte;
//! * every span lies on `char` boundaries.
//!
//! The lexer is deliberately *lossless and forgiving*: unterminated strings
//! or comments extend to end of input instead of erroring, because the
//! analyzer must degrade gracefully on mid-edit source.

/// Token classification. Everything the rules care about is either a
/// comment (for `lint:allow`), a literal (to be masked), or code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Spaces, tabs, newlines, carriage returns.
    Whitespace,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting handled; unterminated runs to end of input.
    BlockComment,
    /// `"…"` with escapes; may span lines; unterminated runs to EOI.
    Str,
    /// `r"…"`, `r#"…"#`, … (any hash depth); `b`-prefixed too.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F4A9}'`.
    Char,
    /// `'ident` (no closing quote): a lifetime or loop label.
    Lifetime,
    /// Identifier or keyword (including `r#ident` raw identifiers).
    Ident,
    /// Numeric literal (integers, floats, suffixes — one blob).
    Number,
    /// Any single other character (operators, brackets, `;`, …).
    Punct,
}

/// One lexeme: classification plus byte span plus the 1-based line its
/// first byte sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: Kind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a lossless token stream. Never panics; see module docs
/// for the invariants.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::with_capacity(src.len() / 4 + 8),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always advance");
            self.out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances over exactly one `char`, maintaining the line counter.
    fn bump_char(&mut self) {
        let b = self.bytes[self.pos];
        if b == b'\n' {
            self.line += 1;
        }
        if b < 0x80 {
            self.pos += 1;
        } else {
            // Multi-byte UTF-8: skip the continuation bytes.
            let mut n = self.pos + 1;
            while n < self.bytes.len() && (self.bytes[n] & 0xC0) == 0x80 {
                n += 1;
            }
            self.pos = n;
        }
    }

    fn next_kind(&mut self) -> Kind {
        let b = self.bytes[self.pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                while matches!(self.peek(0), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    self.bump_char();
                }
                Kind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.bump_char();
                }
                Kind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
            b'b' if self.peek(1) == Some(b'"') => {
                self.bump_char(); // the b prefix, then the plain string
                self.string()
            }
            _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => {
                // `r#ident` raw identifiers (raw *strings* were ruled out
                // above).
                if b == b'r' && self.peek(1) == Some(b'#') {
                    self.bump_char();
                    self.bump_char();
                }
                while self
                    .peek(0)
                    .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                {
                    self.bump_char();
                }
                Kind::Ident
            }
            _ if b.is_ascii_digit() => {
                // One blob: digits, radix prefixes, `_`, `.` in floats,
                // exponents, suffixes. Precision beyond "this is a number"
                // is not needed; `1.method()` never lexes the dot into the
                // number because we only take a `.` when a digit follows.
                while let Some(c) = self.peek(0) {
                    if c == b'_'
                        || c.is_ascii_alphanumeric()
                        || (c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()))
                    {
                        self.bump_char();
                    } else {
                        break;
                    }
                }
                Kind::Number
            }
            _ => {
                self.bump_char();
                Kind::Punct
            }
        }
    }

    fn block_comment(&mut self) -> Kind {
        self.bump_char(); // '/'
        self.bump_char(); // '*'
        let mut depth = 1u32;
        while depth > 0 && self.pos < self.bytes.len() {
            match (self.peek(0), self.peek(1)) {
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_char();
                    self.bump_char();
                }
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_char();
                    self.bump_char();
                }
                _ => self.bump_char(),
            }
        }
        Kind::BlockComment
    }

    fn string(&mut self) -> Kind {
        self.bump_char(); // opening '"'
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => {
                    self.bump_char();
                    if self.pos < self.bytes.len() {
                        self.bump_char();
                    }
                }
                b'"' => {
                    self.bump_char();
                    return Kind::Str;
                }
                _ => self.bump_char(),
            }
        }
        Kind::Str // unterminated: runs to end of input
    }

    /// At a `r` or `b`: does a raw string (`r"`, `r#"`, `br#"` …) start
    /// here?
    fn raw_string_ahead(&self) -> bool {
        let mut i = self.pos;
        if self.bytes.get(i) == Some(&b'b') {
            i += 1;
        }
        if self.bytes.get(i) != Some(&b'r') {
            return false;
        }
        i += 1;
        while self.bytes.get(i) == Some(&b'#') {
            i += 1;
        }
        self.bytes.get(i) == Some(&b'"')
    }

    fn raw_string(&mut self) -> Kind {
        if self.peek(0) == Some(b'b') {
            self.bump_char();
        }
        self.bump_char(); // 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.bump_char();
        }
        self.bump_char(); // opening '"'
        while let Some(c) = self.peek(0) {
            self.bump_char();
            if c == b'"' {
                let closed = (0..hashes).all(|k| self.peek(k) == Some(b'#'));
                if closed {
                    for _ in 0..hashes {
                        self.bump_char();
                    }
                    return Kind::RawStr;
                }
            }
        }
        Kind::RawStr // unterminated
    }

    fn char_or_lifetime(&mut self) -> Kind {
        // A quote is a char literal if it closes: `'x'`, `'\…'`; otherwise
        // it introduces a lifetime/label (`'a`, `'static`, `'_`).
        self.bump_char(); // opening '\''
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump_char();
                if self.pos < self.bytes.len() {
                    self.bump_char(); // the escaped char
                }
                while let Some(c) = self.peek(0) {
                    self.bump_char();
                    if c == b'\'' {
                        break;
                    }
                }
                Kind::Char
            }
            Some(c) if c != b'\'' => {
                // One char then ideally a closing quote. `'a'` → Char;
                // `'a` / `'static` → Lifetime.
                let ident_start = c == b'_' || c.is_ascii_alphabetic() || c >= 0x80;
                self.bump_char();
                if self.peek(0) == Some(b'\'') && !(ident_start && self.ident_continues(1)) {
                    self.bump_char();
                    return Kind::Char;
                }
                if self.peek(0) == Some(b'\'') {
                    // `'a'` where `a` is also an ident char: still a char
                    // literal (lifetimes are never immediately re-quoted).
                    self.bump_char();
                    return Kind::Char;
                }
                if ident_start {
                    while self
                        .peek(0)
                        .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
                    {
                        self.bump_char();
                    }
                    Kind::Lifetime
                } else {
                    // `'+` or similar malformed input: degrade to Punct-ish
                    // lifetime, never panic.
                    Kind::Lifetime
                }
            }
            Some(_) => {
                // `''` — empty char literal (malformed); consume the quote.
                self.bump_char();
                Kind::Char
            }
            None => Kind::Lifetime, // lone trailing quote
        }
    }

    fn ident_continues(&self, ahead: usize) -> bool {
        self.peek(ahead)
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80)
    }
}

/// Projects the token stream onto per-line "code only" text: comments,
/// string/raw-string literals and char literals are blanked to spaces
/// (newlines preserved), everything else is copied verbatim. Line structure
/// is preserved exactly — every output line has the same char count as its
/// source line — so `masked[i]` aligns with source line `i + 1` and column
/// positions stay meaningful.
///
/// This is the projection the per-line rules consume; unlike the old
/// line-oriented `sanitize()`, a string literal spanning lines (legal Rust)
/// is masked on every line it covers.
pub fn masked_lines(src: &str, tokens: &[Token]) -> Vec<String> {
    let mut out = String::with_capacity(src.len());
    for t in tokens {
        let text = t.text(src);
        match t.kind {
            Kind::LineComment
            | Kind::BlockComment
            | Kind::Str
            | Kind::RawStr
            | Kind::Char => blank_preserving_newlines(text, &mut out),
            _ => out.push_str(text),
        }
    }
    out.lines().map(str::to_owned).collect()
}

fn blank_preserving_newlines(text: &str, out: &mut String) {
    for c in text.chars() {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }
}

/// Iterator helper: indices of non-trivia tokens (everything except
/// whitespace and comments), in order. The model and the analyses walk
/// these.
pub fn significant(tokens: &[Token]) -> Vec<usize> {
    tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                Kind::Whitespace | Kind::LineComment | Kind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect()
}

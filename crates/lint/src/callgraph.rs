//! Name-based workspace call graph.
//!
//! Resolution is deliberately simple: a call token `name(` (free call) or
//! `.name(` (method call) resolves to workspace `fn name` definitions. There
//! is no type information and no trait dispatch — this over-approximates,
//! which is the right direction for the lock-order analysis (extra edges can
//! only add findings, which `lint:allow` can then document; a missed edge
//! would silently hide an inversion).
//!
//! A **receiver qualifier** prunes the worst name collisions without real
//! type inference: for `self.registry.register(…)` the last receiver
//! segment (`registry`) must appear, case-insensitively, in a candidate's
//! impl type (`ClassRegistry` ✓, `MemTransport` ✗); `Type::name(…)` path
//! calls match the path qualifier the same way; a bare `self.name(…)`
//! prefers candidates on the caller's own impl type. When nothing matches
//! (or the qualifier is too short to be meaningful) resolution falls back
//! to *every* candidate — the fallback direction is always
//! over-approximation, never silence.
//!
//! Two cuts keep the over-approximation from collapsing the workspace into
//! one giant strongly-connected component:
//!
//! * **transport cut** — calls named `call`/`cast`/`send`/`recv`/`handle`
//!   are never followed. The `guard-across-transport` rule guarantees no
//!   lock guard is live across those boundaries, so lock-order propagation
//!   through them is unnecessary — and following them would tie every
//!   client fn to every server handler.
//! * **std-method stoplist** — common collection/iterator method names
//!   (`get`, `insert`, `len`, `push`, …) are not resolved as method calls,
//!   because they nearly always hit `std` types, not workspace impls.
//!   Workspace methods that shadow a std name and matter to the lock graph
//!   (e.g. `Mirror::append` feeding the WAL) must stay off this list; it is
//!   calibrated against the runtime-edge subset check in CI.

use crate::lexer::{self, Kind, Token};
use crate::model::{self, FileModel};
use std::collections::HashMap;
use std::path::PathBuf;

/// Method names that mark a transport boundary; never followed (see module
/// docs — justified by the `guard-across-transport` invariant).
pub const TRANSPORT_CUT: &[&str] = &[
    "call",
    "cast",
    "send",
    "recv",
    "handle",
    "call_stream",
    "handle_stream",
];

/// Lock-acquisition method names; these are acquire *events*, not calls to
/// resolve (the lock graph consumes them directly).
pub const ACQUIRE_METHODS: &[&str] =
    &["lock", "try_lock", "read", "write", "try_read", "try_write"];

/// Method names that overwhelmingly resolve to std/vendored types; never
/// resolved as workspace calls. `append` is deliberately absent: the WAL
/// mirror path flows through `Mirror`-adjacent `append` methods and must
/// stay visible to the lock graph.
const METHOD_STOPLIST: &[&str] = &[
    "get", "get_mut", "insert", "remove", "push", "pop", "len", "is_empty",
    "clone", "contains", "contains_key", "iter", "iter_mut", "into_iter",
    "next", "map", "and_then", "unwrap", "unwrap_or", "unwrap_or_else",
    "unwrap_or_default", "expect", "ok", "err", "is_some", "is_none", "is_ok",
    "is_err", "as_ref", "as_mut", "as_str", "as_bytes", "as_slice", "to_vec",
    "to_string", "to_owned", "into", "from", "try_into", "try_from", "collect",
    "filter", "filter_map", "find", "any", "all", "fold", "for_each", "zip",
    "enumerate", "rev", "chain", "take", "skip", "count", "max", "min", "sum",
    "sort", "sort_by", "sort_by_key", "sort_unstable", "dedup", "retain",
    "extend", "drain", "clear", "entry", "or_insert", "or_insert_with",
    "or_default", "keys", "values", "values_mut", "split", "splitn", "join",
    "trim", "starts_with", "ends_with", "replace", "chars", "bytes", "lines",
    "parse", "fmt", "eq", "ne", "cmp", "partial_cmp", "hash", "default",
    "new", "with_capacity", "clone_from", "min_by_key", "max_by_key",
    "load", "store", "fetch_add", "fetch_sub", "compare_exchange", "swap",
    "wrapping_add", "saturating_add", "saturating_sub", "checked_add",
    "checked_sub", "abs", "pow", "position", "last", "first", "front",
    "back", "push_back", "push_front", "pop_back", "pop_front", "truncate",
    "resize", "reserve", "copy_from_slice", "windows", "chunks", "concat",
    "flatten", "flat_map", "cloned", "copied", "step_by", "min_by", "max_by",
];

/// One parsed file: source, tokens, significant indices, item model.
pub struct Unit {
    pub path: PathBuf,
    /// Workspace-relative display path (`crates/core/src/process.rs`).
    pub rel: String,
    pub src: String,
    pub tokens: Vec<Token>,
    pub sig: Vec<usize>,
    pub model: FileModel,
}

impl Unit {
    pub fn parse(path: PathBuf, rel: String, src: String) -> Self {
        let tokens = lexer::lex(&src);
        let sig = lexer::significant(&tokens);
        let model = model::build(&src, &tokens);
        Unit {
            path,
            rel,
            src,
            tokens,
            sig,
            model,
        }
    }
}

/// Global function id: (unit index, fn index within the unit's model).
pub type FnId = (usize, usize);

/// The workspace call graph.
pub struct CallGraph {
    /// `callees[fid]` = resolved workspace callees, deduped.
    pub callees: HashMap<FnId, Vec<FnId>>,
    /// fn name → every workspace definition of that name.
    pub by_name: HashMap<String, Vec<FnId>>,
}

impl CallGraph {
    pub fn build(units: &[Unit]) -> Self {
        let mut by_name: HashMap<String, Vec<FnId>> = HashMap::new();
        for (ui, unit) in units.iter().enumerate() {
            for (fi, f) in unit.model.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((ui, fi));
            }
        }

        let mut callees: HashMap<FnId, Vec<FnId>> = HashMap::new();
        for (ui, unit) in units.iter().enumerate() {
            for (fi, f) in unit.model.fns.iter().enumerate() {
                let mut out: Vec<FnId> = Vec::new();
                for call in calls_in_range(unit, f.body.0, f.body.1) {
                    if let Some(targets) = by_name.get(call.name) {
                        for t in filter_targets(
                            units,
                            ui,
                            f.impl_type.as_deref(),
                            &call.qualifier,
                            targets,
                        ) {
                            if !out.contains(&t) {
                                out.push(t);
                            }
                        }
                    }
                }
                callees.insert((ui, fi), out);
            }
        }
        CallGraph { callees, by_name }
    }
}

/// How a call site names its callee's owner — see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Qualifier {
    /// Free call with no usable receiver or path qualifier.
    None,
    /// `self.name(…)` — the callee lives on the caller's own impl type.
    SelfRecv,
    /// `….segment.name(…)` / `Segment::name(…)` — the last receiver chain
    /// segment or path qualifier.
    Named(String),
}

/// Prunes `targets` by the call's qualifier.
///
/// A meaningful qualifier that matches *no* candidate resolves to nothing:
/// the receiver is then almost certainly a std/vendored type that happens
/// to share a method name with a workspace fn (`guard.record(…)`,
/// `histogram.observe(…)`). This workspace names fields after their types
/// (`self.registry` → `ClassRegistry`, `self.wal` → `Wal`), which the
/// CI runtime-edge subset check verifies end-to-end. A one-/two-letter
/// receiver (`t`, `rx`) carries no type information, so it prefers
/// candidates defined in the caller's own file (the local-closure idiom
/// `with_topology_mut(|t| t.disconnect(s))`) and only falls back to every
/// candidate when the file defines none.
pub fn filter_targets(
    units: &[Unit],
    caller_unit: usize,
    caller_impl: Option<&str>,
    qualifier: &Qualifier,
    targets: &[FnId],
) -> Vec<FnId> {
    let impl_of =
        |&(ui, fi): &FnId| units[ui].model.fns[fi].impl_type.as_deref();
    match qualifier {
        // A bare `name(…)` can only be a free fn (or a closure/fn-pointer
        // call, which resolution cannot follow anyway). Letting it match
        // *methods* is what used to fuse the workspace into one component:
        // every `drop(g)` resolved to every `Drop::drop` impl, every
        // fn-pointer invocation named `decode` to `ClassRegistry::decode`.
        Qualifier::None => targets
            .iter()
            .copied()
            .filter(|t| impl_of(t).is_none())
            .collect(),
        Qualifier::SelfRecv => {
            if caller_impl.is_none() {
                return targets.to_vec();
            }
            targets
                .iter()
                .copied()
                .filter(|t| impl_of(t).is_some() && impl_of(t) == caller_impl)
                .collect()
        }
        Qualifier::Named(q) => {
            let ql = q
                .trim_end_matches("()")
                .trim_end_matches("[]")
                .to_lowercase();
            // One- or two-letter receivers (`t`, `tx`) match almost any
            // type name by containment; prefer same-file candidates,
            // falling back to all of them.
            if ql.len() < 3 {
                let local: Vec<FnId> = targets
                    .iter()
                    .copied()
                    .filter(|&(ui, _)| ui == caller_unit)
                    .collect();
                return if local.is_empty() {
                    targets.to_vec()
                } else {
                    local
                };
            }
            targets
                .iter()
                .copied()
                .filter(|&t| match impl_of(&t) {
                    // Method candidates match on the impl type name…
                    Some(it) => it.to_lowercase().contains(&ql),
                    // …free fns on their defining file's path
                    // (`sync::lock_many` → `crates/util/src/sync.rs`).
                    None => units[t.0].rel.to_lowercase().contains(&ql),
                })
                .collect()
        }
    }
}

/// A resolvable call site inside a token range.
pub struct CallSite<'a> {
    pub name: &'a str,
    /// Token index of the callee-name ident.
    pub token: usize,
    pub line: u32,
    pub is_method: bool,
    pub qualifier: Qualifier,
}

/// Yields the resolvable call sites between token indices `lo..=hi`
/// (typically a fn body). Applies the transport cut, the acquire-method
/// exclusion and the std stoplist; skips macro invocations (`name!`),
/// definitions (`fn name`), and keywords.
pub fn calls_in_range<'a>(unit: &'a Unit, lo: usize, hi: usize) -> Vec<CallSite<'a>> {
    let src = unit.src.as_str();
    let tokens = &unit.tokens;
    let sig = &unit.sig;
    let mut out = Vec::new();

    // Walk significant tokens whose underlying index lies in [lo, hi].
    let start = sig.partition_point(|&k| k < lo);
    let mut p = start;
    while p < sig.len() && sig[p] <= hi {
        let k = sig[p];
        let t = &tokens[k];
        if t.kind == Kind::Ident {
            let name = t.text(src);
            let next = sig.get(p + 1).map(|&n| tokens[n].text(src));
            let prev = p
                .checked_sub(1)
                .and_then(|q| sig.get(q))
                .map(|&n| tokens[n].text(src));
            if next == Some("(")
                && prev != Some("fn")
                && !is_keyword(name)
                && !TRANSPORT_CUT.contains(&name)
                && !ACQUIRE_METHODS.contains(&name)
            {
                let is_method = prev == Some(".");
                if !(is_method && METHOD_STOPLIST.contains(&name)) {
                    out.push(CallSite {
                        name,
                        token: k,
                        line: t.line,
                        is_method,
                        qualifier: qualifier_at(unit, p),
                    });
                }
            }
        }
        p += 1;
    }
    out
}

/// Computes the [`Qualifier`] of the call whose name ident sits at sig
/// position `p`. `self.name(` → `SelfRecv`; `a.b.name(` → `Named("b")`;
/// `x().name(` → `Named("x()")`; `Type::name(` → `Named("Type")`;
/// anything else → `None`.
fn qualifier_at(unit: &Unit, p: usize) -> Qualifier {
    let src = unit.src.as_str();
    let sig = &unit.sig;
    let txt = |q: usize| unit.tokens[sig[q]].text(src);
    if p < 2 {
        return Qualifier::None;
    }
    match txt(p - 1) {
        "." => {
            let r = p - 2;
            let t = &unit.tokens[sig[r]];
            if t.kind == Kind::Ident {
                let s = t.text(src);
                if s == "self" && (r == 0 || txt(r - 1) != ".") {
                    Qualifier::SelfRecv
                } else {
                    Qualifier::Named(s.to_string())
                }
            } else if txt(r) == ")" || txt(r) == "]" {
                // `x(…).name(` / `x[…].name(`: qualify by the ident in
                // front of the matching opener.
                let (open_c, close_c) = if txt(r) == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0i32;
                let mut q = r;
                loop {
                    let s = txt(q);
                    if s == close_c {
                        depth += 1;
                    } else if s == open_c {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if q == 0 {
                        return Qualifier::None;
                    }
                    q -= 1;
                }
                if q > 0 && unit.tokens[sig[q - 1]].kind == Kind::Ident {
                    Qualifier::Named(txt(q - 1).to_string())
                } else {
                    Qualifier::None
                }
            } else {
                Qualifier::None
            }
        }
        ":" if p >= 3 && txt(p - 2) == ":" => {
            let t = &unit.tokens[sig[p - 3]];
            if t.kind != Kind::Ident {
                Qualifier::None
            } else if t.text(src) == "Self" {
                Qualifier::SelfRecv
            } else if t.text(src) == "self" {
                Qualifier::None
            } else {
                Qualifier::Named(t.text(src).to_string())
            }
        }
        _ => Qualifier::None,
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "in"
            | "as"
            | "fn"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "union"
            | "type"
            | "const"
            | "static"
            | "mod"
            | "use"
            | "pub"
            | "crate"
            | "super"
            | "self"
            | "Self"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "box"
            | "extern"
    )
}

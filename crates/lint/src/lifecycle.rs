//! `wal-intent-lifecycle`: every path that logs a `PutIntent` must retire it.
//!
//! The PR 6.1 bug shape: `log_put_intent` fsyncs an intent, then some exit
//! path leaves the function without `log_confirm`/`log_put_abandoned` and
//! without handing the pending seq upward — after a crash the intent replays
//! state the caller never meant to commit, or pins a seq forever.
//!
//! The check is per-function over the token stream, path-approximated
//! textually (documented caveat: a retire that *textually* precedes an exit
//! is assumed to dominate it — sharper than the old line rules, still not a
//! CFG). For each `log_put_intent` call site, every exit that comes after
//! the intent's own statement must be *sanctioned*:
//!
//! * a retire call (`log_confirm`/`log_put_abandoned`, or constructing the
//!   `PutConfirmed`/`PutAbandoned` records directly) appears between the
//!   intent and the exit; or
//! * the exit expression mentions one of the intent call's argument
//!   identifiers — returning the pending seq upward transfers the
//!   obligation to the caller (the recovery contract); or
//! * the exit is `Err`-shaped (`?` always; `return Err(..)`; an `Err(..)`
//!   tail) — error exits deliberately keep the intent pending so recovery
//!   can replay or abandon it with full knowledge.
//!
//! The definition of `log_put_intent` itself is exempt, as is test code.

use crate::callgraph::Unit;
use crate::lexer::Kind;
use crate::{Diagnostic, RULE_WAL_INTENT_LIFECYCLE};

const INTENT: &str = "log_put_intent";
const RETIRE: &[&str] = &[
    "log_confirm",
    "log_put_abandoned",
    "PutConfirmed",
    "PutAbandoned",
];

pub fn check(units: &[Unit]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for u in units {
        let lib = (u.rel.starts_with("crates/") && u.rel.contains("/src/"))
            || u.rel.starts_with("src/");
        if !lib {
            continue;
        }
        for f in &u.model.fns {
            if f.in_test || f.name == INTENT {
                continue;
            }
            check_fn(u, f, &mut diags);
        }
    }
    diags
}

fn check_fn(u: &Unit, f: &crate::model::FnItem, diags: &mut Vec<Diagnostic>) {
    let src = u.src.as_str();
    let sig = &u.sig;
    let txt = |p: usize| u.tokens[sig[p]].text(src);
    let line = |p: usize| u.tokens[sig[p]].line;

    // Sig positions inside the body, exclusive of the braces themselves.
    let start = sig.partition_point(|&k| k <= f.body.0);
    let end = sig.partition_point(|&k| k < f.body.1); // one past the last body token

    // Collect intent calls, retire mentions, `return`s, and the tail
    // expression (tokens after the last body-depth-0 `;`).
    let mut intents: Vec<usize> = Vec::new();
    let mut retires: Vec<usize> = Vec::new();
    let mut returns: Vec<usize> = Vec::new();
    let mut depth = 0i32;
    let mut last_top_semi: Option<usize> = None;
    for p in start..end {
        let t = txt(p);
        match u.tokens[sig[p]].kind {
            Kind::Punct => match t {
                "{" => depth += 1,
                "}" => depth -= 1,
                ";" if depth == 0 => last_top_semi = Some(p),
                _ => {}
            },
            Kind::Ident => {
                if t == INTENT && sig.get(p + 1).map(|&k| u.tokens[k].text(src)) == Some("(") {
                    intents.push(p);
                } else if RETIRE.contains(&t) {
                    retires.push(p);
                } else if t == "return" {
                    returns.push(p);
                }
            }
            _ => {}
        }
    }
    if intents.is_empty() {
        return;
    }
    let tail_start = last_top_semi.map(|p| p + 1).unwrap_or(start);

    for &ip in &intents {
        // The intent call's argument identifiers: returning any of them
        // upward counts as handing off the pending seq.
        let close = matching_paren(u, ip + 1, end);
        let args: Vec<&str> = (ip + 2..close)
            .filter(|&p| u.tokens[sig[p]].kind == Kind::Ident)
            .map(txt)
            .collect();
        // The intent's own statement ends at the first `;` after the call.
        let stmt_end = (close..end).find(|&p| txt(p) == ";").unwrap_or(close);

        // Exit 1: every `return` after the intent's statement.
        for &rp in returns.iter().filter(|&&rp| rp > stmt_end) {
            if retires.iter().any(|&q| q > ip && q < rp) {
                continue;
            }
            let expr_end = (rp..end).find(|&p| txt(p) == ";").unwrap_or(end);
            if sanctioned_expr(u, rp + 1, expr_end, &args) {
                continue;
            }
            diags.push(flag(u, f, line(ip), line(rp)));
        }

        // Exit 2: falling off the end of the body.
        if retires.iter().any(|&q| q > ip) {
            continue;
        }
        if tail_start > stmt_end && sanctioned_expr(u, tail_start, end, &args) {
            continue;
        }
        let end_line = u.tokens[f.body.1.min(u.tokens.len() - 1)].line;
        diags.push(flag(u, f, line(ip), end_line));
    }
}

/// An exit expression is sanctioned when it is `Err`-shaped or mentions one
/// of the intent call's argument identifiers.
fn sanctioned_expr(u: &Unit, from: usize, to: usize, args: &[&str]) -> bool {
    let src = u.src.as_str();
    (from..to.min(u.sig.len())).any(|p| {
        let t = &u.tokens[u.sig[p]];
        t.kind == Kind::Ident && {
            let s = t.text(src);
            s == "Err" || args.contains(&s)
        }
    })
}

/// Sig position of the `)` matching the `(` at sig position `open`
/// (bounded by `end`).
fn matching_paren(u: &Unit, open: usize, end: usize) -> usize {
    let src = u.src.as_str();
    let mut depth = 0i32;
    for p in open..end.min(u.sig.len()) {
        match u.tokens[u.sig[p]].text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return p;
                }
            }
            _ => {}
        }
    }
    end.min(u.sig.len().saturating_sub(1))
}

fn flag(u: &Unit, f: &crate::model::FnItem, intent_line: u32, exit_line: u32) -> Diagnostic {
    Diagnostic {
        file: u.rel.clone(),
        line: intent_line as usize,
        rule: RULE_WAL_INTENT_LIFECYCLE,
        message: format!(
            "`log_put_intent` at {}:{} can reach the exit of `{}` at {}:{} \
             without `log_confirm`/`log_put_abandoned` and without returning \
             the pending seq; a crash there leaks an unretired intent",
            u.rel, intent_line, f.name, u.rel, exit_line
        ),
    }
}

//! Lightweight item model: which functions exist, where their bodies are,
//! which `impl` block they sit in, and which regions are test code.
//!
//! This is not a parser — it is a single forward walk over the token
//! stream tracking brace structure. It recovers exactly the facts the
//! interprocedural analyses need:
//!
//! * every `fn` with a body: name, enclosing `impl` type (if any), the
//!   token range of the body, signature line;
//! * test regions: `#[cfg(test)] mod … { … }` blocks and `#[test]` /
//!   `#[cfg(test)]`-attributed functions.
//!
//! Soundness caveats are documented in DESIGN.md §4f: resolution is purely
//! name-based (no types, no trait dispatch), and `macro_rules!` templates
//! are walked as ordinary code (their token spans are what `#[track_caller]`
//! reports for macro-expanded acquisitions, so treating them as code keeps
//! the static lock graph aligned with runtime sites).

use crate::lexer::{Kind, Token};

/// One function (or method) with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare name (`put_inner`, `lock_pair`, …).
    pub name: String,
    /// Enclosing `impl` type name, if inside an `impl` block.
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body **contents**: `body.0` is the index of
    /// the opening `{`, `body.1` the index of its matching `}` (both in the
    /// full token slice the model was built from).
    pub body: (usize, usize),
    /// True when this fn is test code: inside a `#[cfg(test)] mod`, or
    /// carrying a `#[test]` / `#[cfg(test)]` attribute itself.
    pub in_test: bool,
    /// True when the *return type* (after `->`) mentions a `*Guard*` type —
    /// the only fns whose acquisitions can outlive their own call statement
    /// (the lock graph's virtual-hold mechanism keys on this). Parameters
    /// don't count: `fn reindex(&self, g: &mut ShardGuard)` borrows a
    /// guard, it does not hand a new one back.
    pub returns_guard: bool,
}

/// The item model of one file.
#[derive(Debug, Default)]
pub struct FileModel {
    pub fns: Vec<FnItem>,
    /// Line ranges (1-based, inclusive) that are test code.
    pub test_regions: Vec<(u32, u32)>,
}

impl FileModel {
    /// Whether the 1-based `line` lies in a test region.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.test_regions
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// Builds the item model for one tokenized file.
pub fn build(src: &str, tokens: &[Token]) -> FileModel {
    let sig: Vec<usize> = crate::lexer::significant(tokens);
    let mut model = FileModel::default();

    // Context stack entry: what the brace at this depth belongs to.
    #[derive(Debug)]
    enum Ctx {
        Impl(String),
        TestMod,
        Other,
    }
    let mut stack: Vec<Ctx> = Vec::new();
    // Attributes seen since the last item/statement boundary.
    let mut pending_attrs: Vec<String> = Vec::new();

    let mut i = 0;
    while i < sig.len() {
        let t = &tokens[sig[i]];
        match t.kind {
            Kind::Punct => {
                let c = t.text(src);
                match c {
                    "#" => {
                        // `#[ … ]` (or `#![ … ]`): record the attribute text.
                        if let Some((attr, next)) = attribute_text(src, tokens, &sig, i) {
                            pending_attrs.push(attr);
                            i = next;
                            continue;
                        }
                        i += 1;
                    }
                    "{" => {
                        stack.push(Ctx::Other);
                        pending_attrs.clear();
                        i += 1;
                    }
                    "}" => {
                        // A TestMod region's end was recorded when it was
                        // opened, so closing a scope only pops the context.
                        stack.pop();
                        pending_attrs.clear();
                        i += 1;
                    }
                    ";" => {
                        pending_attrs.clear();
                        i += 1;
                    }
                    _ => {
                        i += 1;
                    }
                }
            }
            Kind::Ident => match t.text(src) {
                "impl" => {
                    let (ty, open) = impl_header(src, tokens, &sig, i);
                    match open {
                        Some(open_idx) => {
                            stack.push(Ctx::Impl(ty.unwrap_or_default()));
                            pending_attrs.clear();
                            i = open_idx + 1;
                        }
                        None => i += 1,
                    }
                }
                "mod" => {
                    let is_test = pending_attrs.iter().any(|a| a.contains("cfg(test)"));
                    // `mod name ;` (out-of-line) or `mod name { … }`.
                    let mut j = i + 1;
                    // skip the name
                    if j < sig.len() && tokens[sig[j]].kind == Kind::Ident {
                        j += 1;
                    }
                    match sig.get(j).map(|&k| tokens[k].text(src)) {
                        Some("{") => {
                            if is_test {
                                let close = matching_brace(src, tokens, &sig, j);
                                let start_line = t.line;
                                let end_line = close
                                    .map(|c| tokens[sig[c]].line)
                                    .unwrap_or(u32::MAX);
                                model.test_regions.push((start_line, end_line));
                                stack.push(Ctx::TestMod);
                            } else {
                                stack.push(Ctx::Other);
                            }
                            pending_attrs.clear();
                            i = j + 1;
                        }
                        _ => {
                            pending_attrs.clear();
                            i = j;
                        }
                    }
                }
                "fn" => {
                    let fn_line = t.line;
                    let is_test_fn = pending_attrs
                        .iter()
                        .any(|a| a.contains("cfg(test)") || a == "test");
                    pending_attrs.clear();
                    let Some(&name_idx) = sig.get(i + 1) else {
                        i += 1;
                        continue;
                    };
                    if tokens[name_idx].kind != Kind::Ident {
                        i += 1;
                        continue;
                    }
                    let name = tokens[name_idx].text(src).to_string();
                    // Scan for the body `{` (or a `;` for body-less trait
                    // items) at bracket depth 0 of the signature.
                    let mut depth = 0i32;
                    let mut j = i + 2;
                    let mut body = None;
                    while let Some(&k) = sig.get(j) {
                        let tt = &tokens[k];
                        if tt.kind == Kind::Punct {
                            match tt.text(src) {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "{" if depth <= 0 => {
                                    body = Some(j);
                                    break;
                                }
                                ";" if depth <= 0 => break,
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                    match body {
                        Some(open) => {
                            let close = matching_brace(src, tokens, &sig, open)
                                .unwrap_or(sig.len() - 1);
                            let in_test = is_test_fn
                                || stack.iter().any(|c| matches!(c, Ctx::TestMod));
                            let impl_type = stack.iter().rev().find_map(|c| match c {
                                Ctx::Impl(ty) if !ty.is_empty() => Some(ty.clone()),
                                _ => None,
                            });
                            let arrow = (i + 2..open.saturating_sub(1)).find(|&q| {
                                tokens[sig[q]].text(src) == "-"
                                    && tokens[sig[q + 1]].text(src) == ">"
                            });
                            let returns_guard = arrow.is_some_and(|a| {
                                (a + 2..open).any(|q| {
                                    let tt = &tokens[sig[q]];
                                    tt.kind == Kind::Ident
                                        && tt.text(src).contains("Guard")
                                })
                            });
                            model.fns.push(FnItem {
                                name,
                                impl_type,
                                line: fn_line,
                                body: (sig[open], sig[close]),
                                in_test,
                                returns_guard,
                            });
                            // Continue scanning *inside* the body too:
                            // nested fns and closures contain items the
                            // analyses may care about; the simple stack
                            // keeps contexts straight.
                            stack.push(Ctx::Other);
                            i = open + 1;
                        }
                        None => i = j + 1,
                    }
                }
                _ => {
                    // An ident that is not an item keyword consumes any
                    // stale attributes (e.g. `#[derive(..)] struct S;`).
                    if !matches!(t.text(src), "pub" | "unsafe" | "const" | "async" | "extern")
                    {
                        pending_attrs.clear();
                    }
                    i += 1;
                }
            },
            _ => {
                i += 1;
            }
        }
    }
    model
}

/// At `sig[i]` == `#`: returns the attribute's inner text (tokens between
/// `[` and its matching `]`, concatenated) and the sig-index just past it.
fn attribute_text(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    i: usize,
) -> Option<(String, usize)> {
    let mut j = i + 1;
    // optional `!` for inner attributes
    if sig
        .get(j)
        .is_some_and(|&k| tokens[k].text(src) == "!")
    {
        j += 1;
    }
    if sig
        .get(j)
        .is_none_or(|&k| tokens[k].text(src) != "[")
    {
        return None;
    }
    let mut depth = 0i32;
    let mut text = String::new();
    while let Some(&k) = sig.get(j) {
        let t = &tokens[k];
        if t.kind == Kind::Punct {
            match t.text(src) {
                "[" => {
                    depth += 1;
                    if depth == 1 {
                        j += 1;
                        continue;
                    }
                }
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((text, j + 1));
                    }
                }
                _ => {}
            }
        }
        if depth >= 1 {
            text.push_str(t.text(src));
        }
        j += 1;
    }
    None
}

/// For `impl … {`: returns the implemented type's name (last path ident of
/// the self-type — the segment after `for` when present) and the sig-index
/// of the opening `{`.
fn impl_header(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    i: usize,
) -> (Option<String>, Option<usize>) {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut after_for = false;
    let mut last_ident: Option<String> = None;
    let mut last_ident_after_for: Option<String> = None;
    while let Some(&k) = sig.get(j) {
        let t = &tokens[k];
        match t.kind {
            Kind::Punct => match t.text(src) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" if angle <= 0 => {
                    let ty = last_ident_after_for.or(last_ident);
                    return (ty, Some(j));
                }
                ";" => return (None, None),
                _ => {}
            },
            Kind::Ident => {
                let text = t.text(src);
                match text {
                    "for" if angle <= 0 => after_for = true,
                    "where" if angle <= 0 => {
                        // Idents after `where` are bounds, not the type.
                        // Freeze what we have by pretending we are deep in
                        // generics.
                        angle += 1_000;
                    }
                    _ if angle <= 0 => {
                        if after_for {
                            last_ident_after_for = Some(text.to_string());
                        } else {
                            last_ident = Some(text.to_string());
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        j += 1;
    }
    (None, None)
}

/// From `sig[open]` == `{`: sig-index of the matching `}`.
pub fn matching_brace(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    open: usize,
) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = open;
    while let Some(&k) = sig.get(j) {
        let t = &tokens[k];
        if t.kind == Kind::Punct {
            match t.text(src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

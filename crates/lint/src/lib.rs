//! `obiwan-lint`: project-specific invariant checks for the OBIWAN workspace.
//!
//! The compiler cannot see OBIWAN's cross-cutting invariants — that no lock
//! guard is held across a transport boundary, that every wire tag can make a
//! round trip, that every counter and error variant the platform registers is
//! actually exercised. This crate is a lightweight line/token scanner (no
//! dependencies, no rustc plumbing) that enforces them:
//!
//! | rule id                      | invariant                                            |
//! |------------------------------|------------------------------------------------------|
//! | `guard-across-transport`     | no lock guard live across `.call`/`.cast`/`.send`/`.recv`/`.handle` |
//! | `single-shard-guard`         | no function holds two shard guards except via `lock_pair`/`lock_many` |
//! | `no-io-under-shard-guard`    | no WAL append/fsync/`log_*` call while a shard guard is held |
//! | `wire-tag-coverage`          | every `Message` variant has encode + decode arms and a roundtrip test |
//! | `metrics-coverage`           | every counter in `util::metrics` is incremented somewhere |
//! | `error-variant-coverage`     | every `ObiError` variant is constructed somewhere    |
//! | `no-unwrap-on-lock-or-decode`| no `unwrap()`/`expect()` on lock or decode results outside tests |
//! | `lock-order-cycle`           | no A→B/B→A lock-class inversion anywhere in the static lock-order graph |
//! | `wal-intent-lifecycle`       | every path past `log_put_intent` retires the intent or hands the seq upward |
//! | `allow-without-rationale`    | every `lint:allow` carries a rationale after the `(rule)` closer |
//!
//! A finding on line `N` is suppressed when line `N` or `N-1` carries a
//! `// lint:allow(<rule-id>)` comment. Allows are per-rule, never blanket,
//! and must state *why* (enforced by `allow-without-rationale`).
//!
//! Since the token-stream port, the crate is layered (see DESIGN.md §4f):
//! [`lexer`] produces a lossless token stream (strings/comments/char
//! literals decided once, correctly), [`model`] recovers fn bodies, impl
//! blocks and test regions, [`callgraph`] resolves calls by name across the
//! workspace, and [`lockgraph`]/[`lifecycle`] run the two interprocedural
//! analyses on top. The per-line rules consume [`lexer::masked_lines`],
//! which kills the string/comment false-positive class the old `sanitize()`
//! line heuristics were prone to (e.g. tokens inside multi-line string
//! literals, which plain strings *can* be in Rust).

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod callgraph;
pub mod lexer;
pub mod lifecycle;
pub mod lockgraph;
pub mod model;

use callgraph::Unit;

/// All rule identifiers, as used in diagnostics and `lint:allow(...)` markers.
pub const RULE_GUARD_ACROSS_TRANSPORT: &str = "guard-across-transport";
pub const RULE_SINGLE_SHARD_GUARD: &str = "single-shard-guard";
pub const RULE_NO_IO_UNDER_SHARD_GUARD: &str = "no-io-under-shard-guard";
pub const RULE_WIRE_TAG_COVERAGE: &str = "wire-tag-coverage";
pub const RULE_METRICS_COVERAGE: &str = "metrics-coverage";
pub const RULE_ERROR_VARIANT_COVERAGE: &str = "error-variant-coverage";
pub const RULE_NO_UNWRAP: &str = "no-unwrap-on-lock-or-decode";
pub const RULE_LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
pub const RULE_WAL_INTENT_LIFECYCLE: &str = "wal-intent-lifecycle";
pub const RULE_ALLOW_AUDIT: &str = "allow-without-rationale";

/// Method-call tokens that acquire a lock guard. Empty parens are part of
/// the token so `stream.write_all(..)` or `file.read(&mut buf)` never match.
const ACQUIRE_TOKENS: &[&str] = &[
    ".lock()",
    ".try_lock()",
    ".read()",
    ".write()",
    ".try_read()",
    ".try_write()",
];

/// Method-call tokens that cross a transport / dispatch boundary: a blocking
/// round trip, a one-way send, or handing a frame to arbitrary handler code.
const TRANSPORT_TOKENS: &[&str] = &[
    ".call(",
    ".cast(",
    ".send(",
    ".recv(",
    ".handle(",
    ".call_stream(",
    ".handle_stream(",
];

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of the `RULE_*` constants).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source file presented to the rules. Tests construct these from string
/// literals; the binary loads them from disk via [`scan_workspace`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (e.g. `crates/net/src/tcp.rs`).
    pub path: String,
    pub text: String,
}

impl SourceFile {
    pub fn new(path: impl Into<String>, text: impl Into<String>) -> Self {
        SourceFile {
            path: path.into(),
            text: text.into(),
        }
    }
}

/// Walks the workspace collecting every `.rs` file the rules should see:
/// `crates/*` (including `crates/lint` itself — the analyzer is
/// self-hosting now that allows and literals are decided on the token
/// stream), the root package's `src/`, plus `tests/`, `examples/` and
/// `benches/`. `vendor/`, `target/` and `fixtures/` trees (seeded-violation
/// test data) are never scanned.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target"
                || name == "vendor"
                || name == "fixtures"
                || name.starts_with('.')
            {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(SourceFile::new(rel, fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Parses every file once into the shared token/model representation the
/// rules consume.
fn parse_units(files: &[SourceFile]) -> Vec<Unit> {
    files
        .iter()
        .map(|f| Unit::parse(PathBuf::from(&f.path), f.path.clone(), f.text.clone()))
        .collect()
}

/// Runs every rule over `files`, drops `lint:allow`-suppressed findings, and
/// returns the rest ordered by (file, line).
pub fn check(files: &[SourceFile]) -> Vec<Diagnostic> {
    let units = parse_units(files);
    let prepared: Vec<Prepared> = units.iter().map(Prepared::new).collect();
    let mut diags = Vec::new();
    for p in &prepared {
        diags.extend(guard_across_transport(p));
        diags.extend(single_shard_guard(p));
        diags.extend(no_io_under_shard_guard(p));
        diags.extend(no_unwrap_on_lock_or_decode(p));
        diags.extend(allow_without_rationale(p));
    }
    diags.extend(wire_tag_coverage(&prepared));
    diags.extend(metrics_coverage(&prepared));
    diags.extend(error_variant_coverage(&prepared));
    diags.extend(lockgraph::build(&units).cycle_diagnostics());
    diags.extend(lifecycle::check(&units));
    diags.retain(|d| !is_allowed(&prepared, d));
    diags.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    diags
}

/// Builds the static lock-order graph for `files` (the `LOCK_GRAPH.json`
/// payload; see [`lockgraph`]).
pub fn lock_graph(files: &[SourceFile]) -> lockgraph::LockGraph {
    lockgraph::build(&parse_units(files))
}

/// Convenience: scan + check.
pub fn run(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let files = scan_workspace(root)?;
    Ok(check(&files))
}

/// Returns the workspace root the binary should analyze by default:
/// `$CARGO_MANIFEST_DIR/../..` (this crate lives at `crates/lint`).
pub fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

// ---------------------------------------------------------------------------
// Preprocessing
// ---------------------------------------------------------------------------

/// One `lint:allow(<rule>)` marker, extracted from a comment token. An
/// allow suppresses findings on its own line and the line below.
struct Allow {
    rule: String,
    /// 1-based line of the `lint:allow` text itself.
    line: usize,
    /// Whether rationale text follows the `(rule)` closer.
    has_rationale: bool,
}

/// A file plus its literal-masked lines, test mask, and extracted allows —
/// the view the per-line rules consume. Derived entirely from the [`lexer`]
/// token stream and the [`model`] item model.
struct Prepared {
    path: String,
    /// Lines with comments and string/char literal contents blanked out
    /// (line structure preserved; see [`lexer::masked_lines`]).
    code: Vec<String>,
    /// `true` for lines inside a `#[cfg(test)] mod` block or a
    /// `#[test]`-attributed fn.
    in_test_mod: Vec<bool>,
    allows: Vec<Allow>,
}

impl Prepared {
    fn new(unit: &Unit) -> Self {
        let code = lexer::masked_lines(&unit.src, &unit.tokens);
        let mut in_test_mod = vec![false; code.len()];
        let mut mark = |a: u32, b: u32| {
            let a = a.saturating_sub(1) as usize;
            for idx in a..(b as usize).min(in_test_mod.len()) {
                in_test_mod[idx] = true;
            }
        };
        for &(a, b) in &unit.model.test_regions {
            mark(a, b);
        }
        for f in &unit.model.fns {
            if f.in_test {
                let end = unit
                    .tokens
                    .get(f.body.1)
                    .map(|t| t.line)
                    .unwrap_or(u32::MAX);
                mark(f.line, end);
            }
        }
        Prepared {
            path: unit.rel.clone(),
            code,
            in_test_mod,
            allows: extract_allows(&unit.src, &unit.tokens),
        }
    }

    /// Whether guard/unwrap rules apply to this file at this line: library
    /// source (`crates/*/src`, `src/`) outside `#[cfg(test)]` modules.
    /// Integration tests, examples and benches may hold locks however their
    /// assertions need.
    fn is_lib_code(&self, line_idx: usize) -> bool {
        let lib = (self.path.starts_with("crates/") && self.path.contains("/src/"))
            || self.path.starts_with("src/");
        lib && !self.in_test_mod.get(line_idx).copied().unwrap_or(false)
    }
}

/// Extracts `lint:allow(<rule>)` markers from comment tokens. Allows are
/// recognized *only* in comments — a `lint:allow(` inside a string literal
/// (this crate's own source is full of them) is data, not a suppression.
fn extract_allows(src: &str, tokens: &[lexer::Token]) -> Vec<Allow> {
    const NEEDLE: &str = "lint:allow(";
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, lexer::Kind::LineComment | lexer::Kind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        let mut from = 0;
        while let Some(pos) = text[from..].find(NEEDLE) {
            let rule_start = from + pos + NEEDLE.len();
            let Some(close) = text[rule_start..].find(')') else {
                break;
            };
            let rule = text[rule_start..rule_start + close].trim().to_string();
            let line = t.line as usize + text[..from + pos].matches('\n').count();
            let after = &text[rule_start + close + 1..];
            let rationale_region = match after.find(NEEDLE) {
                Some(next) => &after[..next],
                None => after,
            };
            let has_rationale = rationale_region
                .trim_end_matches("*/")
                .chars()
                .any(|c| c.is_alphanumeric());
            out.push(Allow {
                rule,
                line,
                has_rationale,
            });
            from = rule_start + close + 1;
        }
    }
    out
}

fn brace_delta(code_line: &str) -> i32 {
    let mut d = 0;
    for c in code_line.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn find_token(line: &str, tokens: &[&'static str]) -> Option<&'static str> {
    tokens.iter().copied().find(|t| line.contains(t))
}

/// `lint:allow(rule)` in a comment on the diagnostic's line or the line
/// above suppresses it.
fn is_allowed(prepared: &[Prepared], d: &Diagnostic) -> bool {
    prepared.iter().find(|p| p.path == d.file).is_some_and(|p| {
        p.allows
            .iter()
            .any(|a| a.rule == d.rule && (a.line == d.line || a.line + 1 == d.line))
    })
}

// ---------------------------------------------------------------------------
// Rule: allow-without-rationale
// ---------------------------------------------------------------------------

/// Every `lint:allow` is a hole in an invariant; a hole with no explanation
/// cannot be audited. Text after the `(rule)` closer is the rationale.
fn allow_without_rationale(p: &Prepared) -> Vec<Diagnostic> {
    p.allows
        .iter()
        .filter(|a| !a.has_rationale)
        .map(|a| Diagnostic {
            file: p.path.clone(),
            line: a.line,
            rule: RULE_ALLOW_AUDIT,
            message: format!(
                "`lint:allow({})` has no rationale — state why the `{}` \
                 invariant holds here, after the closing paren",
                a.rule, a.rule
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Rule: guard-across-transport
// ---------------------------------------------------------------------------

/// A lock guard bound by a simple `let` statement, live until its scope
/// closes or it is explicitly dropped.
struct LiveGuard {
    name: String,
    bound_at: usize, // 1-based line
    depth: i32,
}

fn guard_across_transport(p: &Prepared) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut depth: i32 = 0;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut i = 0;
    while i < p.code.len() {
        let line = &p.code[i];
        if !p.is_lib_code(i) {
            depth += brace_delta(line);
            i += 1;
            continue;
        }

        // Same-expression hazard: a guard temporary created in the very
        // expression that crosses the boundary outlives the whole statement.
        if let (Some(acq), Some(tr)) = (
            find_token(line, ACQUIRE_TOKENS),
            find_token(line, TRANSPORT_TOKENS),
        ) {
            diags.push(Diagnostic {
                file: p.path.clone(),
                line: i + 1,
                rule: RULE_GUARD_ACROSS_TRANSPORT,
                message: format!(
                    "lock guard (`{acq}`) and transport call (`{tr}`) in the same \
                     statement: the guard temporary is held across the boundary"
                ),
            });
        } else if let Some(tr) = find_token(line, TRANSPORT_TOKENS) {
            for g in &live {
                diags.push(Diagnostic {
                    file: p.path.clone(),
                    line: i + 1,
                    rule: RULE_GUARD_ACROSS_TRANSPORT,
                    message: format!(
                        "transport call (`{tr}`) while lock guard `{}` (bound on \
                         line {}) is held",
                        g.name, g.bound_at
                    ),
                });
            }
        }

        // Guard bindings: `let g = foo.lock();` possibly wrapped over
        // multiple lines. Join until the statement's `;` (give up at `{`,
        // which means a closure/block initializer this scanner won't model).
        if let Some(stmt_end) = let_statement_end(&p.code, i) {
            let joined: String = p.code[i..=stmt_end].join(" ");
            if let Some((name, bound_line)) = guard_binding(&joined, i) {
                live.push(LiveGuard {
                    name,
                    bound_at: bound_line + 1,
                    depth,
                });
            }
            // Note: no skip past stmt_end — intermediate lines still get
            // depth-tracked below, one per loop iteration.
        }

        // Explicit early release.
        live.retain(|g| !line.contains(&format!("drop({})", g.name)));

        depth += brace_delta(line);
        live.retain(|g| depth >= g.depth);
        i += 1;
    }
    diags
}

/// If line `i` starts a `let` statement, returns the index of the line where
/// the statement's `;` appears (same line for the common case). Returns
/// `None` when the statement opens a block before terminating.
fn let_statement_end(code: &[String], i: usize) -> Option<usize> {
    let first = code[i].trim_start();
    if !(first.starts_with("let ") || first.starts_with("let(")) {
        return None;
    }
    for (j, line) in code.iter().enumerate().skip(i).take(8) {
        let semi = line.find(';');
        let brace = line.find('{');
        match (semi, brace) {
            (Some(s), Some(b)) if b < s => return None,
            (Some(_), _) => return Some(j),
            (None, Some(_)) => return None,
            (None, None) => {}
        }
    }
    None
}

/// If `joined` is a `let <ident> = <expr ending in an acquire call>;`
/// statement, returns the bound name. A leading `*` after `=` is a deref
/// copy, not a guard; destructuring patterns are skipped (conservative).
fn guard_binding(joined: &str, line_idx: usize) -> Option<(String, usize)> {
    let s = joined.trim();
    let rest = s.strip_prefix("let ")?;
    let (pat, init) = rest.split_once('=')?;
    let init = init.trim();
    if init.starts_with('*') {
        return None;
    }
    let body = init.strip_suffix(';')?.trim_end();
    let body = body.strip_suffix('?').unwrap_or(body).trim_end();
    if !ACQUIRE_TOKENS.iter().any(|t| body.ends_with(t)) {
        return None;
    }
    let mut pat = pat.trim();
    if let Some((p, _ty)) = pat.split_once(':') {
        pat = p.trim();
    }
    let pat = pat.strip_prefix("mut ").unwrap_or(pat);
    let simple = !pat.is_empty()
        && pat
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_');
    simple.then(|| (pat.to_string(), line_idx))
}

// ---------------------------------------------------------------------------
// Rule: single-shard-guard
// ---------------------------------------------------------------------------

/// Expression tokens that reach into the striped object space: the
/// per-shard accessor and direct indexing of the stripe array.
const SHARD_SOURCE_TOKENS: &[&str] = &[".shard(", ".shards["];

/// The sanctioned multi-shard acquisition paths. Both sort by stripe index
/// before locking, so they cannot deadlock against each other; ad-hoc
/// second acquisitions lock in textual order and can.
const MULTI_SHARD_OK_TOKENS: &[&str] = &["lock_pair(", "lock_many("];

/// Shard stripes are leaf locks ordered by index: holding one while taking
/// another inverts the order whenever the two ids hash the other way
/// around. Any section needing two stripes must go through
/// [`MULTI_SHARD_OK_TOKENS`], which sort first.
fn single_shard_guard(p: &Prepared) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut depth: i32 = 0;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut i = 0;
    while i < p.code.len() {
        let line = &p.code[i];
        if !p.is_lib_code(i) {
            depth += brace_delta(line);
            i += 1;
            continue;
        }
        if !MULTI_SHARD_OK_TOKENS.iter().any(|t| line.contains(t)) {
            // Shard acquisitions on this line: a shard source feeding an
            // acquire call. Counting both tokens keeps `self.shards.len()`
            // (no acquire) and `other.read()` (no shard source) out.
            let sources: usize = SHARD_SOURCE_TOKENS
                .iter()
                .map(|t| line.matches(t).count())
                .sum();
            let acquires: usize = ACQUIRE_TOKENS
                .iter()
                .map(|t| line.matches(t).count())
                .sum();
            let here = sources.min(acquires);
            if here >= 2 {
                diags.push(Diagnostic {
                    file: p.path.clone(),
                    line: i + 1,
                    rule: RULE_SINGLE_SHARD_GUARD,
                    message: "two shard guards acquired in one statement lock in \
                              textual order, not stripe order; use `lock_pair`/\
                              `lock_many` for multi-shard sections"
                        .to_string(),
                });
            } else if here == 1 {
                for g in &live {
                    diags.push(Diagnostic {
                        file: p.path.clone(),
                        line: i + 1,
                        rule: RULE_SINGLE_SHARD_GUARD,
                        message: format!(
                            "shard guard acquired while shard guard `{}` (bound \
                             on line {}) is still held; use `lock_pair`/\
                             `lock_many` for multi-shard sections",
                            g.name, g.bound_at
                        ),
                    });
                }
            }
            // Track let-bound shard guards, mirroring guard-across-transport.
            if let Some(stmt_end) = let_statement_end(&p.code, i) {
                let joined: String = p.code[i..=stmt_end].join(" ");
                if SHARD_SOURCE_TOKENS.iter().any(|t| joined.contains(t)) {
                    if let Some((name, bound_line)) = guard_binding(&joined, i) {
                        live.push(LiveGuard {
                            name,
                            bound_at: bound_line + 1,
                            depth,
                        });
                    }
                }
            }
        }
        live.retain(|g| !line.contains(&format!("drop({})", g.name)));
        depth += brace_delta(line);
        live.retain(|g| depth >= g.depth);
        i += 1;
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule: no-io-under-shard-guard
// ---------------------------------------------------------------------------

/// Method-call tokens that reach the durability layer: the `Durable::log_*`
/// write-through hooks (names unambiguous enough to match on any receiver)
/// plus raw append/sync/commit calls qualified by a WAL/storage/durability
/// receiver — a bare `.append(` would flag every `Vec::append` under a
/// shard guard.
const WAL_IO_TOKENS: &[&str] = &[
    ".log_dirty(",
    ".log_op(",
    ".log_put_intent(",
    ".log_put_abandoned(",
    ".log_confirm(",
    ".log_clean(",
    ".log_client_state(",
    "wal.append(",
    "wal.sync(",
    "wal.commit(",
    "storage.append(",
    "storage.sync(",
    "durable.commit(",
];

/// Storage latency must never sit inside a shard critical section: a WAL
/// append can fsync (group commit), and a stalled disk would then stall
/// every invocation hashing to that stripe. The durability hooks read
/// object state under a short guard of their own and log *after* it is
/// released; this rule keeps that discipline from eroding.
fn no_io_under_shard_guard(p: &Prepared) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut depth: i32 = 0;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut i = 0;
    while i < p.code.len() {
        let line = &p.code[i];
        if !p.is_lib_code(i) {
            depth += brace_delta(line);
            i += 1;
            continue;
        }
        let shard_acquire = SHARD_SOURCE_TOKENS.iter().any(|t| line.contains(t))
            && find_token(line, ACQUIRE_TOKENS).is_some();
        if let Some(io) = find_token(line, WAL_IO_TOKENS) {
            // Same-statement hazard: the guard temporary created in the
            // expression feeding the IO call outlives the whole statement.
            if shard_acquire {
                diags.push(Diagnostic {
                    file: p.path.clone(),
                    line: i + 1,
                    rule: RULE_NO_IO_UNDER_SHARD_GUARD,
                    message: format!(
                        "durability call (`{io}`) and shard guard acquisition \
                         in the same statement: the guard temporary is held \
                         across the storage I/O"
                    ),
                });
            } else {
                for g in &live {
                    diags.push(Diagnostic {
                        file: p.path.clone(),
                        line: i + 1,
                        rule: RULE_NO_IO_UNDER_SHARD_GUARD,
                        message: format!(
                            "durability call (`{io}`) while shard guard `{}` \
                             (bound on line {}) is held; copy the state out, \
                             release the stripe, then log",
                            g.name, g.bound_at
                        ),
                    });
                }
            }
        }
        // Track let-bound shard guards, mirroring single-shard-guard.
        if let Some(stmt_end) = let_statement_end(&p.code, i) {
            let joined: String = p.code[i..=stmt_end].join(" ");
            if SHARD_SOURCE_TOKENS.iter().any(|t| joined.contains(t)) {
                if let Some((name, bound_line)) = guard_binding(&joined, i) {
                    live.push(LiveGuard {
                        name,
                        bound_at: bound_line + 1,
                        depth,
                    });
                }
            }
        }
        live.retain(|g| !line.contains(&format!("drop({})", g.name)));
        depth += brace_delta(line);
        live.retain(|g| depth >= g.depth);
        i += 1;
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule: no-unwrap-on-lock-or-decode
// ---------------------------------------------------------------------------

fn no_unwrap_on_lock_or_decode(p: &Prepared) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, line) in p.code.iter().enumerate() {
        if !p.is_lib_code(i) {
            continue;
        }
        for acq in ACQUIRE_TOKENS {
            for bad in [".unwrap()", ".expect("] {
                if line.contains(&format!("{acq}{bad}")) {
                    diags.push(Diagnostic {
                        file: p.path.clone(),
                        line: i + 1,
                        rule: RULE_NO_UNWRAP,
                        message: format!(
                            "`{bad}` directly on a lock acquisition (`{acq}`): \
                             the facade locks never fail, and std locks must \
                             not panic on poison outside tests"
                        ),
                    });
                }
            }
        }
        if let Some(pos) = line.find("decode(").or_else(|| line.find("decode_inner(")) {
            let tail = &line[pos..];
            for bad in [".unwrap()", ".expect("] {
                if tail.contains(bad) {
                    diags.push(Diagnostic {
                        file: p.path.clone(),
                        line: i + 1,
                        rule: RULE_NO_UNWRAP,
                        message: format!(
                            "`{bad}` on a decode result: malformed frames are \
                             expected input and must surface as ObiError::Decode"
                        ),
                    });
                }
            }
        }
    }
    diags
}

// ---------------------------------------------------------------------------
// Rule: wire-tag-coverage
// ---------------------------------------------------------------------------

const MESSAGE_RS: &str = "crates/wire/src/message.rs";

fn wire_tag_coverage(prepared: &[Prepared]) -> Vec<Diagnostic> {
    let Some(msg) = prepared.iter().find(|p| p.path == MESSAGE_RS) else {
        return Vec::new();
    };
    let variants = enum_variants(msg, "pub enum Message");
    if variants.is_empty() {
        return vec![Diagnostic {
            file: msg.path.clone(),
            line: 1,
            rule: RULE_WIRE_TAG_COVERAGE,
            message: "could not locate `pub enum Message` variants".into(),
        }];
    }
    // `pub fn encode(` pins Message's own encoder: the file also contains
    // private `fn encode` helpers on WireMode/NameOp/ReplicaBatch and a
    // `pub fn encoded_size_hint`.
    let encode = fn_body_text(msg, "pub fn encode(");
    let decode = fn_body_text(msg, "fn decode_inner(");
    // Roundtrip coverage: the variant appears in message.rs's own test
    // module or in any integration-test file.
    let mut test_text = String::new();
    for (i, line) in msg.code.iter().enumerate() {
        if msg.in_test_mod[i] {
            test_text.push_str(line);
            test_text.push('\n');
        }
    }
    for p in prepared {
        if p.path.starts_with("tests/") {
            for line in &p.code {
                test_text.push_str(line);
                test_text.push('\n');
            }
        }
    }

    let mut diags = Vec::new();
    for (name, line) in &variants {
        let token = format!("Message::{name}");
        let mut missing = Vec::new();
        if !contains_token(&encode, &token) {
            missing.push("an encode arm");
        }
        if !contains_token(&decode, &token) {
            missing.push("a decode arm");
        }
        if !contains_token(&test_text, &token) {
            missing.push("a roundtrip test");
        }
        if !missing.is_empty() {
            diags.push(Diagnostic {
                file: msg.path.clone(),
                line: *line,
                rule: RULE_WIRE_TAG_COVERAGE,
                message: format!(
                    "wire variant `{name}` is missing {}",
                    missing.join(" and ")
                ),
            });
        }
    }
    diags
}

/// Collects `(variant, 1-based line)` for a braced enum, skipping
/// attributes, doc comments, and nested struct-variant fields.
fn enum_variants(p: &Prepared, header: &str) -> Vec<(String, usize)> {
    let Some(start) = p.code.iter().position(|l| l.contains(header)) else {
        return Vec::new();
    };
    let mut variants = Vec::new();
    let mut depth = 0i32;
    for (i, line) in p.code.iter().enumerate().skip(start) {
        if i > start && depth <= 0 {
            break;
        }
        if i > start && depth == 1 {
            let t = line.trim();
            let ident: String = t
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if ident
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            {
                variants.push((ident, i + 1));
            }
        }
        depth += brace_delta(line);
    }
    variants
}

/// The sanitized text of the first function whose signature contains
/// `header`, from its opening brace to the matching close.
fn fn_body_text(p: &Prepared, header: &str) -> String {
    let Some(start) = p
        .code
        .iter()
        .position(|l| l.contains(header) && !l.trim_start().starts_with("//"))
    else {
        return String::new();
    };
    let mut out = String::new();
    let mut depth = 0i32;
    let mut opened = false;
    for line in p.code.iter().skip(start) {
        out.push_str(line);
        out.push('\n');
        depth += brace_delta(line);
        if line.contains('{') {
            opened = true;
        }
        if opened && depth <= 0 {
            break;
        }
    }
    out
}

/// True when `token` occurs in `text` not followed by an identifier char
/// (so `Message::Get` does not match `Message::GetMany`).
fn contains_token(text: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        let end = from + pos + token.len();
        let boundary = text[end..]
            .chars()
            .next()
            .map(|c| !(c.is_alphanumeric() || c == '_'))
            .unwrap_or(true);
        if boundary {
            return true;
        }
        from = end;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: metrics-coverage
// ---------------------------------------------------------------------------

const METRICS_RS: &str = "crates/util/src/metrics.rs";

fn metrics_coverage(prepared: &[Prepared]) -> Vec<Diagnostic> {
    let Some(metrics) = prepared.iter().find(|p| p.path == METRICS_RS) else {
        return Vec::new();
    };
    // The `macro_rules! counters` definition region, by brace depth. Lines
    // inside it are the generation template, not hand-written accessors.
    let mut in_definition = vec![false; metrics.code.len()];
    let mut depth: i32 = 0;
    let mut in_def = false;
    for (i, line) in metrics.code.iter().enumerate() {
        let t = line.trim();
        if !in_def && t.starts_with("macro_rules!") && t.contains("counters") {
            in_def = true;
            depth = 0;
        }
        if in_def {
            in_definition[i] = true;
            depth += line.matches('{').count() as i32;
            depth -= line.matches('}').count() as i32;
            if depth <= 0 && line.contains('}') {
                in_def = false;
            }
        }
    }
    // Counter registrations: `incr_x, add_x, field;` lines inside the
    // `counters!` invocation (doc comments arrive blanked, so only the
    // entry lines parse as three identifiers).
    let mut counters: Vec<(String, String, String, usize)> = Vec::new();
    let mut in_macro = false;
    for (i, line) in metrics.code.iter().enumerate() {
        let t = line.trim();
        if !in_definition[i] && t.starts_with("counters!") && t.contains('{') {
            in_macro = true;
            continue;
        }
        if in_macro {
            if t.starts_with('}') {
                in_macro = false;
                continue;
            }
            let parts: Vec<&str> = t
                .trim_end_matches(';')
                .split(',')
                .map(str::trim)
                .collect();
            if parts.len() == 3 && parts.iter().all(|s| is_ident(s)) {
                counters.push((
                    parts[0].to_string(),
                    parts[1].to_string(),
                    parts[2].to_string(),
                    i + 1,
                ));
            }
        }
    }
    let mut diags = Vec::new();
    if counters.is_empty() {
        diags.push(Diagnostic {
            file: metrics.path.clone(),
            line: 1,
            rule: RULE_METRICS_COVERAGE,
            message: "no `counters!` invocation found; the metrics-coverage \
                      rule cannot see the counter registry (was the macro \
                      renamed?)"
                .to_string(),
        });
    }
    // Drift guard: snapshot/reset/since must be generated by the macro. A
    // hand-written copy outside the definition silently stops covering new
    // counters.
    for (i, line) in metrics.code.iter().enumerate() {
        if in_definition[i] {
            continue;
        }
        for name in ["fn snapshot(", "fn reset(", "fn since("] {
            if line.contains(name) {
                diags.push(Diagnostic {
                    file: metrics.path.clone(),
                    line: i + 1,
                    rule: RULE_METRICS_COVERAGE,
                    message: format!(
                        "`{}` is hand-written outside the `counters!` macro; \
                         it will drift from the counter registry — generate \
                         it from the macro instead",
                        name.trim_end_matches('(')
                    ),
                });
            }
        }
    }
    for (incr, add, field, line) in &counters {
        let incr_call = format!(".{incr}(");
        let add_call = format!(".{add}(");
        let used = prepared.iter().any(|p| {
            p.path != METRICS_RS
                && p.code
                    .iter()
                    .any(|l| l.contains(&incr_call) || l.contains(&add_call))
        });
        if !used {
            diags.push(Diagnostic {
                file: metrics.path.clone(),
                line: *line,
                rule: RULE_METRICS_COVERAGE,
                message: format!(
                    "metrics counter `{field}` is registered but neither \
                     `{incr}` nor `{add}` is ever called"
                ),
            });
        }
    }
    diags
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !s.chars().next().unwrap_or('0').is_ascii_digit()
}

// ---------------------------------------------------------------------------
// Rule: error-variant-coverage
// ---------------------------------------------------------------------------

const ERROR_RS: &str = "crates/util/src/error.rs";

fn error_variant_coverage(prepared: &[Prepared]) -> Vec<Diagnostic> {
    let Some(err) = prepared.iter().find(|p| p.path == ERROR_RS) else {
        return Vec::new();
    };
    let variants = enum_variants(err, "pub enum ObiError");
    let mut diags = Vec::new();
    for (name, line) in &variants {
        let token = format!("ObiError::{name}");
        let used = prepared.iter().any(|p| {
            p.path != ERROR_RS
                && p.code.iter().any(|l| contains_token(l, &token))
        });
        if !used {
            diags.push(Diagnostic {
                file: err.path.clone(),
                line: *line,
                rule: RULE_ERROR_VARIANT_COVERAGE,
                message: format!(
                    "error variant `{name}` is declared but never constructed \
                     or matched outside error.rs"
                ),
            });
        }
    }
    diags
}

#[cfg(test)]
mod proptests;
#[cfg(test)]
mod tests;

//! Property tests for the lexer's lossless-stream guarantees (see the
//! [`crate::lexer`] module docs): no panics on arbitrary input, adjacent and
//! exhaustive spans on `char` boundaries, reconstruction by concatenation,
//! and a masking projection that preserves line structure exactly.

use crate::lexer::{self, Kind};
use proptest::prelude::*;

/// Arbitrary source text, two ways: raw char soup (the vendored proptest
/// has no `any::<String>()`, so strings are built from `any::<char>()`),
/// and concatenations of a Rust-flavored alphabet chosen to hit the lexer's
/// tricky states — quote/hash openers, escapes, comment markers, multibyte
/// chars. `\r` is filtered only to keep the line-count property simple
/// (`str::lines` strips `\r` from line ends; masking turns a literal's
/// `\r` into a space).
const RUSTY: &[&str] = &[
    "\"", "'", "r#\"", "\"#", "#", "\\", "\\\"", "//", "/*", "*/", "\n",
    "b\"", "r\"", "b'", "fn", "{", "}", "(", ")", ";", "ident", "0x1f",
    "1.5e3", "'a", "'x'", "é", "💥", " ", "r#fn", "lock",
];

fn arbitrary_source() -> impl Strategy<Value = String> {
    let rusty = (0usize..RUSTY.len()).prop_map(|i| RUSTY[i]);
    prop_oneof![
        proptest::collection::vec(any::<char>(), 0..200)
            .prop_map(|cs| cs.into_iter().filter(|&c| c != '\r').collect()),
        proptest::collection::vec(rusty, 0..60).prop_map(|ps| ps.concat()),
    ]
}

proptest! {
    /// `lex` terminates without panicking and its spans tile the input:
    /// adjacent, exhaustive, on char boundaries, and concatenating every
    /// token's text reproduces the source byte-for-byte.
    #[test]
    fn spans_tile_the_input(src in arbitrary_source()) {
        let tokens = lexer::lex(&src);
        let mut pos = 0;
        for t in &tokens {
            prop_assert_eq!(t.start, pos, "gap or overlap at byte {}", pos);
            prop_assert!(t.end > t.start, "empty token at byte {}", pos);
            prop_assert!(src.is_char_boundary(t.start));
            prop_assert!(src.is_char_boundary(t.end));
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len(), "tokens do not reach end of input");
        let rebuilt: String = tokens.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    /// Line numbers are monotone and consistent with the newlines actually
    /// present in the source before each token.
    #[test]
    fn line_numbers_are_consistent(src in arbitrary_source()) {
        let tokens = lexer::lex(&src);
        for t in &tokens {
            let expected = 1 + src[..t.start].matches('\n').count() as u32;
            prop_assert_eq!(t.line, expected);
        }
    }

    /// The masked projection used by the per-line rules preserves line
    /// structure exactly: same line count as the source, and each masked
    /// line has the same char count as its source line — so `masked[i]`
    /// aligns with source line `i + 1` and columns stay meaningful.
    #[test]
    fn masking_preserves_line_structure(src in arbitrary_source()) {
        let tokens = lexer::lex(&src);
        let masked = lexer::masked_lines(&src, &tokens);
        let src_lines: Vec<&str> = src.lines().collect();
        prop_assert_eq!(masked.len(), src_lines.len());
        for (m, s) in masked.iter().zip(&src_lines) {
            prop_assert_eq!(m.chars().count(), s.chars().count());
        }
    }

    /// Masking only blanks literal/comment interiors — every non-space
    /// output char exists identically in the source line, and nothing
    /// inside a string/char/comment token survives.
    #[test]
    fn masking_never_invents_code(src in arbitrary_source()) {
        let tokens = lexer::lex(&src);
        let masked = lexer::masked_lines(&src, &tokens);
        let src_lines: Vec<&str> = src.lines().collect();
        for (m, s) in masked.iter().zip(&src_lines) {
            for (mc, sc) in m.chars().zip(s.chars()) {
                prop_assert!(mc == sc || mc == ' ');
            }
        }
    }

    /// `significant` yields strictly increasing indices and never a
    /// whitespace or comment token.
    #[test]
    fn significant_skips_trivia_in_order(src in arbitrary_source()) {
        let tokens = lexer::lex(&src);
        let sig = lexer::significant(&tokens);
        let mut prev: Option<usize> = None;
        for &i in &sig {
            prop_assert!(prev.is_none_or(|p| i > p));
            prop_assert!(!matches!(
                tokens[i].kind,
                Kind::Whitespace | Kind::LineComment | Kind::BlockComment
            ));
            prev = Some(i);
        }
    }

    /// The item model is total: it never panics on arbitrary input, and
    /// every fn body range it reports is a well-formed token-index pair.
    #[test]
    fn model_is_total_on_arbitrary_input(src in arbitrary_source()) {
        let tokens = lexer::lex(&src);
        let m = crate::model::build(&src, &tokens);
        for f in &m.fns {
            prop_assert!(f.body.0 <= f.body.1);
            prop_assert!(f.body.1 < tokens.len());
        }
    }
}

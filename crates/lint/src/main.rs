//! `obiwan-lint` binary: scan the workspace, print diagnostics, exit
//! nonzero when any rule fires.
//!
//! ```text
//! cargo run -p obiwan-lint            # analyze the containing workspace
//! cargo run -p obiwan-lint -- <dir>   # analyze another tree (used by CI
//!                                     # and the fixture tests)
//! cargo run -p obiwan-lint -- --emit-lock-graph LOCK_GRAPH.json
//!                                     # also write the static lock graph
//! cargo run -p obiwan-lint -- --budget-ms 5000
//!                                     # fail if the full run exceeds 5 s
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut emit: Option<PathBuf> = None;
    let mut budget_ms: Option<u128> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit-lock-graph" => match args.next() {
                Some(p) => emit = Some(PathBuf::from(p)),
                None => return usage("--emit-lock-graph needs a path"),
            },
            "--budget-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => budget_ms = Some(ms),
                None => return usage("--budget-ms needs a number"),
            },
            _ if root.is_none() => root = Some(PathBuf::from(arg)),
            _ => return usage("at most one root directory"),
        }
    }
    let root = root.unwrap_or_else(obiwan_lint::default_root);

    let started = Instant::now();
    let files = match obiwan_lint::scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("obiwan-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let diags = obiwan_lint::check(&files);
    if let Some(path) = emit {
        let json = obiwan_lint::lock_graph(&files).to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("obiwan-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("obiwan-lint: lock graph written to {}", path.display());
    }
    let elapsed = started.elapsed();

    for d in &diags {
        println!("{d}");
    }
    if let Some(budget) = budget_ms {
        let spent = elapsed.as_millis();
        if spent > budget {
            eprintln!("obiwan-lint: took {spent} ms, over the {budget} ms budget");
            return ExitCode::from(2);
        }
        println!("obiwan-lint: completed in {spent} ms (budget {budget} ms)");
    }
    if diags.is_empty() {
        println!("obiwan-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!("obiwan-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "obiwan-lint: {err}\nusage: obiwan-lint [ROOT] [--emit-lock-graph PATH] [--budget-ms N]"
    );
    ExitCode::from(2)
}

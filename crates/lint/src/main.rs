//! `obiwan-lint` binary: scan the workspace, print diagnostics, exit
//! nonzero when any rule fires.
//!
//! ```text
//! cargo run -p obiwan-lint            # analyze the containing workspace
//! cargo run -p obiwan-lint -- <dir>   # analyze another tree (used by CI
//!                                     # and the fixture tests)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(obiwan_lint::default_root);
    let diags = match obiwan_lint::run(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("obiwan-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("obiwan-lint: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!("obiwan-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

use super::*;

fn lib(path: &str, body: &str) -> SourceFile {
    SourceFile::new(path, body)
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.rule).collect()
}

// -- guard-across-transport --------------------------------------------------

#[test]
fn live_guard_across_call_is_flagged_with_both_lines() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl S {
    pub fn bad(&self) {
        let guard = self.state.lock();
        self.transport.call(1, 2, frame);
    }
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_GUARD_ACROSS_TRANSPORT]);
    assert_eq!(diags[0].line, 5);
    assert!(diags[0].message.contains("`guard`"));
    assert!(diags[0].message.contains("line 4"));
}

#[test]
fn same_statement_guard_temporary_is_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        "fn f(t: &T) { t.peer.send(t.frame.lock().clone()); }\n",
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_GUARD_ACROSS_TRANSPORT]);
}

#[test]
fn dropped_guard_is_not_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s.state.lock();
    let frame = guard.frame();
    drop(guard);
    s.transport.call(frame);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn guard_scoped_in_block_is_not_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let frame = {
        let topology = s.topology.read();
        topology.frame()
    };
    s.transport.call(frame);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn deref_copy_is_not_a_guard() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let policy = *s.policy.lock();
    s.transport.call(policy.deadline);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn multiline_let_binding_is_tracked() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s
        .state
        .lock();
    s.transport.recv(1);
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_GUARD_ACROSS_TRANSPORT]);
    assert_eq!(diags[0].line, 6);
}

#[test]
fn tokens_inside_strings_and_comments_are_ignored() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    // let guard = s.state.lock(); then s.transport.call(..)
    let doc = "how to .lock() and .call( things";
    s.log(doc);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn test_module_and_integration_tests_are_exempt() {
    let in_mod = lib(
        "crates/demo/src/lib.rs",
        r#"
#[cfg(test)]
mod tests {
    fn f(s: &S) {
        let guard = s.state.lock();
        s.transport.call(1);
    }
}
"#,
    );
    let in_tests_dir = lib(
        "tests/demo.rs",
        "fn f(s: &S) {\n    let guard = s.state.lock();\n    s.transport.call(1);\n}\n",
    );
    assert!(check(&[in_mod, in_tests_dir]).is_empty());
}

#[test]
fn allow_comment_on_same_or_previous_line_suppresses() {
    let same = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s.state.lock();
    s.transport.call(1); // lint:allow(guard-across-transport) nested faults
}
"#,
    );
    let above = lib(
        "crates/other/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s.state.lock();
    // lint:allow(guard-across-transport) fixture: hold is deliberate here
    s.transport.call(1);
}
"#,
    );
    assert!(check(&[same, above]).is_empty());
}

#[test]
fn allow_for_a_different_rule_does_not_suppress() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s.state.lock();
    s.transport.call(1); // lint:allow(no-unwrap-on-lock-or-decode) wrong rule on purpose
}
"#,
    );
    assert_eq!(check(&[f]).len(), 1);
}

// -- single-shard-guard ------------------------------------------------------

#[test]
fn second_shard_guard_while_one_is_held_is_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Space {
    fn transfer(&self, a: ObjId, b: ObjId) {
        let src = self.shard(a).write();
        let dst = self.shard(b).write();
        dst.put(src.take());
    }
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_SINGLE_SHARD_GUARD]);
    assert_eq!(diags[0].line, 5);
    assert!(diags[0].message.contains("`src`"));
    assert!(diags[0].message.contains("line 4"));
    assert!(diags[0].message.contains("lock_pair"));
}

#[test]
fn two_shard_guards_in_one_statement_are_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        "fn f(s: &Space) { merge(s.shard(a).write(), s.shard(b).write()); }\n",
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_SINGLE_SHARD_GUARD]);
    assert!(diags[0].message.contains("one statement"));
}

#[test]
fn lock_pair_and_lock_many_are_the_sanctioned_paths() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn pair(s: &Space, a: ObjId, b: ObjId) {
    let (ga, gb) = lock_pair(s.shard(a), s.shard(b));
}

fn all(s: &Space) {
    let mut guards = lock_many(&s.shards);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn sequential_scoped_shard_guards_are_clean() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &Space, a: ObjId, b: ObjId) {
    let moved = {
        let g = s.shard(a).write();
        g.take()
    };
    let g = s.shard(b).write();
    g.put(moved);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn dropping_the_shard_guard_releases_it_for_the_rule() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &Space, a: ObjId, b: ObjId) {
    let g = s.shard(a).write();
    drop(g);
    let h = s.shard(b).write();
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn non_shard_lock_while_shard_guard_held_is_not_this_rules_business() {
    // Holding a shard guard plus an unrelated lock is governed by the
    // runtime lockcheck order graph, not this rule.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &Space, a: ObjId) {
    let g = s.shard(a).write();
    let exports = s.exports.read();
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn shard_guard_dies_with_its_function_scope() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Space {
    fn first(&self, a: ObjId) {
        let g = self.shard(a).write();
    }

    fn second(&self, b: ObjId) {
        let g = self.shard(b).write();
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn allow_comment_suppresses_single_shard_guard() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &Space, a: ObjId, b: ObjId) {
    let src = s.shard(a).write();
    // lint:allow(single-shard-guard) ids pre-sorted by caller
    let dst = s.shard(b).write();
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

// -- no-io-under-shard-guard -------------------------------------------------

#[test]
fn wal_append_while_shard_guard_held_is_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Space {
    fn bad(&self, a: ObjId) {
        let g = self.shard(a).write();
        self.wal.append(&g.frame());
    }
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_NO_IO_UNDER_SHARD_GUARD]);
    assert_eq!(diags[0].line, 5);
    assert!(diags[0].message.contains("`g`"));
    assert!(diags[0].message.contains("line 4"));
    assert!(diags[0].message.contains("`wal.append(`"));
}

#[test]
fn vec_append_under_shard_guard_is_not_durability_io() {
    // Only receiver-qualified append/sync/commit count as WAL I/O; a plain
    // `Vec::append` (or any unrelated `.commit()`) under a shard guard is
    // the shard's own business.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn collect(s: &Space, a: ObjId, out: &mut Vec<ObjId>) {
    let g = s.shard(a).write();
    let mut batch = g.touched_ids();
    out.append(&mut batch);
    g.txn().commit();
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn log_call_in_the_same_statement_as_a_shard_acquire_is_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        "fn f(s: &Space, d: &Durable, a: ObjId) { d.log_dirty(a, s.shard(a).read().state()); }\n",
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_NO_IO_UNDER_SHARD_GUARD]);
    assert!(diags[0].message.contains("same statement"));
}

#[test]
fn logging_after_the_guard_is_released_is_clean() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn scoped(s: &Space, d: &Durable, a: ObjId) {
    let state = {
        let g = s.shard(a).read();
        g.state()
    };
    d.log_dirty(a, state);
}

fn dropped(s: &Space, d: &Durable, a: ObjId) {
    let g = s.shard(a).write();
    let state = g.state();
    drop(g);
    d.log_op(a, state);
    d.commit();
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn io_with_no_shard_guard_in_sight_is_clean() {
    // Non-shard locks are the runtime lockcheck's business; the WAL's own
    // internal mutex in particular must not trip this rule.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(w: &Wal, frame: &[u8]) {
    let state = w.state.lock();
    w.storage.append("wal", frame);
    w.storage.sync("wal");
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn allow_comment_suppresses_no_io_under_shard_guard() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &Space, durable: &Durable, a: ObjId) {
    let g = s.shard(a).write();
    // lint:allow(no-io-under-shard-guard) fixture: documented deliberate hold
    durable.commit();
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

// -- no-unwrap-on-lock-or-decode --------------------------------------------

#[test]
fn unwrap_on_lock_and_expect_on_decode_are_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let n = *s.state.lock().unwrap();
    let m = Message::decode(&frame).expect("decodes");
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(
        rules_fired(&diags),
        vec![RULE_NO_UNWRAP, RULE_NO_UNWRAP]
    );
    assert_eq!((diags[0].line, diags[1].line), (3, 4));
}

#[test]
fn unwrap_in_tests_and_on_other_results_is_fine() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let v: u32 = "7".parse().unwrap();
    let b = s.buffer.try_into().unwrap();
}

#[cfg(test)]
mod tests {
    fn g(s: &S) {
        let n = *s.state.lock().unwrap();
        let m = Message::decode(&frame).unwrap();
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

// -- wire-tag-coverage -------------------------------------------------------

fn message_rs(encode_arms: &str, decode_arms: &str, test_refs: &str) -> SourceFile {
    lib(
        "crates/wire/src/message.rs",
        &format!(
            r#"
pub enum Message {{
    Ping {{ request: u64 }},
    Pong {{ request: u64 }},
}}

impl Message {{
    pub fn encode(&self) -> Vec<u8> {{
        match self {{
            {encode_arms}
        }}
    }}

    fn decode_inner(buf: &[u8]) -> Result<Message, Error> {{
        match tag {{
            {decode_arms}
        }}
    }}
}}

#[cfg(test)]
mod tests {{
    fn all_messages() {{
        {test_refs}
    }}
}}
"#
        ),
    )
}

#[test]
fn fully_covered_variants_are_clean() {
    let f = message_rs(
        "Message::Ping { .. } => 1, Message::Pong { .. } => 2,",
        "1 => Message::Ping { request }, 2 => Message::Pong { request },",
        "let _ = [Message::Ping { request: 1 }, Message::Pong { request: 1 }];",
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn missing_decode_arm_and_test_are_reported() {
    let f = message_rs(
        "Message::Ping { .. } => 1, Message::Pong { .. } => 2,",
        "1 => Message::Ping { request },",
        "let _ = Message::Ping { request: 1 };",
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_WIRE_TAG_COVERAGE]);
    assert!(diags[0].message.contains("`Pong`"));
    assert!(diags[0].message.contains("a decode arm"));
    assert!(diags[0].message.contains("a roundtrip test"));
    // Points at the variant's declaration line.
    assert_eq!(diags[0].line, 4);
}

#[test]
fn roundtrip_coverage_may_live_in_integration_tests() {
    let f = message_rs(
        "Message::Ping { .. } => 1, Message::Pong { .. } => 2,",
        "1 => Message::Ping { request }, 2 => Message::Pong { request },",
        "let _ = Message::Ping { request: 1 };",
    );
    let t = lib(
        "tests/wire_properties.rs",
        "fn roundtrip() { let _ = Message::Pong { request: 1 }; }\n",
    );
    assert!(check(&[f, t]).is_empty());
}

#[test]
fn variant_prefix_does_not_shadow_longer_variant() {
    // `Message::Ping` occurrences must not satisfy coverage for a
    // hypothetical `Message::PingExtra`.
    let f = lib(
        "crates/wire/src/message.rs",
        r#"
pub enum Message {
    Ping { request: u64 },
    PingExtra { request: u64 },
}

impl Message {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Message::Ping { .. } => 1,
            Message::PingExtra { .. } => 2,
        }
    }

    fn decode_inner(buf: &[u8]) -> Result<Message, Error> {
        match tag {
            1 => Message::Ping { request },
            2 => Message::PingExtra { request },
        }
    }
}

#[cfg(test)]
mod tests {
    fn all_messages() {
        let _ = Message::Ping { request: 1 };
    }
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_WIRE_TAG_COVERAGE]);
    assert!(diags[0].message.contains("`PingExtra`"));
}

// -- metrics-coverage --------------------------------------------------------

fn metrics_rs() -> SourceFile {
    lib(
        "crates/util/src/metrics.rs",
        r#"
macro_rules! counters {
    ($($(#[$doc:meta])* $incr:ident, $add:ident, $field:ident;)*) => {
        impl Metrics {
            pub fn snapshot(&self) -> MetricsSnapshot { todo!() }
            pub fn reset(&self) { todo!() }
        }
    };
}

counters! {
    incr_messages_sent, add_messages_sent, messages_sent;
    incr_orphaned, add_orphaned, orphaned_counter;
}
"#,
    )
}

#[test]
fn unincremented_counter_is_reported_at_its_registration_line() {
    let user = lib(
        "crates/net/src/mem.rs",
        "fn f(m: &Metrics) { m.incr_messages_sent(); }\n",
    );
    let diags = check(&[metrics_rs(), user]);
    assert_eq!(rules_fired(&diags), vec![RULE_METRICS_COVERAGE]);
    assert!(diags[0].message.contains("`orphaned_counter`"));
    assert_eq!(diags[0].line, 13);
}

#[test]
fn add_variant_counts_as_usage() {
    let user = lib(
        "crates/net/src/mem.rs",
        "fn f(m: &Metrics) { m.incr_messages_sent(); m.add_orphaned(3); }\n",
    );
    assert!(check(&[metrics_rs(), user]).is_empty());
}

#[test]
fn snapshot_inside_the_macro_definition_is_not_drift() {
    // The base fixture defines `fn snapshot`/`fn reset` inside the
    // `macro_rules! counters` template; that is the generator, not drift.
    let user = lib(
        "crates/net/src/mem.rs",
        "fn f(m: &Metrics) { m.incr_messages_sent(); m.add_orphaned(3); }\n",
    );
    assert!(check(&[metrics_rs(), user]).is_empty());
}

#[test]
fn hand_written_snapshot_outside_the_macro_is_drift() {
    let metrics = lib(
        "crates/util/src/metrics.rs",
        r#"
counters! {
    incr_messages_sent, add_messages_sent, messages_sent;
}

impl Metrics {
    pub fn since(&self) -> MetricsSnapshot { todo!() }
}
"#,
    );
    let user = lib(
        "crates/net/src/mem.rs",
        "fn f(m: &Metrics) { m.incr_messages_sent(); }\n",
    );
    let diags = check(&[metrics, user]);
    assert_eq!(rules_fired(&diags), vec![RULE_METRICS_COVERAGE]);
    assert!(diags[0].message.contains("`fn since`"));
    assert!(diags[0].message.contains("drift"));
    assert_eq!(diags[0].line, 7);
}

#[test]
fn missing_counters_invocation_is_reported() {
    let metrics = lib(
        "crates/util/src/metrics.rs",
        "impl Metrics { pub fn new() -> Self { todo!() } }\n",
    );
    let diags = check(&[metrics]);
    assert_eq!(rules_fired(&diags), vec![RULE_METRICS_COVERAGE]);
    assert!(diags[0].message.contains("no `counters!` invocation"));
}

// -- error-variant-coverage --------------------------------------------------

#[test]
fn unconstructed_error_variant_is_reported() {
    let err = lib(
        "crates/util/src/error.rs",
        r#"
pub enum ObiError {
    Timeout { elapsed: u64 },
    NeverUsed,
}

impl ObiError {
    fn describe(&self) -> &str {
        match self {
            ObiError::Timeout { .. } => "timeout",
            ObiError::NeverUsed => "never",
        }
    }
}
"#,
    );
    let user = lib(
        "crates/rmi/src/client.rs",
        "fn f() -> ObiError { ObiError::Timeout { elapsed: 1 } }\n",
    );
    let diags = check(&[err, user]);
    assert_eq!(rules_fired(&diags), vec![RULE_ERROR_VARIANT_COVERAGE]);
    assert!(diags[0].message.contains("`NeverUsed`"));
}

// -- lock-order-cycle --------------------------------------------------------

#[test]
fn interprocedural_lock_inversion_is_flagged_at_the_first_site() {
    // Neither fn acquires both locks directly — the AB/BA pair only exists
    // through the call graph.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Registry {
    pub fn flush(&self) {
        let meta = self.meta.lock();
        self.touch_data();
        meta.mark();
    }

    fn touch_data(&self) {
        self.data.lock().mark();
    }

    pub fn reindex(&self) {
        let data = self.data.lock();
        self.touch_meta();
        data.mark();
    }

    fn touch_meta(&self) {
        self.meta.lock().mark();
    }
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_LOCK_ORDER_CYCLE]);
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("Registry::meta"));
    assert!(diags[0].message.contains("Registry::data"));
    assert!(diags[0].message.contains("crates/demo/src/lib.rs:4"));
}

#[test]
fn consistent_lock_order_is_clean() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Registry {
    pub fn flush(&self) {
        let meta = self.meta.lock();
        self.touch_data();
        meta.mark();
    }

    fn touch_data(&self) {
        self.data.lock().mark();
    }

    pub fn reindex(&self) {
        let meta = self.meta.lock();
        self.touch_data();
        meta.mark();
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn allow_on_the_anchor_line_suppresses_lock_order_cycle() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Registry {
    pub fn flush(&self) {
        // lint:allow(lock-order-cycle) runtime order is fixed by an index comparison
        let meta = self.meta.lock();
        self.touch_data();
        meta.mark();
    }

    fn touch_data(&self) {
        self.data.lock().mark();
    }

    pub fn reindex(&self) {
        let data = self.data.lock();
        self.touch_meta();
        data.mark();
    }

    fn touch_meta(&self) {
        self.meta.lock().mark();
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn spawned_closures_are_a_thread_barrier_not_a_hold() {
    // `start` holds `meta` textually "across" the spawn, but the closure
    // body runs on another thread with an empty held set — without the
    // barrier this would pair with `opposite` into a false AB/BA cycle.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Hub {
    pub fn start(&self) {
        let g = self.meta.lock();
        spawn(move || {
            self.data.lock().touch();
        });
        g.mark();
    }

    pub fn opposite(&self) {
        let d = self.data.lock();
        self.grab_meta();
        d.mark();
    }

    fn grab_meta(&self) {
        self.meta.lock().mark();
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn guard_returning_callee_holds_its_lock_in_the_caller() {
    // `enter` returns a guard, so its acquisition outlives the call and is
    // held across `touch_aux` — that direction plus `opposite` is a real
    // interprocedural inversion the virtual-hold mechanism must see.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl P {
    fn enter(&self) -> SpaceGuard<'_> {
        self.inner.lock()
    }

    pub fn use_both(&self) {
        let g = self.enter();
        self.touch_aux();
        g.mark();
    }

    fn touch_aux(&self) {
        self.aux.lock().mark();
    }

    pub fn opposite(&self) {
        let a = self.aux.lock();
        self.grab_inner();
        a.mark();
    }

    fn grab_inner(&self) {
        self.inner.lock().mark();
    }
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_LOCK_ORDER_CYCLE]);
    assert!(diags[0].message.contains("P::inner"));
    assert!(diags[0].message.contains("P::aux"));
}

#[test]
fn data_returning_callee_releases_its_locks_at_the_call() {
    // `peek_class` let-binds a read guard internally, but returns plain
    // data: by the time `combine` takes `other`, the classes lock is gone
    // (the expire-at-`)` mechanism). Only the `opposite` direction exists,
    // so no cycle.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Reg {
    fn peek_class(&self) -> u32 {
        let g = self.classes.read();
        g.val()
    }

    pub fn combine(&self) -> u32 {
        self.peek_class() + self.other.lock().val()
    }

    pub fn opposite(&self) {
        let o = self.other.lock();
        let v = self.peek_class();
        o.put(v);
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn callee_statement_temps_are_not_held_around_block_heads() {
    // `flag_now`'s read guard never escapes its own statement in the
    // callee, so it is not held inside the `if` block — without the
    // escaping-guard refinement this fabricated classes -> other, closing
    // a false cycle against `opposite`.
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Sp {
    fn flag_now(&self) -> bool {
        self.classes.read().flagged()
    }

    pub fn gate(&self) {
        if self.flag_now() {
            self.other.lock().mark();
        }
    }

    pub fn opposite(&self) {
        let o = self.other.lock();
        self.peek();
        o.mark();
    }

    fn peek(&self) {
        self.classes.read().mark();
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn lock_graph_export_contains_sites_and_edges() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"impl R {
    pub fn outer(&self) {
        let g = self.meta.lock();
        self.inner_take();
        g.mark();
    }

    fn inner_take(&self) {
        self.data.lock().mark();
    }
}
"#,
    );
    let g = lock_graph(&[f]);
    assert_eq!(g.sites.len(), 2);
    assert_eq!(g.edges.len(), 1);
    let json = g.to_json();
    assert!(
        json.contains("\"edge\": \"crates/demo/src/lib.rs:3 -> crates/demo/src/lib.rs:9\""),
        "unexpected export:\n{json}"
    );
    assert!(json.contains("\"class\": \"R::meta\""));
    assert!(json.contains("\"class\": \"R::data\""));
}

// -- wal-intent-lifecycle ----------------------------------------------------

#[test]
fn unretired_intent_at_the_tail_exit_is_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
pub fn put(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    apply_locally(id, state);
    let _ = seq;
    Status::Done
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_WAL_INTENT_LIFECYCLE]);
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("unretired intent"));
}

#[test]
fn early_return_before_the_confirm_is_flagged() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
pub fn put(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    if throttled() {
        return Status::Busy;
    }
    d.log_confirm(seq);
    Status::Done
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_WAL_INTENT_LIFECYCLE]);
    assert_eq!(diags[0].line, 3);
}

#[test]
fn confirm_abandon_err_and_handoff_exits_are_sanctioned() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
pub fn confirms(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    d.log_confirm(seq);
    Status::Done
}

pub fn abandons(d: &Durable, id: ObjId, state: Frame) -> Status {
    let seq = d.log_put_intent(id, state.frame_bytes());
    if !apply_checked(id, state) {
        d.log_put_abandoned(seq);
        return Status::Failed;
    }
    d.log_confirm(seq);
    Status::Done
}

pub fn errs(d: &Durable, id: ObjId, state: Frame) -> Result<Status, WalError> {
    let seq = d.log_put_intent(id, state.frame_bytes())?;
    if state.oversized() {
        return Err(WalError::Oversized);
    }
    d.log_confirm(seq);
    Ok(Status::Done)
}

pub fn hands_off(d: &Durable, id: ObjId, state: Frame) -> PendingPut {
    let seq = d.log_put_intent(id, state.frame_bytes());
    PendingPut { id, seq }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn intent_definition_and_test_code_are_exempt_from_lifecycle() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
impl Durable {
    pub fn log_put_intent(&self, id: ObjId, state: &[u8]) -> u64 {
        self.wal.append_intent(id, state)
    }
}

#[cfg(test)]
mod tests {
    fn leaky_on_purpose(d: &Durable) {
        let seq = d.log_put_intent(1, &[]);
        let _ = seq;
    }
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

#[test]
fn allow_suppresses_wal_intent_lifecycle() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
pub fn pinned(d: &Durable, id: ObjId) {
    // lint:allow(wal-intent-lifecycle) recovery table parks the seq at append time
    let seq = d.log_put_intent(id, frame());
    let _ = seq;
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

// -- allow-without-rationale -------------------------------------------------

#[test]
fn bare_allow_is_flagged_but_still_suppresses_its_target() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s.state.lock();
    // lint:allow(guard-across-transport)
    s.transport.call(1);
}
"#,
    );
    let diags = check(&[f]);
    assert_eq!(rules_fired(&diags), vec![RULE_ALLOW_AUDIT]);
    assert_eq!(diags[0].line, 4);
    assert!(diags[0].message.contains("guard-across-transport"));
}

#[test]
fn rationale_after_the_closing_paren_satisfies_the_audit() {
    let f = lib(
        "crates/demo/src/lib.rs",
        r#"
fn f(s: &S) {
    let guard = s.state.lock();
    /* lint:allow(guard-across-transport) handler never re-enters this lock */
    s.transport.call(1);
}
"#,
    );
    assert!(check(&[f]).is_empty());
}

// -- item model --------------------------------------------------------------

#[test]
fn returns_guard_keys_on_the_return_type_not_parameters() {
    let src = r#"
impl Space {
    pub fn enter(&self) -> ShardGuard<'_> { self.inner.lock() }
    pub fn reindex(&self, g: &mut ShardGuard<'_>) { g.mark(); }
    pub fn count(&self) -> usize { self.inner.lock().len() }
}
"#;
    let tokens = lexer::lex(src);
    let m = model::build(src, &tokens);
    let rg: Vec<(&str, bool)> = m
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.returns_guard))
        .collect();
    assert_eq!(
        rg,
        vec![("enter", true), ("reindex", false), ("count", false)]
    );
}

#[test]
fn model_recovers_impls_nested_test_mods_and_fn_bodies() {
    let src = r#"
impl Wal {
    pub fn append(&mut self, frame: &[u8]) -> u64 {
        self.seq += 1;
        self.seq
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn appends() {
        let w = Wal::default();
    }
}

pub fn free_standing() {}
"#;
    let tokens = lexer::lex(src);
    let m = model::build(src, &tokens);
    let names: Vec<(&str, Option<&str>, bool)> = m
        .fns
        .iter()
        .map(|f| (f.name.as_str(), f.impl_type.as_deref(), f.in_test))
        .collect();
    assert_eq!(
        names,
        vec![
            ("append", Some("Wal"), false),
            ("appends", None, true),
            ("free_standing", None, false),
        ]
    );
    assert!(m.line_in_test(12));
    assert!(!m.line_in_test(3));
}

// -- call graph --------------------------------------------------------------

#[test]
fn short_receivers_prefer_same_file_definitions() {
    let parse = |rel: &str, src: &str| {
        callgraph::Unit::parse(std::path::PathBuf::from(rel), rel.into(), src.into())
    };
    let sim = parse(
        "crates/net/src/sim.rs",
        r#"
impl SimTransport {
    pub fn disconnect(&self) { self.topology.write().cut(); }
    pub fn drive(&self) { helper(|t| t.disconnect()); }
}
"#,
    );
    let tcp = parse(
        "crates/net/src/tcp.rs",
        r#"
impl TcpTransport {
    pub fn disconnect(&self) { self.sessions.lock().cut(); }
}
"#,
    );
    let other = parse("crates/core/src/lib.rs", "pub fn unrelated() {}\n");
    let units = vec![sim, tcp, other];
    let graph = callgraph::CallGraph::build(&units);
    let targets = graph.by_name.get("disconnect").expect("two defs");
    let q = callgraph::Qualifier::Named("t".into());

    // `|t| t.disconnect()` in sim.rs resolves to sim.rs's definition only.
    let picked = callgraph::filter_targets(&units, 0, Some("SimTransport"), &q, targets);
    assert_eq!(picked.len(), 1);
    assert_eq!(picked[0].0, 0);
    // The same shape in tcp.rs picks tcp.rs's definition.
    let picked = callgraph::filter_targets(&units, 1, Some("TcpTransport"), &q, targets);
    assert_eq!(picked.len(), 1);
    assert_eq!(picked[0].0, 1);
    // A file defining no candidate falls back to all of them.
    let picked = callgraph::filter_targets(&units, 2, None, &q, targets);
    assert_eq!(picked.len(), 2);
}

// -- removed false positives -------------------------------------------------

#[test]
fn multiline_string_literals_do_not_fabricate_guards() {
    // The pre-token-stream linter sanitized line by line, so the interior
    // of a multi-line string literal (legal Rust) looked like code — this
    // exact shape used to flag guard-across-transport. The lexer masks it.
    let f = lib(
        "crates/demo/src/lib.rs",
        "fn f(s: &S) {\n    let doc = \"\n    let guard = s.state.lock();\n    s.transport.call(1, 2, guard.frame());\n    \";\n    s.log(doc);\n}\n",
    );
    assert!(check(&[f]).is_empty());
}

// -- output format -----------------------------------------------------------

#[test]
fn diagnostics_render_as_file_line_rule() {
    let d = Diagnostic {
        file: "crates/demo/src/lib.rs".into(),
        line: 12,
        rule: RULE_NO_UNWRAP,
        message: "boom".into(),
    };
    assert_eq!(
        d.to_string(),
        "crates/demo/src/lib.rs:12: [no-unwrap-on-lock-or-decode] boom"
    );
}

//! Static lock-order graph.
//!
//! For every function in library code (`crates/*/src`, `src/`, outside test
//! modules) this pass extracts each `util::sync` Mutex/RwLock/shard-guard
//! acquisition site, propagates held-sets through the name-based call graph,
//! and records every ordered pair *"site A's guard was held while site B
//! acquired"* as a static edge. Two consumers:
//!
//! * the `lock-order-cycle` rule: if class α acquires before class β on one
//!   path and β before α on another, that is a potential AB/BA deadlock,
//!   reported at lint time with every witness site;
//! * `LOCK_GRAPH.json`: the exported site/edge list that CI cross-checks
//!   against the *runtime* lockcheck detector — every edge the instrumented
//!   chaos suites observe must be a subset of this graph, which keeps the
//!   static analysis honest about coverage.
//!
//! ## Mechanisms (all over-approximations, never under)
//!
//! * **direct edges** — let-bound guards are held until their scope closes
//!   (`drop()` is not modeled), but only when the acquisition is
//!   *chain-terminal*: `let g = m.lock();` binds the guard, while
//!   `let n = m.lock().len();` binds a `usize` and drops the guard at the
//!   `;`. Statement temporaries are held until the `;`;
//!   temporaries feeding an `if`/`while`/`match` head are extended through
//!   the block (match scrutinees really do live that long).
//! * **call edges** — at a resolved call, every held site gains an edge to
//!   every *transitive* acquisition site of the callee (TA, computed by
//!   fixpoint over the call graph, cut at transport boundaries).
//! * **virtual hold** — `let g = self.enter()?;` holds whatever the callee
//!   acquires until scope end, covering guards returned by workspace fns.
//! * **callback over-approximation** — for `f(|x| { … })`, `f`'s TA is
//!   treated as held while the closure body's acquisitions are walked, so
//!   `with_inner(|g| …)`-style wrappers produce the edges the runtime sees.
//!
//! Precision refinements (each one removed a family of false cycles during
//! calibration against the real workspace, which ends at zero findings):
//!
//! * **expire at `)`** — a call whose return type does not name a `Guard`
//!   cannot leak its statement-temp guards to the caller; the callee's
//!   statement-scoped TA expires at the call's closing parenthesis instead
//!   of being held for the rest of the caller's statement.
//! * **spawn barriers** — `spawn(move || …)` bodies are walked for their
//!   own acquisitions, but the spawner's held-set does not flow in (the
//!   runtime held-stack is per-thread), and sites that only occur under a
//!   nested spawn are excluded from the enclosing fn's TA.
//! * **escaping guards** — only guards that outlive their own statement
//!   (let-bound, or alive when a block head opens) *and* whose fn can
//!   surface them at callback time — by returning the guard (`enter`,
//!   `lock_many`) or invoking a closure/fn parameter itself (`with_inner`'s
//!   `f(…)`) — count as held across a callee that can re-enter caller code
//!   through a callback. A pure statement temp is gone by then, and a
//!   lock-update-return fn (`CircuitBreaker::admit`) releases before any
//!   foreign callback can run.
//!
//! Lock *classes* (used for cycle detection only; the JSON subset check
//! matches raw file:line sites) are named from the receiver chain:
//! `self.exports.read()` inside `impl ObiProcess` → `ObiProcess::exports`;
//! a local/parameter receiver gets a function-scoped class. Same-class
//! edges are exempt from the cycle rule — ordering within an indexed family
//! (shard stripes) is `single-shard-guard`'s business.

use crate::callgraph::{self, CallGraph, FnId, Qualifier, Unit, ACQUIRE_METHODS};
use crate::lexer::Kind;
use crate::{Diagnostic, RULE_LOCK_ORDER_CYCLE};
use std::collections::{HashMap, HashSet};

/// One static acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Workspace-relative file, matching what `#[track_caller]` reports.
    pub file: String,
    /// 1-based line of the acquire-method identifier (`lock`/`read`/…) —
    /// empirically the line `Location::caller()` records, even in
    /// multi-line chains.
    pub line: u32,
    pub class: String,
    /// `false` for `try_*` acquisitions (the runtime detector gives them no
    /// inbound edge, but they do join the held set).
    pub blocking: bool,
}

/// The computed graph: interned sites plus held→acquired edges (indices
/// into `sites`).
pub struct LockGraph {
    pub sites: Vec<Site>,
    pub edges: Vec<(usize, usize)>,
}

/// True for files whose code is subject to the analysis: the runtime
/// library crates. `crates/bench` (scenario harnesses that drive every
/// transport from one thread — their cross-transport "held" sets are
/// harness artifacts, and no instrumented test executes them) and
/// `crates/lint` (no locks; its fixtures embed lock-shaped code in string
/// literals) are linted by the other rules but excluded from the graph.
fn is_lib_rel(rel: &str) -> bool {
    ((rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/"))
        && !rel.starts_with("crates/bench/")
        && !rel.starts_with("crates/lint/")
}

/// `crates/util/src/sync.rs` → `util/sync`: the stem used to scope classes
/// of non-`self` receivers.
fn class_stem(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .replace("/src/", "/")
}

pub fn build(units: &[Unit]) -> LockGraph {
    Builder::new(units).run()
}

/// One statement-scoped acquisition during the held-set walk:
/// `(site, promote, hold, expire)` — see the comment at `stmt` in
/// [`Builder::walk`] for what each flag means.
type StmtSite = (usize, bool, bool, Option<usize>);

struct Builder<'a> {
    units: &'a [Unit],
    graph: CallGraph,
    /// Analyzed fns: library code, outside tests.
    fns: Vec<FnId>,
    index: HashMap<FnId, usize>,
    sites: Vec<Site>,
    intern: HashMap<(String, u32, String), usize>,
    edges: HashSet<(usize, usize)>,
    /// Sites whose guard can still be held when a callee re-enters caller
    /// code through a callback: the guard escapes its own statement
    /// (let-bound, or alive when a block opens) *and* its fn can actually
    /// surface it at callback time — by returning the guard (`enter`) or by
    /// invoking a closure/fn parameter itself (`with_inner`'s `f(…)`). A
    /// pure statement temp is gone by then, and a fn like
    /// `CircuitBreaker::admit` that locks, updates and returns plain data
    /// can never hold its guard while someone else's callback runs.
    escaping: HashSet<usize>,
}

impl<'a> Builder<'a> {
    fn new(units: &'a [Unit]) -> Self {
        let graph = CallGraph::build(units);
        let mut fns = Vec::new();
        for (ui, u) in units.iter().enumerate() {
            if !is_lib_rel(&u.rel) {
                continue;
            }
            for (fi, f) in u.model.fns.iter().enumerate() {
                if !f.in_test {
                    fns.push((ui, fi));
                }
            }
        }
        let index = fns
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();
        Builder {
            units,
            graph,
            fns,
            index,
            sites: Vec::new(),
            intern: HashMap::new(),
            edges: HashSet::new(),
            escaping: HashSet::new(),
        }
    }

    fn run(mut self) -> LockGraph {
        // Pass A: intern every acquisition site, collect per-fn own-sets.
        let own: Vec<Vec<usize>> = (0..self.fns.len())
            .map(|i| self.own_sites(i))
            .collect();

        // Pass A2: which guards escape their own statement (see `escaping`).
        for i in 0..self.fns.len() {
            self.escape_pass(i);
        }

        // Pass B: transitive acquisition sets by fixpoint. Callee lists are
        // recomputed here rather than taken from the call graph because TA
        // must exclude calls made inside nested fn bodies (charged to the
        // nested fn) and inside `spawn(…)` closures (they run on another
        // thread — the spawning fn does not synchronously acquire what the
        // spawned thread acquires).
        let callees: Vec<Vec<usize>> = (0..self.fns.len())
            .map(|i| {
                let (u, f) = self.unit_of(i);
                let nested = self.nested_ranges(i);
                let spawns = spawn_ranges(u, f.body.0, f.body.1);
                let mut out: Vec<usize> = Vec::new();
                for call in callgraph::calls_in_range(u, f.body.0, f.body.1) {
                    let skipped = nested
                        .iter()
                        .chain(spawns.iter())
                        .any(|&(a, b)| call.token >= a && call.token <= b);
                    if skipped {
                        continue;
                    }
                    if let Some(targets) = self.graph.by_name.get(call.name) {
                        for t in callgraph::filter_targets(
                            self.units,
                            self.fns[i].0,
                            f.impl_type.as_deref(),
                            &call.qualifier,
                            targets,
                        ) {
                            if let Some(&j) = self.index.get(&t) {
                                if !out.contains(&j) {
                                    out.push(j);
                                }
                            }
                        }
                    }
                }
                out
            })
            .collect();
        let mut ta: Vec<HashSet<usize>> = own
            .iter()
            .map(|o| o.iter().copied().collect())
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..ta.len() {
                let mut add: Vec<usize> = Vec::new();
                for &c in &callees[i] {
                    if c == i {
                        continue;
                    }
                    for &s in &ta[c] {
                        if !ta[i].contains(&s) {
                            add.push(s);
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    ta[i].extend(add);
                }
            }
        }

        // Pass C: the per-fn walk generating edges.
        for i in 0..self.fns.len() {
            self.walk(i, &ta);
        }

        let mut edges: Vec<(usize, usize)> = self.edges.into_iter().collect();
        edges.sort_by(|a, b| {
            let ka = (&self.sites[a.0].file, self.sites[a.0].line, &self.sites[a.1].file, self.sites[a.1].line);
            let kb = (&self.sites[b.0].file, self.sites[b.0].line, &self.sites[b.1].file, self.sites[b.1].line);
            ka.cmp(&kb)
        });
        LockGraph {
            sites: self.sites,
            edges,
        }
    }

    fn unit_of(&self, i: usize) -> (&'a Unit, &'a crate::model::FnItem) {
        let (ui, fi) = self.fns[i];
        (&self.units[ui], &self.units[ui].model.fns[fi])
    }

    /// Body token ranges of fns nested inside `f` (skipped during walks so
    /// a definition's acquisitions are not charged to its enclosing fn).
    fn nested_ranges(&self, i: usize) -> Vec<(usize, usize)> {
        let (ui, fi) = self.fns[i];
        let u = &self.units[ui];
        let f = &u.model.fns[fi];
        u.model
            .fns
            .iter()
            .enumerate()
            .filter(|&(gi, g)| gi != fi && g.body.0 > f.body.0 && g.body.1 <= f.body.1)
            .map(|(_, g)| g.body)
            .collect()
    }

    /// Acquisition sites of fn `i`'s own body — excluding nested fn bodies
    /// and `spawn(…)` closures (another thread's acquisitions are not part
    /// of this fn's synchronous TA; the walk still edges them internally).
    fn own_sites(&mut self, i: usize) -> Vec<usize> {
        let (u, f) = self.unit_of(i);
        let nested = self.nested_ranges(i);
        let spawns = spawn_ranges(u, f.body.0, f.body.1);
        let sig = &u.sig;
        let mut out = Vec::new();
        let mut p = sig.partition_point(|&k| k <= f.body.0);
        while p < sig.len() && sig[p] < f.body.1 {
            let k = sig[p];
            if nested
                .iter()
                .chain(spawns.iter())
                .any(|&(a, b)| k >= a && k <= b)
            {
                p += 1;
                continue;
            }
            if let Some(site) = self.acquire_at(self.fns[i], p) {
                if !out.contains(&site) {
                    out.push(site);
                }
            }
            p += 1;
        }
        out
    }

    /// If `sig[p]` is a lock-acquisition method call (`.lock()`, `.read()`,
    /// … with empty parens — argument-taking `read`/`write` are I/O, not
    /// locks), interns and returns the site.
    fn acquire_at(&mut self, id: FnId, p: usize) -> Option<usize> {
        let (ui, fi) = id;
        let u = &self.units[ui];
        let f = &u.model.fns[fi];
        let sig = &u.sig;
        let src = u.src.as_str();
        let t = &u.tokens[sig[p]];
        if t.kind != Kind::Ident {
            return None;
        }
        let name = t.text(src);
        if !ACQUIRE_METHODS.contains(&name) {
            return None;
        }
        let prev = p.checked_sub(1).map(|q| u.tokens[sig[q]].text(src));
        if prev != Some(".") {
            return None;
        }
        let open = sig.get(p + 1).map(|&k| u.tokens[k].text(src));
        let close = sig.get(p + 2).map(|&k| u.tokens[k].text(src));
        if open != Some("(") || close != Some(")") {
            return None;
        }
        let chain = receiver_chain(u, p - 1);
        let stem = class_stem(&u.rel);
        let class = classify(&chain, f.impl_type.as_deref(), &f.name, &stem);
        let blocking = !name.starts_with("try_");
        let key = (u.rel.clone(), t.line, class.clone());
        if let Some(&s) = self.intern.get(&key) {
            return Some(s);
        }
        let s = self.sites.len();
        self.sites.push(Site {
            file: u.rel.clone(),
            line: t.line,
            class,
            blocking,
        });
        self.intern.insert(key, s);
        Some(s)
    }

    /// Pass A2 body: a simplified walk marking sites whose guard escapes
    /// its own statement — chain-terminal `let`-bound acquisitions, and
    /// acquisitions still live when a block opens (match scrutinees;
    /// `if`-head temps are over-approximated the same way).
    /// Whether fn `i`'s body contains a bare call (no receiver or path
    /// qualifier) that resolves to no workspace free fn — the shape of a
    /// closure or fn-parameter invocation (`f(…)`, `sink(…)`, `drop(g)`).
    fn invokes_callback(&self, i: usize) -> bool {
        let id = self.fns[i];
        let (u, f) = self.unit_of(i);
        let nested = self.nested_ranges(i);
        callgraph::calls_in_range(u, f.body.0, f.body.1)
            .iter()
            .any(|call| {
                if call.qualifier != Qualifier::None {
                    return false;
                }
                if nested.iter().any(|&(a, b)| call.token >= a && call.token <= b) {
                    return false;
                }
                match self.graph.by_name.get(call.name) {
                    None => true,
                    Some(targets) => callgraph::filter_targets(
                        self.units,
                        id.0,
                        f.impl_type.as_deref(),
                        &call.qualifier,
                        targets,
                    )
                    .is_empty(),
                }
            })
    }

    fn escape_pass(&mut self, i: usize) {
        let id = self.fns[i];
        let (u, f) = self.unit_of(i);
        // Gate: a guard escapes to callback scope only if this fn can still
        // be holding it while foreign code runs — it returns the guard
        // (`enter`, `lock_many`) or invokes a closure/fn parameter itself
        // (`with_inner`'s `f(…)`). A fn that locks, updates and returns
        // plain data (`CircuitBreaker::admit`) releases before any callback
        // elsewhere can observe it, however the guard is bound locally.
        if !f.returns_guard && !self.invokes_callback(i) {
            return;
        }
        let (body0, body1) = f.body;
        let nested = self.nested_ranges(i);
        let sig_len = u.sig.len();
        let mut stmt: Vec<(usize, bool)> = Vec::new();
        let mut saved: Vec<(Vec<(usize, bool)>, bool)> = Vec::new();
        let mut stmt_is_let = false;
        let mut new_stmt = true;
        let mut p = u.sig.partition_point(|&k| k <= body0);
        while p < sig_len {
            let (u, _) = self.unit_of(i);
            let k = u.sig[p];
            if k >= body1 {
                break;
            }
            if nested.iter().any(|&(a, b)| k >= a && k <= b) {
                p += 1;
                continue;
            }
            let t = &u.tokens[k];
            let txt = t.text(&u.src);
            if new_stmt {
                stmt_is_let = txt == "let";
                new_stmt = false;
            }
            match t.kind {
                Kind::Punct => match txt {
                    "{" => {
                        for &(s, _) in &stmt {
                            self.escaping.insert(s);
                        }
                        saved.push((std::mem::take(&mut stmt), stmt_is_let));
                        stmt_is_let = false;
                        new_stmt = true;
                    }
                    "}" => {
                        if let Some((s, l)) = saved.pop() {
                            stmt = s;
                            stmt_is_let = l;
                        }
                        new_stmt = true;
                    }
                    ";" => {
                        if stmt_is_let {
                            for &(s, term) in &stmt {
                                if term {
                                    self.escaping.insert(s);
                                }
                            }
                        }
                        stmt.clear();
                        stmt_is_let = false;
                        new_stmt = true;
                    }
                    _ => {}
                },
                Kind::Ident => {
                    if let Some(site) = self.acquire_at(id, p) {
                        let (u, _) = self.unit_of(i);
                        stmt.push((site, chain_terminal(u, p + 2)));
                    }
                }
                _ => {}
            }
            p += 1;
        }
    }

    /// With `LINT_DEBUG_EDGES=1`, prints each edge as it is created along
    /// with the fn whose walk created it — the triage tool for
    /// over-approximation hunting.
    fn debug_edge(&self, h: usize, s: usize, rel: &str, fname: &str, why: &str) {
        if std::env::var_os("LINT_DEBUG_EDGES").is_none() {
            return;
        }
        let a = &self.sites[h];
        let b = &self.sites[s];
        eprintln!(
            "edge {}:{} -> {}:{} (in {rel} fn {fname}, via {why})",
            a.file, a.line, b.file, b.line
        );
    }

    fn walk(&mut self, i: usize, ta: &[HashSet<usize>]) {
        let id = self.fns[i];
        let (u, f) = self.unit_of(i);
        let (body0, body1) = f.body;
        let nested = self.nested_ranges(i);

        // Resolved call sites in this body, keyed by the callee-name token.
        // Resolution applies the same receiver-qualifier pruning the call
        // graph itself uses, so held-set propagation and TA agree.
        let mut call_map: HashMap<usize, Vec<usize>> = HashMap::new();
        for call in callgraph::calls_in_range(u, body0, body1) {
            if let Some(targets) = self.graph.by_name.get(call.name) {
                let resolved: Vec<usize> = callgraph::filter_targets(
                    self.units,
                    id.0,
                    f.impl_type.as_deref(),
                    &call.qualifier,
                    targets,
                )
                .into_iter()
                .filter_map(|t| self.index.get(&t).copied())
                .collect();
                if !resolved.is_empty() {
                    call_map.insert(call.token, resolved);
                }
            }
        }

        let sig_len = u.sig.len();
        // Scope stack: held sites per enclosing block, with a `barrier`
        // flag for `spawn(…)` closure bodies — the spawned thread starts
        // with an empty held set, so `held()` ignores everything below the
        // last barrier.
        let mut scopes: Vec<(Vec<usize>, bool)> = vec![(Vec::new(), false)];
        // Statement state saved at each `{` and restored at its `}` — an
        // inner block's `;`s must not clear the outer statement's
        // temporaries (`let g = match m.lock() { … };`).
        let mut saved: Vec<(Vec<StmtSite>, bool)> = Vec::new();
        // Per-statement held sites, each with two liveness flags and an
        // expiry:
        //
        // * `promote` — a `let` binds this guard (the acquisition is
        //   *chain-terminal*: its `)` directly precedes the statement's
        //   `;`, modulo one `?` — `let v = m.lock().len();` binds a usize,
        //   not the guard — and, for a call, the callee returns a guard);
        // * `hold` — the site stays visibly held inside a control-flow
        //   block opened by this statement. True for direct acquisitions
        //   (match scrutinee temporaries live through the arms) but for
        //   calls only when a guard comes back: `if self.breaker.admit(p) {`
        //   has released the breaker lock before the block runs;
        // * `expire` — token index past which the entry is gone. A
        //   non-guard-returning callee's locks are released when the call
        //   returns, i.e. at its closing `)`: in
        //   `self.registry.decode(x).and(create(y))`, `decode`'s internal
        //   read lock is not held during `create`.
        let mut stmt: Vec<StmtSite> = Vec::new();
        let mut stmt_is_let = false;
        let mut new_stmt = true;

        let mut p = u.sig.partition_point(|&k| k <= body0);
        while p < sig_len {
            let (u, _) = self.unit_of(i);
            let k = u.sig[p];
            if k >= body1 {
                break;
            }
            if nested.iter().any(|&(a, b)| k >= a && k <= b) {
                p += 1;
                continue;
            }
            stmt.retain(|&(_, _, _, expire)| expire.is_none_or(|x| k <= x));
            let t = &u.tokens[k];
            let txt = t.text(&u.src);
            if new_stmt {
                stmt_is_let = txt == "let";
                new_stmt = false;
            }
            match t.kind {
                Kind::Punct => match txt {
                    "{" => {
                        // Statement temporaries feeding a block head stay
                        // visible inside the block only while they can
                        // still pin a guard (`hold` flag) — except closure
                        // bodies, which run *during* the enclosing call, so
                        // everything the statement holds is still held.
                        // `spawn(…)` closures are the opposite extreme: a
                        // fresh thread holds nothing, so they open a
                        // barrier scope.
                        let closure = p
                            .checked_sub(1)
                            .map(|q| u.tokens[u.sig[q]].text(&u.src))
                            .is_some_and(|prev| prev == "|" || prev == "move");
                        let barrier = closure && is_spawn_closure_open(u, p);
                        let sites = if barrier {
                            Vec::new()
                        } else {
                            stmt.iter()
                                .filter(|&&(_, _, hold, _)| closure || hold)
                                .map(|&(s, _, _, _)| s)
                                .collect()
                        };
                        scopes.push((sites, barrier));
                        saved.push((std::mem::take(&mut stmt), stmt_is_let));
                        stmt_is_let = false;
                        new_stmt = true;
                    }
                    "}" => {
                        if scopes.len() > 1 {
                            scopes.pop();
                        }
                        if let Some((s, l)) = saved.pop() {
                            stmt = s;
                            stmt_is_let = l;
                        }
                        new_stmt = true;
                    }
                    ";" => {
                        if stmt_is_let {
                            if let Some((top, _)) = scopes.last_mut() {
                                top.extend(
                                    stmt.iter()
                                        .filter(|&&(_, promote, _, _)| promote)
                                        .map(|&(s, _, _, _)| s),
                                );
                            }
                        }
                        stmt.clear();
                        stmt_is_let = false;
                        new_stmt = true;
                    }
                    _ => {}
                },
                Kind::Ident => {
                    if let Some(site) = self.acquire_at(id, p) {
                        let (u, f) = self.unit_of(i);
                        let term = chain_terminal(u, p + 2);
                        for h in held(&scopes, &stmt) {
                            if h != site && self.sites[site].blocking {
                                self.debug_edge(h, site, &u.rel, &f.name, "acquire");
                                self.edges.insert((h, site));
                            }
                        }
                        stmt.push((site, term, true, None));
                    } else if let Some(targets) = call_map.get(&k) {
                        let mut union: Vec<usize> = Vec::new();
                        for &tgt in targets {
                            for &s in &ta[tgt] {
                                if !union.contains(&s) {
                                    union.push(s);
                                }
                            }
                        }
                        let (u, _) = self.unit_of(i);
                        // A call's acquisitions outlive its own statement
                        // only when the callee hands a guard back (`enter`,
                        // `lock_pair`, …) — a data-returning callee's locks
                        // are released by the time the `let` binds.
                        let rg = targets.iter().any(|&t| {
                            let (ui, fi) = self.fns[t];
                            self.units[ui].model.fns[fi].returns_guard
                        });
                        let close = matching_close(u, p + 1);
                        let term = rg && close.is_some_and(|c| chain_terminal(u, c));
                        let expire = if rg {
                            None
                        } else {
                            close.map(|c| u.sig[c])
                        };
                        for &s in &union {
                            if self.sites[s].blocking {
                                for h in held(&scopes, &stmt) {
                                    if h != s {
                                        let (u, f) = self.unit_of(i);
                                        self.debug_edge(h, s, &u.rel, &f.name, txt);
                                        self.edges.insert((h, s));
                                    }
                                }
                            }
                        }
                        // Only escaping guards can still be held when the
                        // callee re-enters this fn's code through a
                        // callback argument; the edge loop above already
                        // covered the callee's internal temps.
                        stmt.extend(
                            union
                                .into_iter()
                                .filter(|&s| rg || self.escaping.contains(&s))
                                .map(|s| (s, term, rg, expire)),
                        );
                    }
                }
                _ => {}
            }
            p += 1;
        }
    }
}

/// All currently-held sites: every enclosing scope plus the statement in
/// progress (a guard temporary is held for the rest of its own statement
/// whether or not it ends up bound).
fn held(
    scopes: &[(Vec<usize>, bool)],
    stmt: &[(usize, bool, bool, Option<usize>)],
) -> Vec<usize> {
    let start = scopes
        .iter()
        .rposition(|&(_, barrier)| barrier)
        .unwrap_or(0);
    scopes[start..]
        .iter()
        .flat_map(|(sites, _)| sites)
        .copied()
        .chain(stmt.iter().map(|&(s, _, _, _)| s))
        .collect()
}

/// Token-index ranges (inclusive) of closure bodies passed directly to a
/// `spawn(…)` call inside `body0..body1`. These run on another thread: the
/// spawning fn neither holds its guards across them nor transitively
/// "acquires" what they acquire.
fn spawn_ranges(u: &Unit, body0: usize, body1: usize) -> Vec<(usize, usize)> {
    let src = u.src.as_str();
    let sig = &u.sig;
    let mut out = Vec::new();
    let mut p = sig.partition_point(|&k| k <= body0);
    while p < sig.len() && sig[p] < body1 {
        if u.tokens[sig[p]].text(src) == "{" && is_spawn_closure_open(u, p) {
            if let Some(c) = crate::model::matching_brace(src, &u.tokens, sig, p) {
                out.push((sig[p], sig[c]));
            }
        }
        p += 1;
    }
    out
}

/// True when the `{` at sig position `p` opens a closure passed directly to
/// a `spawn(…)` call: the preceding tokens read `spawn ( [move] |params| {`.
fn is_spawn_closure_open(u: &Unit, p: usize) -> bool {
    let src = u.src.as_str();
    let text = |q: usize| u.tokens[u.sig[q]].text(src);
    if p == 0 || text(p - 1) != "|" {
        return false;
    }
    // Scan back to the opening `|` of the parameter list.
    let close_bar = p - 1;
    let mut r = close_bar;
    loop {
        if r == 0 || close_bar - r > 64 {
            return false;
        }
        r -= 1;
        if text(r) == "|" {
            break;
        }
    }
    if r > 0 && text(r - 1) == "move" {
        r -= 1;
    }
    r >= 2
        && text(r - 1) == "("
        && u.tokens[u.sig[r - 2]].kind == Kind::Ident
        && text(r - 2) == "spawn"
}

/// True when the `)` at sig position `close` ends its statement's
/// expression chain — the next significant token (modulo one `?`) is `;`.
/// Only then does a `let` actually bind the guard the call produced.
fn chain_terminal(u: &Unit, close: usize) -> bool {
    let src = u.src.as_str();
    let mut q = close + 1;
    if q < u.sig.len() && u.tokens[u.sig[q]].text(src) == "?" {
        q += 1;
    }
    q < u.sig.len() && u.tokens[u.sig[q]].text(src) == ";"
}

/// Sig position of the `)` matching the `(` at sig position `open`.
fn matching_close(u: &Unit, open: usize) -> Option<usize> {
    let src = u.src.as_str();
    if u.sig.get(open).map(|&k| u.tokens[k].text(src)) != Some("(") {
        return None;
    }
    let mut depth = 0i32;
    for p in open..u.sig.len() {
        match u.tokens[u.sig[p]].text(src) {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(p);
                }
            }
            _ => {}
        }
    }
    None
}

/// Walks the receiver chain backward from the `.` at sig position `dot`:
/// `self.shard(id).write()` → `["self", "shard()"]`. Gives up (returning
/// what it has) at anything that is not `ident`, `ident(…)` or `ident[…]`.
fn receiver_chain(u: &Unit, dot: usize) -> Vec<String> {
    let sig = &u.sig;
    let src = u.src.as_str();
    let txt = |q: usize| u.tokens[sig[q]].text(src);
    let mut segs: Vec<String> = Vec::new();
    let mut d = dot;
    for _ in 0..12 {
        if d == 0 {
            break;
        }
        let mut r = d - 1;
        if txt(r) == "?" {
            if r == 0 {
                break;
            }
            r -= 1;
        }
        let seg: Option<(String, usize)> = if u.tokens[sig[r]].kind == Kind::Ident {
            Some((txt(r).to_string(), r))
        } else if txt(r) == ")" || txt(r) == "]" {
            let (open_c, close_c) = if txt(r) == ")" { ("(", ")") } else { ("[", "]") };
            let mut depth = 0i32;
            let mut q = r;
            let open_pos = loop {
                let s = txt(q);
                if s == close_c {
                    depth += 1;
                } else if s == open_c {
                    depth -= 1;
                    if depth == 0 {
                        break Some(q);
                    }
                }
                if q == 0 {
                    break None;
                }
                q -= 1;
            };
            match open_pos {
                Some(q) if q > 0 && u.tokens[sig[q - 1]].kind == Kind::Ident => {
                    Some((format!("{}{}{}", txt(q - 1), open_c, close_c), q - 1))
                }
                _ => None,
            }
        } else {
            None
        };
        match seg {
            Some((s, at)) => {
                segs.push(s);
                if at == 0 || txt(at - 1) != "." {
                    break;
                }
                d = at - 1;
            }
            None => break,
        }
    }
    segs.reverse();
    segs
}

fn classify(chain: &[String], impl_type: Option<&str>, fn_name: &str, stem: &str) -> String {
    match chain.first().map(String::as_str) {
        Some("self") => {
            let owner = impl_type.unwrap_or(stem);
            if chain.len() == 1 {
                owner.to_string()
            } else {
                format!("{owner}::{}", chain[1..].join("."))
            }
        }
        Some(_) => format!("{stem}::{fn_name}::{}", chain.join(".")),
        None => format!("{stem}::{fn_name}::<expr>"),
    }
}

impl LockGraph {
    /// `lock-order-cycle` diagnostics: one per unordered class pair with
    /// edges in both directions. Same-class pairs are exempt (indexed
    /// families like shard stripes are ordered by `lock_pair`/`lock_many`,
    /// enforced by `single-shard-guard`).
    pub fn cycle_diagnostics(&self) -> Vec<Diagnostic> {
        let mut by_classes: HashMap<(&str, &str), Vec<(usize, usize)>> = HashMap::new();
        for &(f, t) in &self.edges {
            let (cf, ct) = (self.sites[f].class.as_str(), self.sites[t].class.as_str());
            if cf != ct {
                by_classes.entry((cf, ct)).or_default().push((f, t));
            }
        }
        let mut diags = Vec::new();
        let mut seen: HashSet<(&str, &str)> = HashSet::new();
        let mut keys: Vec<(&str, &str)> = by_classes.keys().copied().collect();
        keys.sort();
        for (a, b) in keys {
            if a >= b || seen.contains(&(a, b)) {
                continue;
            }
            let Some(fwd) = by_classes.get(&(a, b)) else { continue };
            let Some(rev) = by_classes.get(&(b, a)) else { continue };
            seen.insert((a, b));
            let describe = |edges: &[(usize, usize)]| {
                edges
                    .iter()
                    .take(3)
                    .map(|&(f, t)| {
                        format!(
                            "{}:{} -> {}:{}",
                            self.sites[f].file,
                            self.sites[f].line,
                            self.sites[t].file,
                            self.sites[t].line
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut fwd = fwd.clone();
            let mut rev = rev.clone();
            let key = |&(f, t): &(usize, usize)| {
                (
                    self.sites[f].file.clone(),
                    self.sites[f].line,
                    self.sites[t].line,
                )
            };
            fwd.sort_by_key(key);
            rev.sort_by_key(key);
            // Anchor at the smallest involved site so `lint:allow` has a
            // stable home.
            let anchor = fwd
                .iter()
                .chain(rev.iter())
                .flat_map(|&(f, t)| [f, t])
                .min_by_key(|&s| (self.sites[s].file.clone(), self.sites[s].line))
                .expect("cycle has at least one edge");
            diags.push(Diagnostic {
                file: self.sites[anchor].file.clone(),
                line: self.sites[anchor].line as usize,
                rule: RULE_LOCK_ORDER_CYCLE,
                message: format!(
                    "lock-order inversion between `{a}` and `{b}`: \
                     {a} -> {b} at [{}]; {b} -> {a} at [{}]",
                    describe(&fwd),
                    describe(&rev)
                ),
            });
        }
        diags
    }

    /// Deterministic JSON export (hand-written — the workspace vendors no
    /// serde). One site/edge object per line so tests can consume it with
    /// plain string extraction.
    pub fn to_json(&self) -> String {
        let mut site_lines: Vec<String> = self
            .sites
            .iter()
            .map(|s| {
                format!(
                    "    {{\"site\": \"{}:{}\", \"class\": \"{}\", \"blocking\": {}}}",
                    s.file, s.line, s.class, s.blocking
                )
            })
            .collect();
        site_lines.sort();
        let edge_lines: Vec<String> = self
            .edges
            .iter()
            .map(|&(f, t)| {
                format!(
                    "    {{\"edge\": \"{}:{} -> {}:{}\", \"from_class\": \"{}\", \"to_class\": \"{}\"}}",
                    self.sites[f].file,
                    self.sites[f].line,
                    self.sites[t].file,
                    self.sites[t].line,
                    self.sites[f].class,
                    self.sites[t].class
                )
            })
            .collect();
        let mut out = String::new();
        out.push_str("{\n  \"sites\": [\n");
        out.push_str(&site_lines.join(",\n"));
        out.push_str("\n  ],\n  \"edges\": [\n");
        out.push_str(&edge_lines.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }
}

//! Typed WAL record payloads.
//!
//! Each [`WalRecord`] is one logical durability event; it encodes to the
//! payload bytes of one [`crate::wal`] frame using the `obiwan-wire`
//! codec (tag byte + fields). Snapshots use the same record vocabulary,
//! so there is exactly one decode path for both files.
//!
//! The record set mirrors what a mobile site must not lose across a crash:
//!
//! * [`WalRecord::ObjectDelta`] — the serialized state of a replica that
//!   went dirty (an incremental delta in the log-structured sense: later
//!   deltas for the same object supersede earlier ones).
//! * [`WalRecord::Op`] — one journaled `DisconnectedSession` invocation.
//! * [`WalRecord::PutIntent`] — "about to send `put` for `id` as request
//!   `seq`, carrying the state whose fingerprint is `fingerprint`".
//!   Written and fsynced *before* the RPC leaves, so a replayed
//!   reintegration reuses the same request id and the server's ReplyCache
//!   deduplicates it (exactly-once). The fingerprint ties the seq to the
//!   exact state it covered: a retry whose state has since changed must
//!   NOT reuse the seq (the cached reply would ack without applying), so
//!   the put path retires the stale intent and takes a fresh one.
//! * [`WalRecord::PutConfirmed`] — the put was acknowledged at `version`;
//!   the intent is settled, and the dirty delta is superseded *if it still
//!   fingerprints to the state the ack covered* (a delta logged by a
//!   mutation racing the RPC stays recoverable).
//! * [`WalRecord::PutAbandoned`] — the put was *definitively rejected*
//!   (an application-level error, not a connectivity failure). The master
//!   processed the request and cached the rejection, so the intent's seq
//!   is spent: reusing it would replay the cached error forever. The
//!   replica stays dirty; only the pending intent is dropped.
//! * [`WalRecord::Clean`] — the replica was refreshed from the master
//!   (conflict resolution or explicit refresh); pending deltas are moot.
//! * [`WalRecord::ClientState`] — RMI client watermark: next request
//!   sequence number and the settled reply horizon.

use bytes::Bytes;
use obiwan_util::{ObiError, ObjId, Result, SiteId};
use obiwan_wire::{crc32, Decoder, Encoder, ObiValue, ReplicaState};

/// Fingerprint of the serialized state a put carries: CRC of the state
/// bytes in the high word, length/version mixed into the low word. Two
/// puts of the same replica carry the same fingerprint iff they carry the
/// same bytes — the encoder is deterministic (`ObiValue::Map` preserves
/// order), so "same fingerprint" means "same state" for retry purposes.
pub fn state_fingerprint(state: &ReplicaState) -> u64 {
    let crc = u64::from(crc32(&state.state));
    let mix = (state.state.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ state.version;
    (crc << 32) ^ mix
}

/// One durability event. See the module docs for the lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A replica of an object mastered at `provider` went dirty with the
    /// given serialized state.
    ObjectDelta {
        provider: SiteId,
        state: ReplicaState,
    },
    /// One journaled disconnected-session invocation.
    Op {
        target: ObjId,
        method: String,
        args: Vec<ObiValue>,
        succeeded: bool,
    },
    /// A `put` for `id` is about to be sent as request `seq`, carrying the
    /// state fingerprinted by `fingerprint` (see [`state_fingerprint`]).
    PutIntent { id: ObjId, seq: u64, fingerprint: u64 },
    /// The `put` for `id` was acknowledged at `version`; `fingerprint`
    /// names the state the ack covered.
    PutConfirmed { id: ObjId, version: u64, fingerprint: u64 },
    /// The `put` for `id` was definitively rejected; its request seq is
    /// spent but the replica remains dirty.
    PutAbandoned { id: ObjId },
    /// The replica of `id` was refreshed from its master; it is clean.
    Clean { id: ObjId },
    /// RMI client watermark state.
    ClientState { next_seq: u64, horizon: u64 },
    /// Mastership of `root` is being handed off to `successor`. Written
    /// and fsynced *before* the handoff RPC leaves. Masters are never
    /// persisted (recovery always demotes to dirty replicas), so this
    /// record's job is directional: recovery points the demoted replica's
    /// provider at `successor` instead of the original master, and a
    /// half-completed handoff can never resurrect a second master here.
    HandoffIntent { root: ObjId, successor: SiteId },
    /// The successor acknowledged the handoff of `root`; the intent is
    /// settled and this site serves `root` as an ordinary replica.
    HandoffComplete { root: ObjId },
}

impl WalRecord {
    /// Encodes this record to a WAL frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            WalRecord::ObjectDelta { provider, state } => {
                enc.put_u8(0);
                enc.put_site(*provider);
                enc.put_obj_id(state.id);
                enc.put_str(&state.class);
                enc.put_varint(state.version);
                enc.put_bytes(&state.state);
            }
            WalRecord::Op {
                target,
                method,
                args,
                succeeded,
            } => {
                enc.put_u8(1);
                enc.put_obj_id(*target);
                enc.put_str(method);
                enc.put_varint(args.len() as u64);
                for a in args {
                    enc.put_value(a);
                }
                enc.put_u8(u8::from(*succeeded));
            }
            WalRecord::PutIntent { id, seq, fingerprint } => {
                enc.put_u8(2);
                enc.put_obj_id(*id);
                enc.put_varint(*seq);
                enc.put_varint(*fingerprint);
            }
            WalRecord::PutConfirmed { id, version, fingerprint } => {
                enc.put_u8(3);
                enc.put_obj_id(*id);
                enc.put_varint(*version);
                enc.put_varint(*fingerprint);
            }
            WalRecord::Clean { id } => {
                enc.put_u8(4);
                enc.put_obj_id(*id);
            }
            WalRecord::ClientState { next_seq, horizon } => {
                enc.put_u8(5);
                enc.put_varint(*next_seq);
                enc.put_varint(*horizon);
            }
            WalRecord::PutAbandoned { id } => {
                enc.put_u8(6);
                enc.put_obj_id(*id);
            }
            WalRecord::HandoffIntent { root, successor } => {
                enc.put_u8(7);
                enc.put_obj_id(*root);
                enc.put_site(*successor);
            }
            WalRecord::HandoffComplete { root } => {
                enc.put_u8(8);
                enc.put_obj_id(*root);
            }
        }
        enc.finish().to_vec()
    }

    /// Decodes a WAL frame payload. A CRC-valid payload that fails here is
    /// format skew, not a torn tail, and recovery reports it as an error.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut dec = Decoder::new(payload);
        let record = match dec.take_u8()? {
            0 => {
                let provider = dec.take_site()?;
                let id = dec.take_obj_id()?;
                let class = dec.take_str()?;
                let version = dec.take_varint()?;
                let state = Bytes::copy_from_slice(dec.take_bytes_ref()?);
                WalRecord::ObjectDelta {
                    provider,
                    state: ReplicaState {
                        id,
                        class,
                        version,
                        state,
                    },
                }
            }
            1 => {
                let target = dec.take_obj_id()?;
                let method = dec.take_str()?;
                let n = dec.take_varint()? as usize;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(dec.take_value()?);
                }
                let succeeded = dec.take_u8()? != 0;
                WalRecord::Op {
                    target,
                    method,
                    args,
                    succeeded,
                }
            }
            2 => WalRecord::PutIntent {
                id: dec.take_obj_id()?,
                seq: dec.take_varint()?,
                fingerprint: dec.take_varint()?,
            },
            3 => WalRecord::PutConfirmed {
                id: dec.take_obj_id()?,
                version: dec.take_varint()?,
                fingerprint: dec.take_varint()?,
            },
            4 => WalRecord::Clean {
                id: dec.take_obj_id()?,
            },
            5 => WalRecord::ClientState {
                next_seq: dec.take_varint()?,
                horizon: dec.take_varint()?,
            },
            6 => WalRecord::PutAbandoned {
                id: dec.take_obj_id()?,
            },
            7 => WalRecord::HandoffIntent {
                root: dec.take_obj_id()?,
                successor: dec.take_site()?,
            },
            8 => WalRecord::HandoffComplete {
                root: dec.take_obj_id()?,
            },
            tag => {
                return Err(ObiError::Decode(format!("unknown WAL record tag {tag}")))
            }
        };
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(site: u32, n: u64) -> ObjId {
        ObjId::new(SiteId::new(site), n)
    }

    #[test]
    fn all_records_round_trip() {
        let records = vec![
            WalRecord::ObjectDelta {
                provider: SiteId::new(3),
                state: ReplicaState {
                    id: oid(3, 7),
                    class: "Counter".into(),
                    version: 42,
                    state: Bytes::from_static(b"\x01\x02\x03"),
                },
            },
            WalRecord::Op {
                target: oid(3, 7),
                method: "add".into(),
                args: vec![ObiValue::I64(5), ObiValue::Str("x".into())],
                succeeded: true,
            },
            WalRecord::Op {
                target: oid(1, 1),
                method: "fail".into(),
                args: vec![],
                succeeded: false,
            },
            WalRecord::PutIntent { id: oid(3, 7), seq: 19, fingerprint: 0xDEAD_BEEF },
            WalRecord::PutConfirmed { id: oid(3, 7), version: 43, fingerprint: 0xDEAD_BEEF },
            WalRecord::Clean { id: oid(2, 9) },
            WalRecord::ClientState { next_seq: 77, horizon: 70 },
            WalRecord::PutAbandoned { id: oid(3, 7) },
            WalRecord::HandoffIntent {
                root: oid(3, 7),
                successor: SiteId::new(4),
            },
            WalRecord::HandoffComplete { root: oid(3, 7) },
        ];
        for r in records {
            let bytes = r.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        let err = WalRecord::decode(&[200]).unwrap_err();
        assert!(matches!(err, ObiError::Decode(_)), "{err}");
    }

    #[test]
    fn truncated_payload_is_a_decode_error() {
        let full = WalRecord::PutIntent { id: oid(1, 2), seq: 3, fingerprint: 9 }.encode();
        for cut in 0..full.len() {
            assert!(WalRecord::decode(&full[..cut]).is_err(), "cut={cut}");
        }
        let full = WalRecord::HandoffIntent {
            root: oid(1, 2),
            successor: SiteId::new(3),
        }
        .encode();
        for cut in 0..full.len() {
            assert!(WalRecord::decode(&full[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn fingerprint_distinguishes_states_and_is_stable() {
        let s1 = ReplicaState {
            id: oid(1, 1),
            class: "Counter".into(),
            version: 7,
            state: Bytes::from_static(b"\x01\x02\x03"),
        };
        let mut s2 = s1.clone();
        s2.state = Bytes::from_static(b"\x01\x02\x04");
        assert_eq!(state_fingerprint(&s1), state_fingerprint(&s1.clone()));
        assert_ne!(state_fingerprint(&s1), state_fingerprint(&s2));
    }
}

//! Typed WAL record payloads.
//!
//! Each [`WalRecord`] is one logical durability event; it encodes to the
//! payload bytes of one [`crate::wal`] frame using the `obiwan-wire`
//! codec (tag byte + fields). Snapshots use the same record vocabulary,
//! so there is exactly one decode path for both files.
//!
//! The record set mirrors what a mobile site must not lose across a crash:
//!
//! * [`WalRecord::ObjectDelta`] — the serialized state of a replica that
//!   went dirty (an incremental delta in the log-structured sense: later
//!   deltas for the same object supersede earlier ones).
//! * [`WalRecord::Op`] — one journaled `DisconnectedSession` invocation.
//! * [`WalRecord::PutIntent`] — "about to send `put` for `id` as request
//!   `seq`". Written and fsynced *before* the RPC leaves, so a replayed
//!   reintegration reuses the same request id and the server's ReplyCache
//!   deduplicates it (exactly-once).
//! * [`WalRecord::PutConfirmed`] — the put was acknowledged at `version`;
//!   the object is clean and its delta/intent records are superseded.
//! * [`WalRecord::PutAbandoned`] — the put was *definitively rejected*
//!   (an application-level error, not a connectivity failure). The master
//!   processed the request and cached the rejection, so the intent's seq
//!   is spent: reusing it would replay the cached error forever. The
//!   replica stays dirty; only the pending intent is dropped.
//! * [`WalRecord::Clean`] — the replica was refreshed from the master
//!   (conflict resolution or explicit refresh); pending deltas are moot.
//! * [`WalRecord::ClientState`] — RMI client watermark: next request
//!   sequence number and the settled reply horizon.

use bytes::Bytes;
use obiwan_util::{ObiError, ObjId, Result, SiteId};
use obiwan_wire::{Decoder, Encoder, ObiValue, ReplicaState};

/// One durability event. See the module docs for the lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A replica of an object mastered at `provider` went dirty with the
    /// given serialized state.
    ObjectDelta {
        provider: SiteId,
        state: ReplicaState,
    },
    /// One journaled disconnected-session invocation.
    Op {
        target: ObjId,
        method: String,
        args: Vec<ObiValue>,
        succeeded: bool,
    },
    /// A `put` for `id` is about to be sent as request `seq`.
    PutIntent { id: ObjId, seq: u64 },
    /// The `put` for `id` was acknowledged; the replica is clean at
    /// `version`.
    PutConfirmed { id: ObjId, version: u64 },
    /// The `put` for `id` was definitively rejected; its request seq is
    /// spent but the replica remains dirty.
    PutAbandoned { id: ObjId },
    /// The replica of `id` was refreshed from its master; it is clean.
    Clean { id: ObjId },
    /// RMI client watermark state.
    ClientState { next_seq: u64, horizon: u64 },
}

impl WalRecord {
    /// Encodes this record to a WAL frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            WalRecord::ObjectDelta { provider, state } => {
                enc.put_u8(0);
                enc.put_site(*provider);
                enc.put_obj_id(state.id);
                enc.put_str(&state.class);
                enc.put_varint(state.version);
                enc.put_bytes(&state.state);
            }
            WalRecord::Op {
                target,
                method,
                args,
                succeeded,
            } => {
                enc.put_u8(1);
                enc.put_obj_id(*target);
                enc.put_str(method);
                enc.put_varint(args.len() as u64);
                for a in args {
                    enc.put_value(a);
                }
                enc.put_u8(u8::from(*succeeded));
            }
            WalRecord::PutIntent { id, seq } => {
                enc.put_u8(2);
                enc.put_obj_id(*id);
                enc.put_varint(*seq);
            }
            WalRecord::PutConfirmed { id, version } => {
                enc.put_u8(3);
                enc.put_obj_id(*id);
                enc.put_varint(*version);
            }
            WalRecord::Clean { id } => {
                enc.put_u8(4);
                enc.put_obj_id(*id);
            }
            WalRecord::ClientState { next_seq, horizon } => {
                enc.put_u8(5);
                enc.put_varint(*next_seq);
                enc.put_varint(*horizon);
            }
            WalRecord::PutAbandoned { id } => {
                enc.put_u8(6);
                enc.put_obj_id(*id);
            }
        }
        enc.finish().to_vec()
    }

    /// Decodes a WAL frame payload. A CRC-valid payload that fails here is
    /// format skew, not a torn tail, and recovery reports it as an error.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut dec = Decoder::new(payload);
        let record = match dec.take_u8()? {
            0 => {
                let provider = dec.take_site()?;
                let id = dec.take_obj_id()?;
                let class = dec.take_str()?;
                let version = dec.take_varint()?;
                let state = Bytes::copy_from_slice(dec.take_bytes_ref()?);
                WalRecord::ObjectDelta {
                    provider,
                    state: ReplicaState {
                        id,
                        class,
                        version,
                        state,
                    },
                }
            }
            1 => {
                let target = dec.take_obj_id()?;
                let method = dec.take_str()?;
                let n = dec.take_varint()? as usize;
                let mut args = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    args.push(dec.take_value()?);
                }
                let succeeded = dec.take_u8()? != 0;
                WalRecord::Op {
                    target,
                    method,
                    args,
                    succeeded,
                }
            }
            2 => WalRecord::PutIntent {
                id: dec.take_obj_id()?,
                seq: dec.take_varint()?,
            },
            3 => WalRecord::PutConfirmed {
                id: dec.take_obj_id()?,
                version: dec.take_varint()?,
            },
            4 => WalRecord::Clean {
                id: dec.take_obj_id()?,
            },
            5 => WalRecord::ClientState {
                next_seq: dec.take_varint()?,
                horizon: dec.take_varint()?,
            },
            6 => WalRecord::PutAbandoned {
                id: dec.take_obj_id()?,
            },
            tag => {
                return Err(ObiError::Decode(format!("unknown WAL record tag {tag}")))
            }
        };
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid(site: u32, n: u64) -> ObjId {
        ObjId::new(SiteId::new(site), n)
    }

    #[test]
    fn all_records_round_trip() {
        let records = vec![
            WalRecord::ObjectDelta {
                provider: SiteId::new(3),
                state: ReplicaState {
                    id: oid(3, 7),
                    class: "Counter".into(),
                    version: 42,
                    state: Bytes::from_static(b"\x01\x02\x03"),
                },
            },
            WalRecord::Op {
                target: oid(3, 7),
                method: "add".into(),
                args: vec![ObiValue::I64(5), ObiValue::Str("x".into())],
                succeeded: true,
            },
            WalRecord::Op {
                target: oid(1, 1),
                method: "fail".into(),
                args: vec![],
                succeeded: false,
            },
            WalRecord::PutIntent { id: oid(3, 7), seq: 19 },
            WalRecord::PutConfirmed { id: oid(3, 7), version: 43 },
            WalRecord::Clean { id: oid(2, 9) },
            WalRecord::ClientState { next_seq: 77, horizon: 70 },
            WalRecord::PutAbandoned { id: oid(3, 7) },
        ];
        for r in records {
            let bytes = r.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn unknown_tag_is_a_decode_error() {
        let err = WalRecord::decode(&[200]).unwrap_err();
        assert!(matches!(err, ObiError::Decode(_)), "{err}");
    }

    #[test]
    fn truncated_payload_is_a_decode_error() {
        let full = WalRecord::PutIntent { id: oid(1, 2), seq: 3 }.encode();
        for cut in 0..full.len() {
            assert!(WalRecord::decode(&full[..cut]).is_err(), "cut={cut}");
        }
    }
}

//! Durable object store for OBIWAN sites.
//!
//! The paper's disconnected-operation story assumes the mobile site keeps
//! its dirty replicas and op log in memory; this crate makes them survive a
//! crash, in the spirit of log-structured persistent object stores (ROADMAP
//! item 3). Three layers:
//!
//! * [`storage`] — the byte-level [`Storage`] trait with a real
//!   [`FileStorage`] backend and a fault-injecting [`MemStorage`] for
//!   crash testing.
//! * [`wal`] — CRC-framed append-only log with group commit and torn-tail
//!   truncation on replay.
//! * [`record`] / [`durable`] — typed durability events and the
//!   [`Durable`] write-through wrapper `ObiProcess` and
//!   `DisconnectedSession` log through, plus [`RecoveredState`] handed
//!   back after a restart.
//!
//! See `DESIGN.md` §4e for the record format and the recovery invariants.

pub mod durable;
pub mod record;
pub mod storage;
pub mod wal;

pub use durable::{
    Durable, DurableOptions, PendingPut, RecoveredOp, RecoveredState, SEQ_EPOCH_SKIP, SNAP_FILE,
    WAL_FILE,
};
pub use record::{state_fingerprint, WalRecord};
pub use storage::{FileStorage, MemStorage, Storage};
pub use wal::{replay, Replay, Wal, WalOptions, WalStats};

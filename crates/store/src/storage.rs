//! Pluggable byte-level storage for the durability layer.
//!
//! The WAL and snapshot code never touch the filesystem directly; they go
//! through the [`Storage`] trait. Two backends ship with the crate:
//!
//! * [`FileStorage`] — real files under a directory, with `fsync` mapped to
//!   [`std::fs::File::sync_data`] and snapshot replacement done as
//!   write-temp-then-rename so a crash never leaves a half-written snapshot.
//! * [`MemStorage`] — an in-memory map used by tests and benches. It models
//!   the failure semantics that matter for recovery: a SIGKILL-equivalent
//!   [`MemStorage::crash_keeping`] that truncates a file to an arbitrary
//!   byte offset (as if the tail of an append never reached the platter),
//!   and an operation budget ([`MemStorage::fail_after`]) after which every
//!   write returns [`ObiError::Storage`].
//!
//! Files are flat, named blobs — there is no directory structure. The
//! durability layer uses exactly two names per site: `"wal"` and `"snap"`.

use obiwan_util::sync::Mutex;
use obiwan_util::{ObiError, Result};
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Byte-level operations the durability layer needs from a backend.
///
/// All methods are `&self`: backends are internally synchronized so one
/// storage instance can be shared by the WAL writer and a compaction pass.
pub trait Storage: Send + Sync {
    /// Full contents of `name`; an empty vector if the file does not exist.
    fn read(&self, name: &str) -> Result<Vec<u8>>;

    /// Current length of `name` in bytes (0 if absent).
    fn len(&self, name: &str) -> Result<u64>;

    /// Appends `bytes` at the end of `name`, creating it if absent. The
    /// bytes are *not* durable until [`Storage::sync`] returns.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Forces previously appended bytes of `name` to stable storage.
    fn sync(&self, name: &str) -> Result<()>;

    /// Truncates `name` to `len` bytes (used to drop a torn WAL tail).
    fn truncate(&self, name: &str, len: u64) -> Result<()>;

    /// Atomically replaces the contents of `name` with `bytes` and makes
    /// the replacement durable. A crash during `replace` leaves either the
    /// old contents or the new contents, never a mixture.
    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()>;
}

// ---------------------------------------------------------------------------
// In-memory backend with fault injection
// ---------------------------------------------------------------------------

#[derive(Default)]
struct MemFile {
    data: Vec<u8>,
    /// Prefix length guaranteed durable (advanced by `sync`/`replace`).
    synced: usize,
}

#[derive(Default)]
struct MemInner {
    files: BTreeMap<String, MemFile>,
    /// `Some(n)`: the next `n` mutating operations succeed, after which
    /// every mutating operation fails with `ObiError::Storage`.
    budget: Option<u64>,
    syncs: u64,
}

/// In-memory [`Storage`] with crash and write-failure injection.
#[derive(Default)]
pub struct MemStorage {
    inner: Mutex<MemInner>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates a SIGKILL/power-loss: the surviving contents of `name`
    /// become exactly its first `keep` bytes (clamped to the current
    /// length), regardless of sync state. Sweeping `keep` over every offset
    /// exercises recovery against every possible torn tail.
    pub fn crash_keeping(&self, name: &str, keep: u64) {
        let mut inner = self.inner.lock();
        if let Some(f) = inner.files.get_mut(name) {
            let keep = (keep as usize).min(f.data.len());
            f.data.truncate(keep);
            f.synced = keep;
        }
    }

    /// After `ops` more successful mutating operations, every subsequent
    /// mutating operation returns [`ObiError::Storage`].
    pub fn fail_after(&self, ops: u64) {
        self.inner.lock().budget = Some(ops);
    }

    /// Removes a previously armed failure budget.
    pub fn heal(&self) {
        self.inner.lock().budget = None;
    }

    /// Number of bytes of `name` that have been made durable by `sync`.
    /// Tests use this to assert group commit batches fsyncs.
    pub fn synced_len(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .files
            .get(name)
            .map_or(0, |f| f.synced as u64)
    }

    /// Total number of `sync` calls served (fsync count for bench/tests).
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }
}

impl MemInner {
    fn charge(&mut self) -> Result<()> {
        match &mut self.budget {
            None => Ok(()),
            Some(0) => Err(ObiError::Storage("injected write failure".into())),
            Some(n) => {
                *n -= 1;
                Ok(())
            }
        }
    }
}

impl Storage for MemStorage {
    fn read(&self, name: &str) -> Result<Vec<u8>> {
        Ok(self
            .inner
            .lock()
            .files
            .get(name)
            .map_or_else(Vec::new, |f| f.data.clone()))
    }

    fn len(&self, name: &str) -> Result<u64> {
        Ok(self
            .inner
            .lock()
            .files
            .get(name)
            .map_or(0, |f| f.data.len() as u64))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.charge()?;
        inner
            .files
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.charge()?;
        inner.syncs += 1;
        if let Some(f) = inner.files.get_mut(name) {
            f.synced = f.data.len();
        }
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.charge()?;
        if let Some(f) = inner.files.get_mut(name) {
            let len = (len as usize).min(f.data.len());
            f.data.truncate(len);
            f.synced = f.synced.min(len);
        }
        Ok(())
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.charge()?;
        inner.syncs += 1;
        let f = inner.files.entry(name.to_string()).or_default();
        f.data = bytes.to_vec();
        f.synced = f.data.len();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Filesystem backend
// ---------------------------------------------------------------------------

/// [`Storage`] over real files under a root directory.
///
/// One append handle per name is cached so group commit pays one `write` +
/// one `sync_data` per batch, not an open/close per record.
pub struct FileStorage {
    root: PathBuf,
    handles: Mutex<BTreeMap<String, std::fs::File>>,
}

fn io_err(op: &str, e: std::io::Error) -> ObiError {
    ObiError::Storage(format!("{op}: {e}"))
}

impl FileStorage {
    /// Opens (and creates if needed) the directory the blobs live under.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create storage dir", e))?;
        Ok(FileStorage {
            root,
            handles: Mutex::new(BTreeMap::new()),
        })
    }

    fn with_handle<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut std::fs::File) -> std::io::Result<T>,
    ) -> Result<T> {
        let mut handles = self.handles.lock();
        if !handles.contains_key(name) {
            let file = std::fs::OpenOptions::new()
                .read(true)
                .append(true)
                .create(true)
                .open(self.root.join(name))
                .map_err(|e| io_err("open", e))?;
            handles.insert(name.to_string(), file);
        }
        f(handles.get_mut(name).expect("just inserted")).map_err(|e| io_err(name, e))
    }
}

impl Storage for FileStorage {
    fn read(&self, name: &str) -> Result<Vec<u8>> {
        self.with_handle(name, |f| {
            let mut buf = Vec::new();
            f.seek(SeekFrom::Start(0))?;
            f.read_to_end(&mut buf)?;
            Ok(buf)
        })
    }

    fn len(&self, name: &str) -> Result<u64> {
        self.with_handle(name, |f| f.metadata().map(|m| m.len()))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<()> {
        // The handle is opened with O_APPEND, so every write lands at the
        // current end of file even after a truncate.
        self.with_handle(name, |f| f.write_all(bytes))
    }

    fn sync(&self, name: &str) -> Result<()> {
        self.with_handle(name, |f| f.sync_data())
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        self.with_handle(name, |f| {
            f.set_len(len)?;
            f.sync_data()
        })
    }

    fn replace(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let tmp = self.root.join(format!("{name}.tmp"));
        let path = self.root.join(name);
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create tmp", e))?;
            f.write_all(bytes).map_err(|e| io_err("write tmp", e))?;
            f.sync_data().map_err(|e| io_err("sync tmp", e))?;
        }
        // Drop any cached handle: it points at the old inode.
        self.handles.lock().remove(name);
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename", e))?;
        // Durability of the rename itself needs the directory fsynced —
        // compaction truncates the WAL as soon as replace() returns Ok, so
        // a swallowed failure here could lose the snapshot AND the log.
        let dir = std::fs::File::open(&self.root).map_err(|e| io_err("open dir", e))?;
        dir.sync_data().map_err(|e| io_err("sync dir", e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_append_read_roundtrip() {
        let s = MemStorage::new();
        s.append("wal", b"hello ").unwrap();
        s.append("wal", b"world").unwrap();
        assert_eq!(s.read("wal").unwrap(), b"hello world");
        assert_eq!(s.len("wal").unwrap(), 11);
        assert_eq!(s.read("missing").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn mem_sync_tracks_durable_prefix() {
        let s = MemStorage::new();
        s.append("wal", b"aaaa").unwrap();
        assert_eq!(s.synced_len("wal"), 0);
        s.sync("wal").unwrap();
        assert_eq!(s.synced_len("wal"), 4);
        s.append("wal", b"bb").unwrap();
        assert_eq!(s.synced_len("wal"), 4);
    }

    #[test]
    fn mem_crash_truncates_to_offset() {
        let s = MemStorage::new();
        s.append("wal", b"0123456789").unwrap();
        s.crash_keeping("wal", 4);
        assert_eq!(s.read("wal").unwrap(), b"0123");
        // Clamped, never extends.
        s.crash_keeping("wal", 400);
        assert_eq!(s.read("wal").unwrap(), b"0123");
    }

    #[test]
    fn mem_fault_budget_fails_writes_then_heals() {
        let s = MemStorage::new();
        s.fail_after(1);
        s.append("wal", b"ok").unwrap();
        let err = s.append("wal", b"no").unwrap_err();
        assert!(matches!(err, ObiError::Storage(_)), "{err}");
        assert!(s.sync("wal").is_err());
        s.heal();
        s.append("wal", b"yes").unwrap();
        assert_eq!(s.read("wal").unwrap(), b"okyes");
    }

    #[test]
    fn mem_replace_is_atomic_and_durable() {
        let s = MemStorage::new();
        s.append("snap", b"old").unwrap();
        s.replace("snap", b"new-snapshot").unwrap();
        assert_eq!(s.read("snap").unwrap(), b"new-snapshot");
        assert_eq!(s.synced_len("snap"), 12);
    }

    #[test]
    fn file_storage_roundtrip_truncate_replace() {
        let dir = std::env::temp_dir().join(format!(
            "obiwan-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let s = FileStorage::open(&dir).unwrap();
        s.append("wal", b"abcdef").unwrap();
        s.sync("wal").unwrap();
        assert_eq!(s.read("wal").unwrap(), b"abcdef");
        s.truncate("wal", 3).unwrap();
        assert_eq!(s.read("wal").unwrap(), b"abc");
        s.append("wal", b"XYZ").unwrap();
        assert_eq!(s.read("wal").unwrap(), b"abcXYZ");
        s.replace("snap", b"snapshot-bytes").unwrap();
        assert_eq!(s.read("snap").unwrap(), b"snapshot-bytes");
        assert_eq!(s.len("snap").unwrap(), 14);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Append-only write-ahead log with CRC framing and group commit.
//!
//! # Record framing
//!
//! Every record is framed as a fixed 8-byte header followed by the payload:
//!
//! ```text
//! | payload_len: u32 LE | crc32(payload): u32 LE | payload bytes |
//! ```
//!
//! Payloads themselves are encoded with the `obiwan-wire` codec (see
//! [`crate::record`]); the frame layer treats them as opaque bytes. The
//! fixed header keeps offset arithmetic trivial during recovery, and the
//! checksum is the zlib-compatible [`obiwan_wire::crc32`] so external
//! tooling can verify a log.
//!
//! # Group commit
//!
//! `fsync` dominates append cost, so the log batches it: appends buffer up
//! to [`WalOptions::group_commit`] records and one [`Storage::sync`] makes
//! the whole batch durable. [`Wal::commit`] forces the sync early — callers
//! use it before externally-visible actions (e.g. sending a `put` whose
//! intent record must be durable first).
//!
//! # Torn tails
//!
//! A crash can leave a partial frame at the end of the log. [`replay`]
//! scans from the start; the first frame that is short, overruns the file,
//! or fails its checksum is the torn tail, and the file is truncated at the
//! last good record. Everything before it is returned in order. A corrupt
//! *interior* record cannot be distinguished from a torn tail by this rule;
//! the records after it are dropped too, which is the safe direction (an
//! un-replayed record is re-done work, a mis-replayed one is corruption).

use crate::storage::Storage;
use obiwan_util::sync::Mutex;
use obiwan_util::{ObiError, Result};
use obiwan_wire::crc32;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame header size: `payload_len` (u32) + `crc` (u32).
pub const FRAME_HEADER: usize = 8;

/// Tuning knobs for a [`Wal`].
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// How many records may accumulate before an append triggers a sync.
    /// `1` means sync-per-record (no batching).
    pub group_commit: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { group_commit: 8 }
    }
}

/// Counters exposed for benchmarks and tests.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended over the log's lifetime.
    pub appends: AtomicU64,
    /// `Storage::sync` calls issued (one per group-commit batch).
    pub syncs: AtomicU64,
    /// Payload + header bytes written.
    pub bytes: AtomicU64,
}

impl WalStats {
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }
    pub fn syncs(&self) -> u64 {
        self.syncs.load(Ordering::Relaxed)
    }
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

struct WalState {
    /// Records appended since the last sync.
    unsynced: usize,
}

/// The append side of the write-ahead log.
///
/// Internally synchronized; clones of the `Arc` can append concurrently and
/// records never interleave mid-frame.
pub struct Wal {
    storage: Arc<dyn Storage>,
    name: String,
    opts: WalOptions,
    state: Mutex<WalState>,
    stats: WalStats,
}

impl Wal {
    pub fn new(storage: Arc<dyn Storage>, name: impl Into<String>, opts: WalOptions) -> Self {
        Wal {
            storage,
            name: name.into(),
            opts,
            state: Mutex::new(WalState { unsynced: 0 }),
            stats: WalStats::default(),
        }
    }

    /// Frames `payload` and appends it. Durable only after the group's sync
    /// (triggered here when the batch fills, or explicitly by [`commit`]).
    ///
    /// [`commit`]: Wal::commit
    pub fn append(&self, payload: &[u8]) -> Result<()> {
        let frame = frame(payload);
        let mut state = self.state.lock();
        self.storage.append(&self.name, &frame)?;
        self.stats.appends.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes.fetch_add(frame.len() as u64, Ordering::Relaxed);
        state.unsynced += 1;
        if state.unsynced >= self.opts.group_commit.max(1) {
            self.sync_locked(&mut state)?;
        }
        Ok(())
    }

    /// Forces any buffered records to stable storage. No-op when the tail
    /// is already durable.
    pub fn commit(&self) -> Result<()> {
        let mut state = self.state.lock();
        if state.unsynced > 0 {
            self.sync_locked(&mut state)?;
        }
        Ok(())
    }

    /// Drops every record: truncates the log to zero bytes. Used after a
    /// snapshot has captured the state the log described.
    pub fn reset(&self) -> Result<()> {
        let mut state = self.state.lock();
        self.storage.truncate(&self.name, 0)?;
        state.unsynced = 0;
        Ok(())
    }

    /// Current log length in bytes.
    pub fn len(&self) -> Result<u64> {
        self.storage.len(&self.name)
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    pub fn stats(&self) -> &WalStats {
        &self.stats
    }

    fn sync_locked(&self, state: &mut WalState) -> Result<()> {
        self.storage.sync(&self.name)?;
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        state.unsynced = 0;
        Ok(())
    }
}

/// Encodes one frame: header + payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("WAL payload exceeds u32::MAX");
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Outcome of scanning a log on recovery.
#[derive(Debug)]
pub struct Replay {
    /// Payloads of every intact record, in append order.
    pub payloads: Vec<Vec<u8>>,
    /// Bytes dropped from the torn tail (0 for a clean log).
    pub truncated: u64,
}

/// Scans the log named `name`, truncating any torn tail in place, and
/// returns the intact record payloads in append order.
pub fn replay(storage: &dyn Storage, name: &str) -> Result<Replay> {
    let bytes = storage.read(name)?;
    let mut off = 0usize;
    let mut payloads = Vec::new();
    while bytes.len() - off >= FRAME_HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes"));
        let start = off + FRAME_HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // length field overruns the file: torn
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // payload damaged: torn
        }
        payloads.push(payload.to_vec());
        off = end;
    }
    let truncated = (bytes.len() - off) as u64;
    if truncated > 0 {
        storage.truncate(name, off as u64)?;
    }
    Ok(Replay { payloads, truncated })
}

/// Like [`replay`] but decodes each payload with `f`, failing fast on a
/// CRC-valid record that does not decode (version skew, not a torn tail).
pub fn replay_decoded<T>(
    storage: &dyn Storage,
    name: &str,
    mut f: impl FnMut(&[u8]) -> Result<T>,
) -> Result<(Vec<T>, u64)> {
    let replay = replay(storage, name)?;
    let mut out = Vec::with_capacity(replay.payloads.len());
    for (i, payload) in replay.payloads.iter().enumerate() {
        out.push(f(payload).map_err(|e| {
            ObiError::Storage(format!("record {i} of `{name}` is undecodable: {e}"))
        })?);
    }
    Ok((out, replay.truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn wal_over(mem: &Arc<MemStorage>, group: usize) -> Wal {
        Wal::new(
            mem.clone() as Arc<dyn Storage>,
            "wal",
            WalOptions { group_commit: group },
        )
    }

    #[test]
    fn append_then_replay_roundtrips_in_order() {
        let mem = Arc::new(MemStorage::new());
        let wal = wal_over(&mem, 4);
        for i in 0..10u8 {
            wal.append(&[i; 3]).unwrap();
        }
        wal.commit().unwrap();
        let replay = replay(mem.as_ref(), "wal").unwrap();
        assert_eq!(replay.truncated, 0);
        assert_eq!(replay.payloads.len(), 10);
        for (i, p) in replay.payloads.iter().enumerate() {
            assert_eq!(p, &vec![i as u8; 3]);
        }
    }

    #[test]
    fn group_commit_batches_syncs() {
        let mem = Arc::new(MemStorage::new());
        let wal = wal_over(&mem, 8);
        for _ in 0..16 {
            wal.append(b"r").unwrap();
        }
        // 16 appends at group size 8 => exactly 2 syncs.
        assert_eq!(wal.stats().syncs(), 2);
        assert_eq!(wal.stats().appends(), 16);
        wal.append(b"r").unwrap();
        assert_eq!(wal.stats().syncs(), 2, "partial group must not sync");
        wal.commit().unwrap();
        assert_eq!(wal.stats().syncs(), 3);
        wal.commit().unwrap();
        assert_eq!(wal.stats().syncs(), 3, "commit with clean tail is a no-op");
    }

    #[test]
    fn every_crash_offset_recovers_a_record_prefix() {
        let mem = Arc::new(MemStorage::new());
        let wal = wal_over(&mem, 1);
        let mut boundaries = vec![0u64]; // byte offset after each record
        for i in 0..6u8 {
            wal.append(&vec![i; (i as usize + 1) * 7]).unwrap();
            boundaries.push(wal.len().unwrap());
        }
        let total = *boundaries.last().unwrap();
        let original = mem.read("wal").unwrap();
        for keep in 0..=total {
            // Restore the full log, then crash at this offset.
            mem.replace("wal", &original).unwrap();
            mem.crash_keeping("wal", keep);
            let replay = replay(mem.as_ref(), "wal").unwrap();
            // Exactly the records wholly inside `keep` bytes survive.
            let expect = boundaries.iter().filter(|&&b| b > 0 && b <= keep).count();
            assert_eq!(replay.payloads.len(), expect, "keep={keep}");
            let good_end = boundaries[expect];
            assert_eq!(replay.truncated, keep - good_end, "keep={keep}");
            assert_eq!(mem.len("wal").unwrap(), good_end, "tail not truncated");
            for (i, p) in replay.payloads.iter().enumerate() {
                assert_eq!(p, &vec![i as u8; (i + 1) * 7]);
            }
        }
    }

    #[test]
    fn bit_flip_in_payload_drops_from_that_record() {
        let mem = Arc::new(MemStorage::new());
        let wal = wal_over(&mem, 1);
        for i in 0..4u8 {
            wal.append(&[i; 9]).unwrap();
        }
        let mut bytes = mem.read("wal").unwrap();
        // Flip one payload bit inside record 2.
        let record = FRAME_HEADER + 9;
        bytes[2 * record + FRAME_HEADER + 4] ^= 0x10;
        mem.replace("wal", &bytes).unwrap();
        let replay = replay(mem.as_ref(), "wal").unwrap();
        assert_eq!(replay.payloads.len(), 2, "records 0 and 1 survive");
        assert!(replay.truncated > 0);
    }

    #[test]
    fn reset_empties_the_log() {
        let mem = Arc::new(MemStorage::new());
        let wal = wal_over(&mem, 2);
        wal.append(b"abc").unwrap();
        wal.commit().unwrap();
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        assert_eq!(replay(mem.as_ref(), "wal").unwrap().payloads.len(), 0);
        // Appends after reset start a fresh, readable log.
        wal.append(b"xyz").unwrap();
        wal.commit().unwrap();
        assert_eq!(replay(mem.as_ref(), "wal").unwrap().payloads, vec![b"xyz".to_vec()]);
    }

    #[test]
    fn storage_failure_surfaces_as_storage_error() {
        let mem = Arc::new(MemStorage::new());
        let wal = wal_over(&mem, 1);
        mem.fail_after(0);
        let err = wal.append(b"doomed").unwrap_err();
        assert!(matches!(err, ObiError::Storage(_)), "{err}");
    }
}

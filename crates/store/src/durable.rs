//! The [`Durable`] write-through wrapper and crash recovery.
//!
//! One `Durable` instance backs one site. The process and the mobility
//! layer call `log_*` methods at each state transition that must survive a
//! crash; the wrapper appends a [`WalRecord`] to the WAL and mirrors the
//! resulting durable state in memory so periodic [`Durable::compact`]
//! passes can fold the log into a snapshot.
//!
//! # Files
//!
//! Two blobs in the [`Storage`] backend: `"snap"` (the last compacted
//! snapshot, replaced atomically) and `"wal"` (records appended since).
//! Recovery = replay snapshot records, then WAL records, in order.
//!
//! # Recovery invariants
//!
//! 1. **Only dirty replicas are persisted.** A clean replica can always be
//!    re-demanded from its master, so losing it costs a round trip, not
//!    data. The recovered state therefore contains exactly the replicas
//!    whose local updates had not reached their masters.
//! 2. **Put intents are durable before the RPC leaves, and a seq is only
//!    ever reused for the exact state it covered.** A `PutIntent` record
//!    carries the request sequence number the `put` will use plus a
//!    fingerprint of the state it sends; it is fsynced before the message
//!    is sent. Replaying reintegration after a crash reuses that sequence
//!    number *only while the replica still holds that state*, so the
//!    master's ReplyCache either serves the cached reply (the put had been
//!    applied) or admits it as new — applied exactly once either way. If
//!    the replica was mutated again before the retry (offline edits after
//!    a recovered intent, or between a connectivity failure and the next
//!    push), the old seq may already be spent at the master with the OLD
//!    state: reusing it would serve the cached ack without applying the
//!    new state, silently dropping it. The put path instead retires the
//!    stale intent (`PutAbandoned`) and logs a fresh one.
//! 3. **Recovered request sequence numbers never collide with pre-crash
//!    ones.** Requests other than puts (demands, refreshes) consume
//!    sequence numbers without logging them, so recovery advances the
//!    restored counter past every persisted watermark *plus*
//!    [`SEQ_EPOCH_SKIP`]; replayed puts are the only deliberate reuses.
//! 4. **Torn tails are truncated, never guessed at** (see [`crate::wal`]).
//!    A record lost from the tail means the corresponding state change is
//!    re-done (a put retried, an op re-journaled) — never half-applied.

use crate::record::{state_fingerprint, WalRecord};
use crate::storage::Storage;
use crate::wal::{self, Wal, WalOptions, WalStats};
use obiwan_util::sync::Mutex;
use obiwan_util::{ObjId, Result, SiteId};
use obiwan_wire::{ObiValue, ReplicaState};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How far past every persisted sequence watermark the restored request
/// counter jumps (invariant 3 above). Pre-crash requests that were never
/// logged (demands, refreshes) number far fewer than this between two
/// `ClientState` records in any realistic session.
pub const SEQ_EPOCH_SKIP: u64 = 1 << 20;

/// Blob names used by the durability layer.
pub const WAL_FILE: &str = "wal";
pub const SNAP_FILE: &str = "snap";

/// Tuning knobs for [`Durable::open`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Group-commit batch size for the WAL (see [`WalOptions`]).
    pub group_commit: usize,
    /// Compact (snapshot + truncate WAL) once this many records have been
    /// appended since the last snapshot. `0` disables auto-compaction.
    pub compact_every: u64,
    /// Log a `ClientState` checkpoint once this many confirmed RPCs have
    /// been counted via [`Durable::note_confirmed_rpc`] since the last
    /// checkpoint. Requests other than puts burn sequence numbers without
    /// logging them (recovery invariant 3), so between checkpoints the
    /// restored counter relies on [`SEQ_EPOCH_SKIP`] alone; this bounds
    /// the unlogged drift of an RPC-heavy life to N instead of a whole
    /// session. `0` disables periodic checkpoints.
    pub checkpoint_every_rpcs: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            group_commit: 8,
            compact_every: 1024,
            checkpoint_every_rpcs: 64,
        }
    }
}

/// A durable-but-unconfirmed put: the request sequence number the put
/// uses and the fingerprint of the serialized state that seq covers
/// ([`state_fingerprint`]). The seq may be reused only for that exact
/// state; any other state needs a fresh seq (recovery invariant 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingPut {
    pub seq: u64,
    pub fingerprint: u64,
}

/// One journaled disconnected-session invocation, as recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredOp {
    pub target: ObjId,
    pub method: String,
    pub args: Vec<ObiValue>,
    pub succeeded: bool,
}

/// Everything a restarted site gets back from its log.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Dirty replicas to reinstall, keyed by object: the master site and
    /// the latest serialized state. Clean replicas are absent by design
    /// (recovery invariant 1).
    pub dirty: BTreeMap<ObjId, (SiteId, ReplicaState)>,
    /// The journaled op log, in original order.
    pub ops: Vec<RecoveredOp>,
    /// Puts whose intent was durable but whose confirmation was not:
    /// object → the request seq the put used (or will use) and the
    /// fingerprint of the state that seq covers.
    pub pending_puts: BTreeMap<ObjId, PendingPut>,
    /// Restored RMI request counter (already epoch-skipped; invariant 3).
    pub next_request_seq: u64,
    /// Restored reply horizon for the client's `HorizonTracker`.
    pub horizon: u64,
    /// Mastership handoffs in flight or completed at crash time: root →
    /// (successor, completed). Recovery uses these directionally — a
    /// recovered replica of a handed-off root points its provider at the
    /// successor, and this site must never come back up mastering the root.
    pub handoffs: BTreeMap<ObjId, (SiteId, bool)>,
    /// Bytes dropped from the WAL's torn tail (0 for a clean shutdown).
    pub truncated_bytes: u64,
    /// Intact WAL records replayed (excludes the snapshot).
    pub wal_records: u64,
}

impl RecoveredState {
    /// True when the log held nothing to restore.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
            && self.ops.is_empty()
            && self.pending_puts.is_empty()
            && self.next_request_seq == 0
    }
}

/// The in-memory mirror of durable state, maintained so compaction can
/// write a snapshot without re-reading the WAL.
#[derive(Default)]
struct Mirror {
    dirty: BTreeMap<ObjId, (SiteId, ReplicaState)>,
    ops: Vec<RecoveredOp>,
    pending_puts: BTreeMap<ObjId, PendingPut>,
    handoffs: BTreeMap<ObjId, (SiteId, bool)>,
    client: Option<(u64, u64)>, // (next_seq, horizon)
    records_since_compact: u64,
    rpcs_since_checkpoint: u64,
    max_seen_seq: u64,
}

impl Mirror {
    fn apply(&mut self, record: &WalRecord) {
        match record {
            WalRecord::ObjectDelta { provider, state } => {
                self.dirty.insert(state.id, (*provider, state.clone()));
            }
            WalRecord::Op {
                target,
                method,
                args,
                succeeded,
            } => self.ops.push(RecoveredOp {
                target: *target,
                method: method.clone(),
                args: args.clone(),
                succeeded: *succeeded,
            }),
            WalRecord::PutIntent { id, seq, fingerprint } => {
                self.pending_puts.insert(
                    *id,
                    PendingPut {
                        seq: *seq,
                        fingerprint: *fingerprint,
                    },
                );
                self.max_seen_seq = self.max_seen_seq.max(*seq);
            }
            WalRecord::PutConfirmed { id, fingerprint, .. } => {
                self.pending_puts.remove(id);
                // The ack covers one exact state. A delta that no longer
                // fingerprints to it was logged by a mutation racing the
                // RPC — that state is still unsent and must stay
                // recoverable.
                if self
                    .dirty
                    .get(id)
                    .is_some_and(|(_, s)| state_fingerprint(s) == *fingerprint)
                {
                    self.dirty.remove(id);
                }
            }
            WalRecord::PutAbandoned { id } => {
                // The seq is spent (the master cached a rejection for it)
                // but the state was NOT applied: keep the dirty delta.
                self.pending_puts.remove(id);
            }
            WalRecord::Clean { id } => {
                self.dirty.remove(id);
            }
            WalRecord::ClientState { next_seq, horizon } => {
                self.client = Some((*next_seq, *horizon));
                self.max_seen_seq = self.max_seen_seq.max(next_seq.saturating_sub(1));
            }
            WalRecord::HandoffIntent { root, successor } => {
                self.handoffs.insert(*root, (*successor, false));
            }
            WalRecord::HandoffComplete { root } => {
                if let Some(entry) = self.handoffs.get_mut(root) {
                    entry.1 = true;
                }
            }
        }
    }

    /// The record sequence a snapshot of this mirror consists of.
    fn snapshot_records(&self) -> Vec<WalRecord> {
        let mut out = Vec::new();
        if let Some((next_seq, horizon)) = self.client {
            out.push(WalRecord::ClientState { next_seq, horizon });
        }
        for (provider, state) in self.dirty.values() {
            out.push(WalRecord::ObjectDelta {
                provider: *provider,
                state: state.clone(),
            });
        }
        for (id, pending) in &self.pending_puts {
            out.push(WalRecord::PutIntent {
                id: *id,
                seq: pending.seq,
                fingerprint: pending.fingerprint,
            });
        }
        for op in &self.ops {
            out.push(WalRecord::Op {
                target: op.target,
                method: op.method.clone(),
                args: op.args.clone(),
                succeeded: op.succeeded,
            });
        }
        for (root, (successor, complete)) in &self.handoffs {
            out.push(WalRecord::HandoffIntent {
                root: *root,
                successor: *successor,
            });
            if *complete {
                out.push(WalRecord::HandoffComplete { root: *root });
            }
        }
        out
    }
}

/// Write-through durability for one site. See the module docs.
pub struct Durable {
    storage: Arc<dyn Storage>,
    wal: Wal,
    mirror: Mutex<Mirror>,
    compact_every: u64,
    checkpoint_every_rpcs: u64,
}

impl Durable {
    /// Opens (or creates) the log in `storage`, runs recovery, and returns
    /// the wrapper plus whatever state survived. The WAL's torn tail, if
    /// any, has been truncated by the time this returns.
    pub fn open(
        storage: Arc<dyn Storage>,
        opts: DurableOptions,
    ) -> Result<(Arc<Durable>, RecoveredState)> {
        // Snapshot first (it is never torn: `replace` is atomic), then the
        // WAL tail appended since that snapshot.
        let (snap_records, _) =
            wal::replay_decoded(storage.as_ref(), SNAP_FILE, WalRecord::decode)?;
        let (wal_records, truncated) =
            wal::replay_decoded(storage.as_ref(), WAL_FILE, WalRecord::decode)?;

        let mut mirror = Mirror::default();
        for r in snap_records.iter().chain(wal_records.iter()) {
            mirror.apply(r);
        }

        let (logged_next_seq, horizon) = mirror.client.unwrap_or((0, 0));
        // Any surviving history means a previous process life issued RPCs,
        // and only put/client-state records log their seqs — lookups, gets
        // and invokes burn sequence numbers invisibly. Restarting the
        // counter low would collide with those, and the provider's reply
        // cache would answer brand-new requests with stale cached replies.
        // So any non-empty log forces a fresh seq epoch; only a genuinely
        // blank store keeps the natural counter.
        let next_request_seq = if snap_records.is_empty() && wal_records.is_empty() {
            0 // nothing persisted: a fresh site keeps its natural counter
        } else {
            logged_next_seq.max(mirror.max_seen_seq + 1) + SEQ_EPOCH_SKIP
        };

        let recovered = RecoveredState {
            dirty: mirror.dirty.clone(),
            ops: mirror.ops.clone(),
            pending_puts: mirror.pending_puts.clone(),
            next_request_seq,
            horizon,
            handoffs: mirror.handoffs.clone(),
            truncated_bytes: truncated,
            wal_records: wal_records.len() as u64,
        };

        let durable = Arc::new(Durable {
            wal: Wal::new(
                storage.clone(),
                WAL_FILE,
                WalOptions {
                    group_commit: opts.group_commit,
                },
            ),
            storage,
            mirror: Mutex::new(mirror),
            compact_every: opts.compact_every,
            checkpoint_every_rpcs: opts.checkpoint_every_rpcs,
        });
        Ok((durable, recovered))
    }

    /// Logs that the replica of `state.id` (mastered at `provider`) went
    /// dirty with the given serialized state.
    ///
    /// Callers must not hold any shard guard across this call (enforced by
    /// the `no-io-under-shard-guard` lint): the append can trigger a group
    /// sync, and I/O under a shard guard would serialize the striped table.
    pub fn log_dirty(&self, provider: SiteId, state: ReplicaState) -> Result<()> {
        self.log(WalRecord::ObjectDelta { provider, state })
    }

    /// Journals one disconnected-session invocation.
    pub fn log_op(
        &self,
        target: ObjId,
        method: &str,
        args: &[ObiValue],
        succeeded: bool,
    ) -> Result<()> {
        self.log(WalRecord::Op {
            target,
            method: method.to_string(),
            args: args.to_vec(),
            succeeded,
        })
    }

    /// Logs the intent to send a `put` for `id` as request `seq` carrying
    /// the state fingerprinted by `fingerprint`, then forces the record
    /// durable. Must return `Ok` before the RPC leaves (recovery
    /// invariant 2).
    pub fn log_put_intent(&self, id: ObjId, seq: u64, fingerprint: u64) -> Result<()> {
        self.log(WalRecord::PutIntent { id, seq, fingerprint })?;
        self.wal.commit()
    }

    /// Logs that the put for `id` was acknowledged at `version`;
    /// `fingerprint` names the state the ack covered, so the mirror only
    /// retires a dirty delta that still matches it.
    pub fn log_confirm(&self, id: ObjId, version: u64, fingerprint: u64) -> Result<()> {
        self.log(WalRecord::PutConfirmed { id, version, fingerprint })
    }

    /// Logs that the pending put intent for `id` must never be retried
    /// under its request seq: either the master *definitively rejected*
    /// the put (its reply cache holds the rejection, so reusing the seq
    /// would replay the cached error), or the replica's state changed
    /// since the intent was logged (the seq may be spent at the master
    /// with the OLD state, so reusing it would ack the new state without
    /// applying it). The replica stays dirty either way. Forced durable
    /// immediately, like the intent it cancels.
    pub fn log_put_abandoned(&self, id: ObjId) -> Result<()> {
        self.log(WalRecord::PutAbandoned { id })?;
        self.wal.commit()
    }

    /// Logs that the replica of `id` was refreshed from its master.
    pub fn log_clean(&self, id: ObjId) -> Result<()> {
        self.log(WalRecord::Clean { id })
    }

    /// Logs the intent to hand mastership of `root` to `successor`, then
    /// forces the record durable — it must be on disk before the handoff
    /// RPC leaves, so a crash mid-handoff recovers pointing at the
    /// successor rather than resurrecting local mastership.
    pub fn log_handoff_intent(&self, root: ObjId, successor: SiteId) -> Result<()> {
        self.log(WalRecord::HandoffIntent { root, successor })?;
        self.wal.commit()
    }

    /// Logs that the successor acknowledged the handoff of `root`. Forced
    /// durable like the intent it settles.
    pub fn log_handoff_complete(&self, root: ObjId) -> Result<()> {
        self.log(WalRecord::HandoffComplete { root })?;
        self.wal.commit()
    }

    /// Handoffs recorded so far: root → (successor, completed).
    pub fn handoffs(&self) -> BTreeMap<ObjId, (SiteId, bool)> {
        self.mirror.lock().handoffs.clone()
    }

    /// Logs the RMI client watermark (request counter + reply horizon).
    pub fn log_client_state(&self, next_seq: u64, horizon: u64) -> Result<()> {
        self.log(WalRecord::ClientState { next_seq, horizon })
    }

    /// Counts one confirmed RPC against the periodic-checkpoint budget;
    /// every `checkpoint_every_rpcs`-th call logs a `ClientState` record
    /// carrying the watermark passed in. Returns whether a checkpoint was
    /// written.
    ///
    /// Puts persist the watermark on their own confirm path; this exists
    /// for the RPCs that don't (invokes, demands, refreshes), so a long
    /// RPC-heavy life between puts keeps its unlogged seq drift bounded by
    /// N rather than leaning on [`SEQ_EPOCH_SKIP`] for the whole session.
    pub fn note_confirmed_rpc(&self, next_seq: u64, horizon: u64) -> Result<bool> {
        if self.checkpoint_every_rpcs == 0 {
            return Ok(false);
        }
        let mut mirror = self.mirror.lock();
        mirror.rpcs_since_checkpoint += 1;
        if mirror.rpcs_since_checkpoint < self.checkpoint_every_rpcs {
            return Ok(false);
        }
        mirror.rpcs_since_checkpoint = 0;
        self.log_locked(&mut mirror, WalRecord::ClientState { next_seq, horizon })?;
        Ok(true)
    }

    /// Forces all buffered records durable now (group commit cut short).
    pub fn commit(&self) -> Result<()> {
        self.wal.commit()
    }

    /// The durable-but-unconfirmed put intent for `id`, if one exists. The
    /// put path reuses its seq — but only while the replica still holds
    /// the state the intent fingerprints — so a crash-replayed `put`
    /// carries the same request id as the original attempt.
    pub fn pending_put(&self, id: ObjId) -> Option<PendingPut> {
        self.mirror.lock().pending_puts.get(&id).copied()
    }

    /// Drops the journaled op log and pending-put markers after a completed
    /// reintegration, then compacts. Dirty-object deltas survive (objects
    /// that conflicted are still dirty).
    pub fn reset_session(&self) -> Result<()> {
        let mut mirror = self.mirror.lock();
        mirror.ops.clear();
        mirror.pending_puts.clear();
        self.compact_locked(&mut mirror)
    }

    /// Folds the WAL into a fresh snapshot and truncates it.
    pub fn compact(&self) -> Result<()> {
        let mut mirror = self.mirror.lock();
        self.compact_locked(&mut mirror)
    }

    /// WAL counters (appends, syncs, bytes) for benches and tests.
    pub fn wal_stats(&self) -> &WalStats {
        self.wal.stats()
    }

    /// Current WAL length in bytes.
    pub fn wal_len(&self) -> Result<u64> {
        self.wal.len()
    }

    fn log(&self, record: WalRecord) -> Result<()> {
        let mut mirror = self.mirror.lock();
        self.log_locked(&mut mirror, record)
    }

    /// Append + mirror under an already-held mirror guard (the lock is not
    /// re-entrant, so paths that inspect the mirror before logging go
    /// through here).
    fn log_locked(&self, mirror: &mut Mirror, record: WalRecord) -> Result<()> {
        self.wal.append(&record.encode())?;
        mirror.apply(&record);
        mirror.records_since_compact += 1;
        if self.compact_every > 0 && mirror.records_since_compact >= self.compact_every {
            self.compact_locked(mirror)?;
        }
        Ok(())
    }

    fn compact_locked(&self, mirror: &mut Mirror) -> Result<()> {
        let mut bytes = Vec::new();
        for record in mirror.snapshot_records() {
            let payload = record.encode();
            let len = payload.len() as u32;
            bytes.extend_from_slice(&len.to_le_bytes());
            bytes.extend_from_slice(&obiwan_wire::crc32(&payload).to_le_bytes());
            bytes.extend_from_slice(&payload);
        }
        // Snapshot becomes durable before the WAL is dropped; a crash
        // between the two replays both (snapshot then stale WAL), which is
        // idempotent because later records supersede earlier ones.
        self.storage.replace(SNAP_FILE, &bytes)?;
        self.wal.reset()?;
        mirror.records_since_compact = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use bytes::Bytes;

    fn oid(site: u32, n: u64) -> ObjId {
        ObjId::new(SiteId::new(site), n)
    }

    fn rs(site: u32, n: u64, version: u64, byte: u8) -> ReplicaState {
        ReplicaState {
            id: oid(site, n),
            class: "Counter".into(),
            version,
            state: Bytes::from(vec![byte; 4]),
        }
    }

    fn open(mem: &Arc<MemStorage>) -> (Arc<Durable>, RecoveredState) {
        Durable::open(
            mem.clone() as Arc<dyn Storage>,
            DurableOptions {
                group_commit: 4,
                compact_every: 0,
                checkpoint_every_rpcs: 0,
            },
        )
        .unwrap()
    }

    #[test]
    fn fresh_log_recovers_empty() {
        let mem = Arc::new(MemStorage::new());
        let (_d, recovered) = open(&mem);
        assert!(recovered.is_empty());
        assert_eq!(recovered.next_request_seq, 0);
    }

    #[test]
    fn dirty_then_confirm_leaves_nothing_pending() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            let fp = state_fingerprint(&rs(2, 5, 10, 0xAA));
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.log_put_intent(oid(2, 5), 31, fp).unwrap();
            d.log_confirm(oid(2, 5), 11, fp).unwrap();
            d.commit().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert!(recovered.dirty.is_empty(), "confirmed put leaves no dirty state");
        assert!(recovered.pending_puts.is_empty());
        // Seq 31 was seen, so the restored counter must clear it + skip.
        assert!(recovered.next_request_seq > 31 + SEQ_EPOCH_SKIP - 1);
    }

    #[test]
    fn any_surviving_history_forces_a_fresh_seq_epoch() {
        // Deltas and ops never carry request seqs, but their presence
        // proves a previous life ran — and it issued lookups/gets whose
        // seqs were never logged. The restored counter must skip ahead or
        // the provider's reply cache answers new requests with stale
        // cached replies.
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.commit().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert!(
            recovered.next_request_seq >= SEQ_EPOCH_SKIP,
            "got {}",
            recovered.next_request_seq
        );
    }

    #[test]
    fn abandoned_put_drops_the_intent_but_keeps_the_dirty_delta() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            let fp = state_fingerprint(&rs(2, 5, 10, 0xAA));
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.log_put_intent(oid(2, 5), 31, fp).unwrap();
            // The master rejected the put: the seq is spent but the state
            // was never applied, so the delta must stay recoverable.
            d.log_put_abandoned(oid(2, 5)).unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert!(recovered.pending_puts.is_empty(), "spent seq must not be reused");
        assert!(recovered.dirty.contains_key(&oid(2, 5)), "rejected put stays dirty");
        // Seq 31 was still burned; the restored counter clears it.
        assert!(recovered.next_request_seq > 31);
    }

    #[test]
    fn unconfirmed_intent_survives_with_its_seq_and_fingerprint() {
        let mem = Arc::new(MemStorage::new());
        let fp = state_fingerprint(&rs(2, 5, 10, 0xAA));
        {
            let (d, _) = open(&mem);
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.log_put_intent(oid(2, 5), 31, fp).unwrap();
            // Crash before confirm: intent was fsynced by log_put_intent.
        }
        let (d2, recovered) = open(&mem);
        let pending = PendingPut { seq: 31, fingerprint: fp };
        assert_eq!(recovered.pending_puts.get(&oid(2, 5)), Some(&pending));
        assert_eq!(d2.pending_put(oid(2, 5)), Some(pending));
        assert_eq!(recovered.dirty.len(), 1);
        let (provider, state) = &recovered.dirty[&oid(2, 5)];
        assert_eq!(*provider, SiteId::new(2));
        assert_eq!(state.version, 10);
    }

    #[test]
    fn confirm_for_a_superseded_delta_keeps_the_newer_state() {
        // A mutation raced the put RPC: its delta (0xBB) landed after the
        // intent but before the confirmation, which acks the OLD state
        // (0xAA). The newer, unsent state must survive a crash.
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            let sent = rs(2, 5, 10, 0xAA);
            let fp = state_fingerprint(&sent);
            d.log_dirty(SiteId::new(2), sent).unwrap();
            d.log_put_intent(oid(2, 5), 31, fp).unwrap();
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xBB)).unwrap();
            d.log_confirm(oid(2, 5), 11, fp).unwrap();
            d.commit().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert!(recovered.pending_puts.is_empty(), "the intent itself is settled");
        assert_eq!(
            recovered.dirty[&oid(2, 5)].1.state.as_ref(),
            &[0xBB; 4],
            "the unsent newer delta survives the stale confirm"
        );
    }

    #[test]
    fn later_deltas_supersede_earlier_ones() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xBB)).unwrap();
            d.commit().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert_eq!(recovered.dirty.len(), 1);
        assert_eq!(recovered.dirty[&oid(2, 5)].1.state.as_ref(), &[0xBB; 4]);
    }

    #[test]
    fn clean_record_drops_the_dirty_delta() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.log_clean(oid(2, 5)).unwrap();
            d.commit().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert!(recovered.dirty.is_empty());
    }

    #[test]
    fn ops_and_client_state_recover_in_order() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            d.log_client_state(40, 32).unwrap();
            d.log_op(oid(2, 5), "add", &[ObiValue::I64(1)], true).unwrap();
            d.log_op(oid(2, 5), "add", &[ObiValue::I64(2)], false).unwrap();
            d.commit().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert_eq!(recovered.ops.len(), 2);
        assert_eq!(recovered.ops[0].args, vec![ObiValue::I64(1)]);
        assert!(!recovered.ops[1].succeeded);
        assert_eq!(recovered.horizon, 32);
        assert_eq!(recovered.next_request_seq, 40 + SEQ_EPOCH_SKIP);
    }

    #[test]
    fn compaction_preserves_recovery_and_shrinks_the_wal() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            for i in 0..50 {
                d.log_dirty(SiteId::new(2), rs(2, 5, 10 + i, i as u8)).unwrap();
            }
            d.log_op(oid(2, 5), "add", &[], true).unwrap();
            d.log_client_state(9, 4).unwrap();
            let before = d.wal_len().unwrap();
            d.compact().unwrap();
            let after = d.wal_len().unwrap();
            assert_eq!(after, 0, "WAL truncated after snapshot");
            assert!(before > 0);
        }
        let (_d, recovered) = open(&mem);
        assert_eq!(recovered.dirty.len(), 1, "52 records folded to 1 delta + op + state");
        assert_eq!(recovered.dirty[&oid(2, 5)].1.version, 59);
        assert_eq!(recovered.ops.len(), 1);
        assert_eq!(recovered.horizon, 4);
    }

    #[test]
    fn auto_compaction_triggers_on_record_count() {
        let mem = Arc::new(MemStorage::new());
        let (d, _) = Durable::open(
            mem.clone() as Arc<dyn Storage>,
            DurableOptions {
                group_commit: 1,
                compact_every: 10,
                checkpoint_every_rpcs: 0,
            },
        )
        .unwrap();
        for i in 0..25 {
            d.log_dirty(SiteId::new(2), rs(2, 5, i, 0)).unwrap();
        }
        // 25 records at compact_every=10: two compactions, 5 records left.
        let left = d.wal_len().unwrap();
        assert!(left > 0 && mem.len(SNAP_FILE).unwrap() > 0);
        let (_d2, recovered) = open(&mem);
        assert_eq!(recovered.dirty[&oid(2, 5)].1.version, 24);
    }

    #[test]
    fn every_nth_confirmed_rpc_checkpoints_the_client_watermark() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = Durable::open(
                mem.clone() as Arc<dyn Storage>,
                DurableOptions {
                    group_commit: 1,
                    compact_every: 0,
                    checkpoint_every_rpcs: 4,
                },
            )
            .unwrap();
            // Three RPCs: under budget, nothing logged.
            for seq in 1..=3 {
                assert!(!d.note_confirmed_rpc(seq, 0).unwrap());
            }
            assert_eq!(d.wal_len().unwrap(), 0, "no checkpoint before the 4th RPC");
            // The 4th writes the checkpoint with the watermark it was given.
            assert!(d.note_confirmed_rpc(44, 40).unwrap());
            // The counter resets: three more stay quiet, the next fires.
            for seq in 45..=47 {
                assert!(!d.note_confirmed_rpc(seq, 40).unwrap());
            }
            assert!(d.note_confirmed_rpc(88, 80).unwrap());
        }
        let (_d, recovered) = open(&mem);
        // Recovery restores the *latest* checkpointed watermark, epoch-
        // skipped as usual (invariant 3).
        assert_eq!(recovered.next_request_seq, 88 + SEQ_EPOCH_SKIP);
        assert_eq!(recovered.horizon, 80);
    }

    #[test]
    fn zero_disables_periodic_checkpoints() {
        let mem = Arc::new(MemStorage::new());
        let (d, _) = open(&mem); // the test helper opens with 0
        for seq in 1..=100 {
            assert!(!d.note_confirmed_rpc(seq, 0).unwrap());
        }
        assert_eq!(d.wal_len().unwrap(), 0);
    }

    #[test]
    fn reset_session_clears_ops_but_keeps_dirty_state() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            d.log_dirty(SiteId::new(2), rs(2, 5, 10, 0xAA)).unwrap();
            d.log_op(oid(2, 5), "add", &[], true).unwrap();
            d.log_put_intent(oid(2, 5), 3, state_fingerprint(&rs(2, 5, 10, 0xAA)))
                .unwrap();
            d.reset_session().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert!(recovered.ops.is_empty());
        assert!(recovered.pending_puts.is_empty());
        assert_eq!(recovered.dirty.len(), 1, "conflicted dirty state survives");
    }

    #[test]
    fn handoff_intent_survives_a_crash_and_compaction() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            // Crash after the intent but before the ack: recovery must
            // still know the successor, with the handoff marked incomplete.
            d.log_handoff_intent(oid(1, 7), SiteId::new(4)).unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert_eq!(
            recovered.handoffs.get(&oid(1, 7)),
            Some(&(SiteId::new(4), false))
        );
        {
            let (d, _) = open(&mem);
            d.log_handoff_complete(oid(1, 7)).unwrap();
            assert_eq!(d.handoffs().get(&oid(1, 7)), Some(&(SiteId::new(4), true)));
            // Completion must survive snapshot folding too.
            d.compact().unwrap();
        }
        let (_d, recovered) = open(&mem);
        assert_eq!(
            recovered.handoffs.get(&oid(1, 7)),
            Some(&(SiteId::new(4), true))
        );
    }

    #[test]
    fn crash_mid_append_truncates_and_recovers_prefix() {
        let mem = Arc::new(MemStorage::new());
        {
            let (d, _) = open(&mem);
            for i in 0..10 {
                d.log_dirty(SiteId::new(2), rs(2, i, 1, i as u8)).unwrap();
            }
            d.commit().unwrap();
        }
        let full = mem.len(WAL_FILE).unwrap();
        // Chop mid-record: some prefix of records survives, tail truncated.
        mem.crash_keeping(WAL_FILE, full - 5);
        let (_d, recovered) = open(&mem);
        assert!(recovered.truncated_bytes > 0);
        assert_eq!(recovered.dirty.len(), 9, "last record torn, first 9 intact");
    }

    #[test]
    fn storage_failure_during_log_surfaces() {
        let mem = Arc::new(MemStorage::new());
        let (d, _) = open(&mem);
        mem.fail_after(0);
        let err = d.log_clean(oid(1, 1)).unwrap_err();
        assert!(matches!(err, obiwan_util::ObiError::Storage(_)), "{err}");
    }
}

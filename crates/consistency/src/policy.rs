//! Master-side consistency policies (implementations of
//! [`ConsistencyHook`]).
//!
//! Plugged into a process with
//! [`ObiProcess::set_policy`](obiwan_core::ObiProcess::set_policy), these
//! decide the fate of replica write-backs:
//!
//! | Policy | Concurrent write-backs | Use when |
//! |---|---|---|
//! | [`AcceptAll`](obiwan_core::AcceptAll) | last writer wins by arrival | best-effort shared state |
//! | [`OptimisticDetect`] | rejected (first writer wins) | edits must not be silently lost |
//! | [`MonotonicVersions`] | rejected if based on an older state than the last accepted write | session-ish guarantees |

use obiwan_core::ConsistencyHook;
use obiwan_util::{ObiError, ObjId, Result};
use std::collections::HashMap;

/// First-writer-wins optimistic concurrency: a `put` is accepted only when
/// the replica's base version equals the master's current version, i.e. no
/// other write (local or remote) intervened since the replica was fetched.
///
/// Rejected writers keep their dirty replica and can
/// [`refresh`](obiwan_core::ObiProcess::refresh) + reapply.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimisticDetect;

impl OptimisticDetect {
    /// Creates the policy.
    pub fn new() -> Self {
        OptimisticDetect
    }
}

impl ConsistencyHook for OptimisticDetect {
    fn name(&self) -> &'static str {
        "optimistic-detect"
    }

    fn decide_put(&mut self, object: ObjId, master_version: u64, base_version: u64) -> Result<()> {
        if base_version == master_version {
            Ok(())
        } else {
            Err(ObiError::UpdateRejected {
                object,
                reason: format!(
                    "concurrent update: replica based on v{base_version}, master at v{master_version}"
                ),
            })
        }
    }
}

/// Monotonic write-backs: a `put` is accepted when it is based on a state at
/// least as new as the base of the last *accepted* write. Unlike
/// [`OptimisticDetect`], a master-side read-only bump or a lost race with a
/// slower writer does not permanently wedge clients — only genuinely older
/// bases are refused.
#[derive(Debug, Clone, Default)]
pub struct MonotonicVersions {
    last_accepted_base: HashMap<ObjId, u64>,
}

impl MonotonicVersions {
    /// Creates the policy.
    pub fn new() -> Self {
        MonotonicVersions::default()
    }
}

impl ConsistencyHook for MonotonicVersions {
    fn name(&self) -> &'static str {
        "monotonic-versions"
    }

    fn decide_put(&mut self, object: ObjId, _master_version: u64, base_version: u64) -> Result<()> {
        let floor = self.last_accepted_base.get(&object).copied().unwrap_or(0);
        if base_version >= floor {
            self.last_accepted_base.insert(object, base_version);
            Ok(())
        } else {
            Err(ObiError::UpdateRejected {
                object,
                reason: format!(
                    "stale write: based on v{base_version}, later write already accepted from v{floor}"
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obiwan_util::SiteId;

    fn oid(l: u64) -> ObjId {
        ObjId::new(SiteId::new(2), l)
    }

    #[test]
    fn optimistic_accepts_only_matching_base() {
        let mut p = OptimisticDetect::new();
        assert!(p.decide_put(oid(1), 5, 5).is_ok());
        assert!(matches!(
            p.decide_put(oid(1), 6, 5),
            Err(ObiError::UpdateRejected { .. })
        ));
        assert!(p.decide_put(oid(1), 5, 6).is_err());
        assert_eq!(p.name(), "optimistic-detect");
    }

    #[test]
    fn monotonic_tracks_per_object_floors() {
        let mut p = MonotonicVersions::new();
        assert!(p.decide_put(oid(1), 10, 3).is_ok());
        // Equal base: allowed (idempotent retry).
        assert!(p.decide_put(oid(1), 11, 3).is_ok());
        // Older base: refused.
        assert!(p.decide_put(oid(1), 12, 2).is_err());
        // Different object has its own floor.
        assert!(p.decide_put(oid(2), 12, 1).is_ok());
        // Newer base raises the floor.
        assert!(p.decide_put(oid(1), 13, 7).is_ok());
        assert!(p.decide_put(oid(1), 14, 6).is_err());
    }

    #[test]
    fn end_to_end_optimistic_conflict() {
        use obiwan_core::demo::Counter;
        use obiwan_core::{ObiValue, ObiWorld, ReplicationMode};

        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let s3 = world.add_site("S3");
        let master = world.site(s2).create(Counter::new(0));
        world.site(s2).export(master, "c").unwrap();
        world.site(s2).set_policy(Box::new(OptimisticDetect::new()));

        let remote1 = world.site(s1).lookup("c").unwrap();
        let remote3 = world.site(s3).lookup("c").unwrap();
        let r1 = world
            .site(s1)
            .get(&remote1, ReplicationMode::incremental(1))
            .unwrap();
        let r3 = world
            .site(s3)
            .get(&remote3, ReplicationMode::incremental(1))
            .unwrap();
        world.site(s1).invoke(r1, "incr", ObiValue::Null).unwrap();
        world.site(s3).invoke(r3, "incr", ObiValue::Null).unwrap();
        // First writer wins…
        world.site(s1).put(r1).unwrap();
        // …second is a conflict.
        assert!(matches!(
            world.site(s3).put(r3),
            Err(ObiError::UpdateRejected { .. })
        ));
        // Loser refreshes and reapplies.
        world.site(s3).refresh(r3).unwrap();
        world.site(s3).invoke(r3, "incr", ObiValue::Null).unwrap();
        world.site(s3).put(r3).unwrap();
        let v = world
            .site(s2)
            .invoke(master, "read", ObiValue::Null)
            .unwrap();
        assert_eq!(v, ObiValue::I64(2));
    }
}

/// Read-only masters: every write-back is refused. For published reference
/// data that roams freely but must never be modified from the edge.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadOnly;

impl ReadOnly {
    /// Creates the policy.
    pub fn new() -> Self {
        ReadOnly
    }
}

impl ConsistencyHook for ReadOnly {
    fn name(&self) -> &'static str {
        "read-only"
    }

    fn decide_put(&mut self, object: ObjId, _mv: u64, _bv: u64) -> Result<()> {
        Err(ObiError::UpdateRejected {
            object,
            reason: "object is published read-only".into(),
        })
    }
}

/// Bounded divergence: a write-back is accepted as long as the replica's
/// base is at most `max_lag` versions behind the master — a middle ground
/// between [`AcceptAll`](obiwan_core::AcceptAll) (`max_lag = ∞`) and
/// [`OptimisticDetect`] (`max_lag = 0`). Suits counters and logs where a
/// small overwrite window is acceptable but month-old replicas should not
/// clobber fresh state after a long disconnection.
#[derive(Debug, Clone, Copy)]
pub struct BoundedDivergence {
    max_lag: u64,
}

impl BoundedDivergence {
    /// Accepts write-backs lagging at most `max_lag` versions.
    pub fn new(max_lag: u64) -> Self {
        BoundedDivergence { max_lag }
    }

    /// The configured window.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }
}

impl ConsistencyHook for BoundedDivergence {
    fn name(&self) -> &'static str {
        "bounded-divergence"
    }

    fn decide_put(&mut self, object: ObjId, master_version: u64, base_version: u64) -> Result<()> {
        let lag = master_version.saturating_sub(base_version);
        if lag <= self.max_lag {
            Ok(())
        } else {
            Err(ObiError::UpdateRejected {
                object,
                reason: format!(
                    "replica lags {lag} versions behind the master (allowed: {})",
                    self.max_lag
                ),
            })
        }
    }
}

#[cfg(test)]
mod more_policy_tests {
    use super::*;
    use obiwan_util::SiteId;

    fn oid(l: u64) -> ObjId {
        ObjId::new(SiteId::new(2), l)
    }

    #[test]
    fn read_only_refuses_everything() {
        let mut p = ReadOnly::new();
        assert!(p.decide_put(oid(1), 1, 1).is_err());
        assert!(p.decide_put(oid(1), 9, 9).is_err());
        assert_eq!(p.name(), "read-only");
    }

    #[test]
    fn bounded_divergence_window() {
        let mut p = BoundedDivergence::new(2);
        assert_eq!(p.max_lag(), 2);
        assert!(p.decide_put(oid(1), 5, 5).is_ok()); // lag 0
        assert!(p.decide_put(oid(1), 5, 3).is_ok()); // lag 2
        assert!(p.decide_put(oid(1), 5, 2).is_err()); // lag 3
        // Replica ahead of master (post-accept race): lag saturates to 0.
        assert!(p.decide_put(oid(1), 3, 5).is_ok());
        // max_lag 0 behaves like OptimisticDetect.
        let mut strict = BoundedDivergence::new(0);
        assert!(strict.decide_put(oid(1), 5, 5).is_ok());
        assert!(strict.decide_put(oid(1), 5, 4).is_err());
    }

    #[test]
    fn read_only_end_to_end() {
        use obiwan_core::demo::Counter;
        use obiwan_core::{ObiValue, ObiWorld, ReplicationMode};

        let mut world = ObiWorld::loopback();
        let s1 = world.add_site("S1");
        let s2 = world.add_site("S2");
        let master = world.site(s2).create(Counter::new(42));
        world.site(s2).export(master, "ro").unwrap();
        world.site(s2).set_policy(Box::new(ReadOnly::new()));
        let remote = world.site(s1).lookup("ro").unwrap();
        let r = world
            .site(s1)
            .get(&remote, ReplicationMode::incremental(1))
            .unwrap();
        // Reading and even local edits are fine…
        world.site(s1).invoke(r, "incr", ObiValue::Null).unwrap();
        // …but the write-back is refused, and the master is untouched.
        assert!(world.site(s1).put(r).is_err());
        let v = world.site(s2).invoke(master, "read", ObiValue::Null).unwrap();
        assert_eq!(v, ObiValue::I64(42));
    }
}
